"""Figure 5: reception zones are non-convex when beta < 1.

The paper exhibits a uniform power network with alpha = 2, beta = 0.3 and
N = 0.05 whose reception zones are "clearly non-convex".  The benchmark
regenerates the diagram, runs the empirical convexity falsifier on every zone
and checks that (a) at least one zone is flagged non-convex in the beta < 1
regime and (b) raising beta above 1 on the *same* station layout restores
convexity — i.e. the Theorem 1 threshold is where the paper says it is.
"""

from __future__ import annotations

import pytest

from repro import Point, SINRDiagram
from repro.analysis import verify_zone_convexity
from repro.diagrams import figure5_network


@pytest.mark.paper
def test_figure5_non_convexity_below_beta_one(benchmark):
    network = figure5_network()
    diagram = SINRDiagram(network)

    def evaluate():
        return [
            verify_zone_convexity(
                diagram.zone(index), sample_points=100, max_pairs=800, seed=3
            )
            for index in range(len(network))
        ]

    reports = benchmark(evaluate)
    assert any(not report.is_convex for report in reports)
    benchmark.extra_info["beta"] = network.beta
    benchmark.extra_info["non_convex_zones"] = sum(
        1 for report in reports if not report.is_convex
    )


@pytest.mark.paper
def test_figure5_convexity_restored_above_beta_one(benchmark):
    network = figure5_network().with_beta(1.5)
    diagram = SINRDiagram(network)

    def evaluate():
        return [
            verify_zone_convexity(
                diagram.zone(index), sample_points=80, max_pairs=500, seed=3
            )
            for index in range(len(network))
        ]

    reports = benchmark(evaluate)
    assert all(report.is_convex for report in reports)
    benchmark.extra_info["beta"] = network.beta
    benchmark.extra_info["non_convex_zones"] = 0


@pytest.mark.paper
def test_figure5_overlapping_reception(benchmark):
    """With beta < 1 several stations can be heard at the same point."""
    network = figure5_network()
    diagram = SINRDiagram(network)

    def overlap_fraction():
        raster = diagram.rasterize(Point(-5, -5), Point(5, 5), resolution=120)
        import numpy as np

        received = raster.sinr_values >= network.beta
        return float((received.sum(axis=0) > 1).mean())

    fraction = benchmark(overlap_fraction)
    assert fraction > 0.0
    benchmark.extra_info["overlap_fraction"] = round(fraction, 4)
