"""Theorem 1 (and Lemmas 2.1, 3.1): convexity of reception zones.

The paper proves that in uniform power networks with alpha = 2 and beta >= 1
every reception zone is convex; Lemma 3.1 gives star shape and Lemma 2.1
characterises convexity through line crossings.  The benchmark sweeps the
scenario catalogue, verifies all three properties on every zone, and times
how expensive the verification machinery is (which is the practical cost of
*using* the structural results, e.g. inside a protocol simulator).
"""

from __future__ import annotations

import pytest

from repro import SINRDiagram
from repro.analysis import (
    verify_lemma_2_1,
    verify_zone_convexity,
    verify_zone_star_shape,
)
from repro.workloads import theorem_verification_networks

NETWORKS = dict(theorem_verification_networks())


@pytest.mark.paper
@pytest.mark.parametrize("name", sorted(NETWORKS))
def test_theorem1_convexity(benchmark, name):
    network = NETWORKS[name]
    diagram = SINRDiagram(network)

    def verify():
        reports = [
            verify_zone_convexity(
                diagram.zone(index), sample_points=40, max_pairs=200, seed=1
            )
            for index in range(len(network))
        ]
        return reports

    reports = benchmark(verify)
    assert all(report.is_convex for report in reports)
    benchmark.extra_info["scenario"] = name
    benchmark.extra_info["stations"] = len(network)
    benchmark.extra_info["beta"] = network.beta
    benchmark.extra_info["all_convex"] = True


@pytest.mark.paper
@pytest.mark.parametrize("name", ["small-random", "ring", "colinear"])
def test_lemma31_star_shape(benchmark, name):
    network = NETWORKS[name]
    diagram = SINRDiagram(network)

    def verify():
        return [
            verify_zone_star_shape(diagram.zone(index), rays=24, samples_per_ray=24)
            for index in range(len(network))
        ]

    reports = benchmark(verify)
    assert all(report.is_star_shaped for report in reports)
    benchmark.extra_info["scenario"] = name


@pytest.mark.paper
@pytest.mark.parametrize("name", ["small-random", "grid"])
def test_lemma21_line_crossings(benchmark, name):
    network = NETWORKS[name]
    diagram = SINRDiagram(network)

    def verify():
        return [
            verify_lemma_2_1(diagram.zone(index), lines=20)
            for index in range(len(network))
        ]

    reports = benchmark(verify)
    assert all(report.holds for report in reports)
    benchmark.extra_info["scenario"] = name
    benchmark.extra_info["max_crossings_seen"] = max(
        report.max_crossings for report in reports
    )
