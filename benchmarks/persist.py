"""Machine-readable benchmark persistence (``BENCH_engine.json``).

First step of ROADMAP's observability item: every bench run records its
headline numbers — queries/second and speedup-vs-numpy per backend — into a
small JSON file at the repo root, keyed by the git SHA it measured, so the
perf trajectory across PRs becomes checkable by tooling instead of living
only in CI logs.

Schema 2 keeps *quick* (CI smoke, ``REPRO_BENCH_QUICK``) and *full* runs in
separate groups, each with its own SHA: a quick smoke run at a new commit
resets only the ``quick`` group, so the committed full-scale trajectory
survives CI.  The quick flag follows the project's boolean-knob semantics
(see :func:`quick_mode`): ``REPRO_BENCH_QUICK=0`` / ``=false`` / unset mean
a full run, anything else means quick.  Within a group the file holds
exactly one SHA — a run against a different commit resets that group's
results rather than appending, so the committed file always describes the
tree it sits in.  Sections merge, letting independent bench modules
(``bench_engine_batch``, ``bench_incremental_update``...) each contribute
their own payload; the read-merge-write cycle is serialised under an
advisory file lock, so concurrent writers (``pytest-xdist``, parallel CI
legs) never lose each other's sections.
"""

from __future__ import annotations

import json
import os
import subprocess
from contextlib import contextmanager
from typing import Iterator, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["BENCH_PATH", "current_git_sha", "quick_mode", "record_benchmark"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Default output path, at the repo root next to ROADMAP.md.
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_engine.json")

_SCHEMA = 2


def current_git_sha() -> str:
    """The HEAD SHA of the measured tree (``GITHUB_SHA`` fallback in CI)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def quick_mode() -> bool:
    """Whether this run is a shrunken CI smoke (``REPRO_BENCH_QUICK``).

    Boolean knob semantics via :func:`repro.env.read_bool_knob`: unset,
    ``""``, ``"0"``, ``"false"``, ``"no"`` and ``"off"`` (any case) mean a
    full run; anything else enables quick mode.  An earlier
    ``bool(read_knob(...))`` treated *any* non-empty value as quick —
    ``REPRO_BENCH_QUICK=0`` silently shrank what was meant to be a full
    run, poisoning the recorded full-group trajectory.
    """
    from repro.env import BENCH_QUICK, read_bool_knob

    return read_bool_knob(BENCH_QUICK)


@contextmanager
def _results_lock(path: str) -> Iterator[None]:
    """Advisory exclusive lock serialising one read-merge-write cycle.

    A sidecar ``<path>.lock`` file is flocked rather than the data file
    itself (the data file is atomically replaced, which would swap the
    locked inode out from under a waiter).  ``flock`` locks the open file
    description, and every caller — threads of one process included —
    opens its own, so all writers contend properly.  Platforms without
    :mod:`fcntl` degrade to the previous unlocked behaviour.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield
        return
    with open(f"{path}.lock", "a+b") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def record_benchmark(
    section: str,
    payload: dict,
    path: Optional[str] = None,
    quick: Optional[bool] = None,
) -> str:
    """Merge one bench module's results into the persisted JSON file.

    ``payload`` should be JSON-serialisable and carry explicit units in its
    key names (``*_qps``, ``*_seconds``, ``speedup_vs_numpy``...).  The
    result lands in the ``quick`` or ``full`` group — by default whichever
    :func:`quick_mode` says this run is.  Each group is keyed by the git
    SHA it measured; recording under a different SHA resets that group
    (never the other one), so CI smoke can't overwrite full trajectory
    data.  The whole read-merge-write cycle runs under an advisory file
    lock: concurrent recorders queue up instead of overwriting each
    other's freshly merged sections.  Returns the path written.
    """
    path = path or BENCH_PATH
    group = "quick" if (quick_mode() if quick is None else quick) else "full"
    sha = current_git_sha()
    with _results_lock(path):
        data: dict = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
        if not isinstance(data, dict) or data.get("schema") != _SCHEMA:
            data = {"schema": _SCHEMA}
        slot = data.get(group)
        if not isinstance(slot, dict) or slot.get("git_sha") != sha:
            slot = {"git_sha": sha, "results": {}}
            data[group] = slot
        slot.setdefault("results", {})[section] = payload
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    return path
