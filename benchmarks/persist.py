"""Machine-readable benchmark persistence (``BENCH_engine.json``).

First step of ROADMAP's observability item: every bench run records its
headline numbers — queries/second and speedup-vs-numpy per backend — into a
small JSON file at the repo root, keyed by the git SHA it measured, so the
perf trajectory across PRs becomes checkable by tooling instead of living
only in CI logs.

The file holds exactly one SHA: a run against a different commit resets the
results rather than appending, so the committed file always describes the
tree it sits in.  Sections merge, letting independent bench modules
(``bench_engine_batch``, ``bench_mixed_precision``) each contribute their
own payload to one file.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Optional

__all__ = ["BENCH_PATH", "current_git_sha", "record_benchmark"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Default output path, at the repo root next to ROADMAP.md.
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_engine.json")

_SCHEMA = 1


def current_git_sha() -> str:
    """The HEAD SHA of the measured tree (``GITHUB_SHA`` fallback in CI)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def record_benchmark(
    section: str, payload: dict, path: Optional[str] = None
) -> str:
    """Merge one bench module's results into the persisted JSON file.

    ``payload`` should be JSON-serialisable and carry explicit units in its
    key names (``*_qps``, ``*_seconds``, ``speedup_vs_numpy``...).  Returns
    the path written.  Results recorded under a different SHA than the file
    holds are treated as a fresh run: the file is reset, not appended to.
    """
    path = path or BENCH_PATH
    sha = current_git_sha()
    data: dict = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        data = {}
    if not isinstance(data, dict) or data.get("git_sha") != sha:
        data = {"schema": _SCHEMA, "git_sha": sha, "results": {}}
    data.setdefault("results", {})[section] = payload
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path
