"""Sharded point location vs. the flat Theorem 3 structure.

The acceptance workload: a 200-station uniform random deployment and a
20k-point query batch.  The flat (unsharded) ``theorem3`` structure answers
through one global nearest-station front-end over all n stations; the
sharded locator routes the batch to spatial shards first, so per-shard work
shrinks with the shard count while the final full-network verification keeps
every answer bit-identical to brute force.

The module sweeps shard counts and both partitioners, reports build and
query throughput, and gates on the best sharded configuration beating the
flat structure's query throughput.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload (CI smoke mode) and
``REPRO_BENCH_MIN_SPEEDUP=<float>`` to override the speedup gate on slow or
noisy runners.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from persist import record_benchmark
from repro.env import BENCH_QUICK, read_bool_knob
from repro import Point
from repro.pointlocation import get_locator
from repro.workloads import random_query_array, uniform_random_network

QUICK = read_bool_knob(BENCH_QUICK)
STATION_COUNT = 50 if QUICK else 200
QUERY_COUNT = 2_000 if QUICK else 20_000
SHARD_COUNTS = (1, 4, 8) if QUICK else (1, 2, 4, 8, 16)
#: The flat structure is built once with the cheap cover (the vectorised
#: ray sweep); epsilon is mid-range so the structure is realistic, not tiny.
DS_OPTIONS = {"epsilon": 0.5, "cover_method": "ray_sweep"}


def _speedup_floor(default: float) -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "")
    return float(override) if override.strip() else default


@pytest.fixture(scope="module")
def workload():
    side = 4.0 * STATION_COUNT ** 0.5
    network = uniform_random_network(
        STATION_COUNT,
        side=side,
        minimum_separation=1.5,
        noise=0.002,
        beta=3.0,
        seed=23,
    )
    queries = random_query_array(
        QUERY_COUNT, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=17
    )
    return network, queries


def _query_seconds(locator, queries, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        locator.locate_batch(queries)
        best = min(best, time.perf_counter() - start)
    return best / len(queries)


@pytest.mark.paper
def test_sharded_beats_flat_theorem3(workload):
    """The acceptance gate: best sharded config > flat DS query throughput."""
    network, queries = workload

    start = time.perf_counter()
    flat = get_locator("theorem3").build(network, **DS_OPTIONS)
    flat_build = time.perf_counter() - start
    flat_seconds = _query_seconds(flat, queries)

    truth = get_locator("brute-force").build(network).locate_batch(queries)
    np.testing.assert_array_equal(flat.locate_batch(queries), truth)

    print(
        f"\nstations={STATION_COUNT} queries={QUERY_COUNT}: flat theorem3 "
        f"build {flat_build:.2f}s, query {flat_seconds * 1e6:.2f} us "
        f"({1.0 / flat_seconds:,.0f} q/s), {flat.size_estimate()} cells"
    )
    print(f"{'configuration':>32} {'build s':>8} {'query us':>9} "
          f"{'q/s':>12} {'vs flat':>8}")

    best_speedup = 0.0
    sweep = [
        (f"sharded:voronoi kd x{k}", "sharded:voronoi",
         {"shards": k, "partitioner": "kd"})
        for k in SHARD_COUNTS
    ]
    sweep += [
        (f"sharded:voronoi uniform x{k}", "sharded:voronoi",
         {"shards": k, "partitioner": "uniform"})
        for k in SHARD_COUNTS[-2:]
    ]
    sweep.append(
        (
            f"sharded:theorem3 kd x{SHARD_COUNTS[-1]}",
            "sharded:theorem3",
            {"shards": SHARD_COUNTS[-1], "inner_options": DS_OPTIONS},
        )
    )
    rows = {}
    for label, name, options in sweep:
        start = time.perf_counter()
        locator = get_locator(name).build(network, **options)
        build_seconds = time.perf_counter() - start
        np.testing.assert_array_equal(locator.locate_batch(queries), truth)
        seconds = _query_seconds(locator, queries)
        speedup = flat_seconds / seconds
        best_speedup = max(best_speedup, speedup)
        rows[label] = {
            "build_seconds": round(build_seconds, 4),
            "qps": round(1.0 / seconds, 1),
            "speedup_vs_flat": round(speedup, 3),
        }
        print(
            f"{label:>32} {build_seconds:>8.2f} {seconds * 1e6:>9.2f} "
            f"{1.0 / seconds:>12,.0f} {speedup:>7.2f}x"
        )

    record_benchmark(
        "sharded_locate",
        {
            "stations": STATION_COUNT,
            "queries": QUERY_COUNT,
            "flat_theorem3": {
                "build_seconds": round(flat_build, 4),
                "qps": round(1.0 / flat_seconds, 1),
            },
            "configurations": rows,
            "best_speedup_vs_flat": round(best_speedup, 3),
        },
    )

    # Sharding must pay on this workload: the best configuration beats the
    # flat structure (default floor 1.2x; REPRO_BENCH_MIN_SPEEDUP overrides
    # for slow or noisy runners).
    floor = _speedup_floor(1.0 if QUICK else 1.2)
    assert best_speedup >= floor


@pytest.mark.paper
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_throughput_sharded_voronoi(benchmark, workload, shards):
    network, queries = workload
    locator = get_locator("sharded:voronoi").build(
        network, shards=shards, partitioner="kd"
    )
    benchmark(locator.locate_batch, queries)
    benchmark.extra_info["stations"] = STATION_COUNT
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["shard_sizes"] = locator.shard_sizes()
    benchmark.extra_info["per_query_us"] = round(
        benchmark.stats.stats.mean / QUERY_COUNT * 1e6, 3
    )
