"""Ablation: boundary-cover strategy (BRP segment-test walk vs. ray sweep).

DESIGN.md calls out two ways of covering a zone boundary with grid cells:

* the paper's Boundary Reconstruction Process driven by the Sturm segment
  test on grid edges, and
* an angular ray sweep exploiting the star-shape property (Lemma 3.1).

Both produce a valid uncertainty band (correctness is asserted), so the
interesting comparison is cost: segment tests vs. membership probes, number
of suspect cells, and wall-clock build time.
"""

from __future__ import annotations

import random

import pytest

from repro import Point
from repro.pointlocation import PointLocationStructure, VoronoiCandidateLocator, ZoneLabel
from repro.workloads import uniform_random_network

EPSILON = 0.35


@pytest.fixture(scope="module")
def network():
    return uniform_random_network(
        5, side=12.0, minimum_separation=2.5, noise=0.005, beta=3.0, seed=9
    )


def check_soundness(network, structure, samples=600):
    exact = VoronoiCandidateLocator(network)
    rng = random.Random(17)
    for _ in range(samples):
        point = Point(rng.uniform(-3, 15), rng.uniform(-3, 15))
        answer = structure.locate_answer(point)
        truth = exact.locate(point)
        if answer.label is ZoneLabel.INSIDE:
            assert truth == answer.station
        elif answer.label is ZoneLabel.OUTSIDE:
            assert truth == -1


@pytest.mark.paper
@pytest.mark.parametrize("cover_method", ["brp", "ray_sweep"])
def test_boundary_cover_ablation(benchmark, network, cover_method):
    structure = benchmark.pedantic(
        lambda: PointLocationStructure(
            network, epsilon=EPSILON, cover_method=cover_method
        ),
        rounds=1,
        iterations=1,
    )
    check_soundness(network, structure)
    benchmark.extra_info["cover_method"] = cover_method
    benchmark.extra_info["stored_cells"] = structure.size_estimate()
    benchmark.extra_info["segment_tests"] = structure.report.total_segment_tests
    benchmark.extra_info["boundary_probes"] = sum(
        report.boundary_probes for report in structure.report.per_zone.values()
    )


@pytest.mark.paper
@pytest.mark.parametrize("bounds_method", ["explicit", "improved", "measured"])
def test_radius_bounds_ablation(benchmark, network, bounds_method):
    """Looser certified radius bounds inflate the grid (and the build cost)."""
    structure = benchmark.pedantic(
        lambda: PointLocationStructure(
            network,
            epsilon=0.5,
            bounds_method=bounds_method,
            cover_method="ray_sweep",
        ),
        rounds=1,
        iterations=1,
    )
    check_soundness(network, structure, samples=300)
    benchmark.extra_info["bounds_method"] = bounds_method
    benchmark.extra_info["stored_cells"] = structure.size_estimate()
