"""Ablation: the Sturm segment test vs. the sampling segment test.

The paper's segment test applies Sturm's condition to the degree-2n
restriction of the reception polynomial (exact root counting); the ablation
baseline samples the membership predicate along the segment (cheap, but can
miss tangential double crossings).  The benchmark measures the per-test cost
of both on the same set of grid-edge-sized segments and the end-to-end effect
on the point-location preprocessing.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import Point, ReceptionZone
from repro.geometry import Segment
from repro.pointlocation import (
    PointLocationStructure,
    SamplingSegmentTest,
    SturmSegmentTest,
)
from repro.workloads import uniform_random_network


@pytest.fixture(scope="module")
def network():
    return uniform_random_network(
        6, side=14.0, minimum_separation=2.5, noise=0.005, beta=3.0, seed=13
    )


@pytest.fixture(scope="module")
def edge_segments(network):
    """Short segments comparable to the grid edges the BRP tests."""
    zone = ReceptionZone(network=network, index=0)
    rng = random.Random(5)
    center = zone.station_location
    segments = []
    for _ in range(200):
        angle = rng.uniform(0.0, 2.0 * math.pi)
        # Half the segments straddle the boundary, half sit well inside/outside.
        base = zone.boundary_distance_along_ray(angle) * rng.choice([0.98, 0.6, 1.4])
        start = Point(
            center.x + base * math.cos(angle), center.y + base * math.sin(angle)
        )
        length = 0.05
        segments.append(
            Segment(start, Point(start.x + length, start.y + length))
        )
    return segments


@pytest.mark.paper
def test_sturm_segment_test_cost(benchmark, network, edge_segments):
    test = SturmSegmentTest(network.reception_polynomial(0))

    def run():
        return sum(1 for segment in edge_segments if test.test(segment).crosses)

    crossings = benchmark(run)
    benchmark.extra_info["segments"] = len(edge_segments)
    benchmark.extra_info["crossing_segments"] = crossings
    benchmark.extra_info["per_test_us"] = round(
        benchmark.stats.stats.mean / len(edge_segments) * 1e6, 2
    )


@pytest.mark.paper
def test_sampling_segment_test_cost(benchmark, network, edge_segments):
    zone = ReceptionZone(network=network, index=0)
    test = SamplingSegmentTest(zone.contains, samples=16)

    def run():
        return sum(1 for segment in edge_segments if test.test(segment).crosses)

    crossings = benchmark(run)
    benchmark.extra_info["segments"] = len(edge_segments)
    benchmark.extra_info["crossing_segments"] = crossings
    benchmark.extra_info["per_test_us"] = round(
        benchmark.stats.stats.mean / len(edge_segments) * 1e6, 2
    )


@pytest.mark.paper
def test_segment_tests_agree_on_edge_segments(benchmark, network, edge_segments):
    """The two tests agree except for (rare) tangential double crossings."""
    zone = ReceptionZone(network=network, index=0)
    sturm = SturmSegmentTest(network.reception_polynomial(0))
    sampling = SamplingSegmentTest(zone.contains, samples=32)

    def agreement():
        same = 0
        for segment in edge_segments:
            if sturm.test(segment).crosses == sampling.test(segment).crosses:
                same += 1
        return same / len(edge_segments)

    fraction = benchmark(agreement)
    assert fraction >= 0.95
    benchmark.extra_info["agreement_fraction"] = round(fraction, 4)


@pytest.mark.paper
@pytest.mark.parametrize("segment_test_kind", ["sturm", "sampling"])
def test_end_to_end_preprocessing(benchmark, network, segment_test_kind):
    structure = benchmark.pedantic(
        lambda: PointLocationStructure(
            network, epsilon=0.45, segment_test_kind=segment_test_kind
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["segment_test"] = segment_test_kind
    benchmark.extra_info["stored_cells"] = structure.size_estimate()
