"""Figure 1: reception flips as stations move or fall silent.

Regenerates the three panels of Figure 1 and reports, for each panel, which
station the receiver hears.  The paper's series is qualitative:

    panel (A): the receiver hears s2
    panel (B): after s1 moves, the receiver hears nothing
    panel (C): with s3 silent, the receiver hears s1

The benchmark times the full panel evaluation (diagram construction +
receiver query + raster of the reception map at the figure's resolution).
"""

from __future__ import annotations

import pytest

from repro import SINRDiagram
from repro.diagrams import figure1_panels


@pytest.mark.paper
@pytest.mark.parametrize("panel_index", [0, 1, 2], ids=["panel_A", "panel_B", "panel_C"])
def test_figure1_panel(benchmark, panel_index):
    panel = figure1_panels()[panel_index]

    def evaluate():
        diagram = SINRDiagram(panel.network)
        heard = diagram.station_heard_at(panel.receiver)
        raster = diagram.rasterize(*panel.bounding_box, resolution=120)
        return heard, raster.coverage_fraction()

    heard, coverage = benchmark(evaluate)

    # The paper's qualitative outcome must reproduce exactly.
    assert heard == panel.expected_sinr
    benchmark.extra_info["panel"] = panel.name
    benchmark.extra_info["station_heard"] = "none" if heard is None else f"s{heard + 1}"
    benchmark.extra_info["expected"] = (
        "none" if panel.expected_sinr is None else f"s{panel.expected_sinr + 1}"
    )
    benchmark.extra_info["coverage_fraction"] = round(coverage, 4)
