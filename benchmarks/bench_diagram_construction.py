"""Supporting benchmark: constructing SINR diagrams and their ingredients.

Not a single figure of the paper, but the machinery every figure rests on:
rasterising a diagram (the "numerically generated" figures), tracing a zone
boundary, evaluating the reception polynomial, and restricting it to a
segment.  These series document how the substrate scales with the number of
stations, which contextualises the preprocessing costs reported for Theorem 3.
"""

from __future__ import annotations

import pytest

from repro import Point, SINRDiagram
from repro.diagrams import trace_zone_boundary
from repro.workloads import uniform_random_network


def build_network(station_count: int):
    return uniform_random_network(
        station_count,
        side=4.0 * station_count ** 0.5,
        minimum_separation=2.0,
        noise=0.002,
        beta=3.0,
        seed=station_count,
    )


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [4, 8, 16, 32])
def test_rasterize_diagram(benchmark, station_count):
    network = build_network(station_count)
    diagram = SINRDiagram(network)
    lower_left, upper_right = diagram.default_bounding_box(margin=0.5)

    raster = benchmark(diagram.rasterize, lower_left, upper_right, 150)
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["coverage_fraction"] = round(raster.coverage_fraction(), 4)


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [4, 16])
def test_trace_zone_boundary(benchmark, station_count):
    network = build_network(station_count)
    zone = SINRDiagram(network).zone(0)

    points = benchmark(trace_zone_boundary, zone, 180)
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["vertices"] = len(points) - 1


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [4, 16, 64])
def test_reception_polynomial_evaluation(benchmark, station_count):
    network = build_network(station_count)
    polynomial = network.reception_polynomial(0)

    benchmark(polynomial, 1.234, -0.567)
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["degree"] = polynomial.degree()


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [4, 16])
def test_reception_polynomial_segment_restriction(benchmark, station_count):
    network = build_network(station_count)
    polynomial = network.reception_polynomial(0)

    restriction = benchmark(
        polynomial.restrict_to_segment, Point(-1.0, -1.0), Point(2.0, 3.0)
    )
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["restriction_degree"] = restriction.degree()
