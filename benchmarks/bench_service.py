"""Micro-batched async serving vs its throughput ceiling and floor.

Three ways to answer the same 50-station / 10k-query workload:

* **direct** — one ``locate_batch`` call on the bare locator: the overhead
  ceiling.  The service can approach but never beat it (it *is* the
  service's inner loop, plus asyncio bookkeeping);
* **per-query async** — the service with ``max_batch_size=1``: every query
  pays a full event-loop round trip and its own engine call.  This is what
  naive asyncio serving (one ``locate`` per request, no batching) costs —
  the floor micro-batching must beat;
* **micro-batched** — the service with the default 2 ms budget and a 1024
  batch cap, all clients concurrent.

The gate: micro-batched serving beats per-query serving by at least 5x
(``REPRO_BENCH_MIN_SPEEDUP`` overrides on slow/noisy runners; the CI smoke
leg relaxes it).  Both served runs must be bit-identical to the direct
answers.

A second benchmark sweeps the latency budget under open-loop Poisson
arrivals and prints the budget / batch-size / latency trade-off table the
README's Serving section quotes.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload (CI smoke mode).
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from persist import record_benchmark
from repro.env import BENCH_QUICK, read_bool_knob
from repro.pointlocation import build_locator
from repro.service import QueryService, serve_points
from repro.workloads import (
    random_query_array,
    run_poisson,
    uniform_random_network,
)
from repro import Point

QUICK = read_bool_knob(BENCH_QUICK)
STATION_COUNT = 50
QUERY_COUNT = 2_000 if QUICK else 10_000


def _speedup_floor(default: float) -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "")
    return float(override) if override.strip() else default


@pytest.fixture(scope="module")
def workload():
    side = 4.0 * STATION_COUNT ** 0.5
    network = uniform_random_network(
        STATION_COUNT,
        side=side,
        minimum_separation=1.5,
        noise=0.002,
        beta=3.0,
        seed=23,
    )
    queries = random_query_array(
        QUERY_COUNT, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=17
    )
    return network, queries


@pytest.mark.paper
def test_micro_batching_beats_per_query_serving(workload):
    """The acceptance gate: served micro-batches >= 5x per-query serving."""
    network, queries = workload
    locator = build_locator(network, "voronoi")

    direct_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        truth = locator.locate_batch(queries)
        direct_seconds = min(direct_seconds, time.perf_counter() - start)

    start = time.perf_counter()
    floor_answers, floor_stats = serve_points(
        network, queries, locator, latency_budget=0.0, max_batch_size=1,
        max_pending=QUERY_COUNT, return_stats=True,
    )
    floor_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_answers, batched_stats = serve_points(
        network, queries, locator, latency_budget=0.002, max_batch_size=1024,
        max_pending=QUERY_COUNT, return_stats=True,
    )
    batched_seconds = time.perf_counter() - start

    np.testing.assert_array_equal(floor_answers, truth)
    np.testing.assert_array_equal(batched_answers, truth)

    rows = [
        ("direct locate_batch (ceiling)", direct_seconds, None),
        ("per-query async (floor)", floor_seconds, floor_stats),
        ("micro-batched service", batched_seconds, batched_stats),
    ]
    print(f"\nstations={STATION_COUNT} queries={QUERY_COUNT}:")
    print(f"{'mode':>32} {'total s':>8} {'us/q':>8} {'q/s':>12} "
          f"{'batches':>8} {'mean':>7}")
    for label, seconds, stats in rows:
        batches = stats.batches if stats else 1
        mean = stats.mean_batch_size if stats else float(QUERY_COUNT)
        print(
            f"{label:>32} {seconds:>8.3f} "
            f"{seconds / QUERY_COUNT * 1e6:>8.2f} "
            f"{QUERY_COUNT / seconds:>12,.0f} {batches:>8d} {mean:>7.1f}"
        )

    speedup = floor_seconds / batched_seconds
    overhead = batched_seconds / direct_seconds
    print(f"micro-batched vs per-query: {speedup:.1f}x; "
          f"overhead vs direct: {overhead:.1f}x")

    record_benchmark(
        "service",
        {
            "stations": STATION_COUNT,
            "queries": QUERY_COUNT,
            "direct_qps": round(QUERY_COUNT / direct_seconds, 1),
            "per_query_qps": round(QUERY_COUNT / floor_seconds, 1),
            "micro_batched_qps": round(QUERY_COUNT / batched_seconds, 1),
            "mean_batch_size": round(batched_stats.mean_batch_size, 1),
            "speedup_vs_per_query": round(speedup, 2),
            "overhead_vs_direct": round(overhead, 2),
        },
    )

    # Micro-batching must amortise: the default floor is the acceptance 5x
    # (REPRO_BENCH_MIN_SPEEDUP overrides for slow or noisy runners).
    assert speedup >= _speedup_floor(5.0)


@pytest.mark.paper
def test_latency_budget_throughput_tradeoff(workload):
    """The budget sweep behind the README table: bigger budgets buy bigger
    batches (throughput) at the price of per-query latency."""
    network, queries = workload
    sample = queries[: min(4_000, QUERY_COUNT)]
    rate = 20_000.0  # open-loop Poisson arrivals, q/s
    budgets = (0.0005, 0.002, 0.005)

    async def serve_with_budget(budget):
        async with QueryService(
            network, "voronoi", latency_budget=budget, max_batch_size=4096,
            max_pending=len(sample),
        ) as service:
            start = time.perf_counter()
            answers = await run_poisson(service, sample, rate=rate, seed=11)
            seconds = time.perf_counter() - start
            return answers, seconds, service.stats_snapshot()

    truth = build_locator(network, "voronoi").locate_batch(sample)
    print(f"\nPoisson arrivals at {rate:,.0f} q/s, {len(sample)} queries:")
    print(f"{'budget ms':>10} {'mean batch':>11} {'batches':>8} "
          f"{'wait p99 ms':>12} {'latency p99 ms':>15} {'q/s':>10}")
    mean_sizes = []
    for budget in budgets:
        answers, seconds, stats = asyncio.run(serve_with_budget(budget))
        np.testing.assert_array_equal(answers, truth)
        mean_sizes.append(stats.mean_batch_size)
        print(
            f"{budget * 1e3:>10.1f} {stats.mean_batch_size:>11.1f} "
            f"{stats.batches:>8d} {stats.wait_p99 * 1e3:>12.2f} "
            f"{stats.latency_p99 * 1e3:>15.2f} {len(sample) / seconds:>10,.0f}"
        )

    # The qualitative trade-off must hold: a 10x larger budget accumulates
    # strictly larger batches under the same arrival process.
    assert mean_sizes[-1] > mean_sizes[0]
