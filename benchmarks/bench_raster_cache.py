"""Warm-cache overlapping raster requests vs recomputing from scratch.

The serving workload of the raster tile cache: a client (figure pipeline,
dashboard, zoom/pan UI) issues overlapping rasterisation requests over one
network — the full deployment box, zoomed quadrants, panned half boxes and
repeats.  Uncached, every request recomputes its whole pixel grid through
the engine; with a warm tile cache the overlapping requests reduce to
lookups plus array assembly.

The gate: the warm-cache pass answers the same request sequence at least
**5x** faster than the uncached rasteriser (``REPRO_BENCH_MIN_SPEEDUP``
overrides on slow/noisy runners; the CI smoke leg relaxes it), while every
cached raster stays bit-identical to the uncached one — which is asserted
here on full ``labels`` + ``sinr_values`` equality, not sampled.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload (CI smoke mode).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from persist import record_benchmark
from repro.env import BENCH_QUICK, read_bool_knob
from repro import Point, SINRDiagram, TileCache
from repro.workloads import uniform_random_network

QUICK = read_bool_knob(BENCH_QUICK)
STATION_COUNT = 20
RESOLUTION = 96 if QUICK else 192


def _speedup_floor(default: float) -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "")
    return float(override) if override.strip() else default


@pytest.fixture(scope="module")
def workload():
    side = 16.0
    network = uniform_random_network(
        STATION_COUNT,
        side=side,
        minimum_separation=1.5,
        noise=0.002,
        beta=3.0,
        seed=31,
    )
    diagram = SINRDiagram(network)
    # Overlapping views on one world lattice: the full box, its four
    # zoomed quadrants, two panned half boxes and a repeat of the full box.
    full = (Point(-8.0, -8.0), Point(24.0, 24.0), RESOLUTION)
    half = RESOLUTION // 2
    requests = [
        full,
        (Point(-8.0, -8.0), Point(8.0, 8.0), half),
        (Point(8.0, -8.0), Point(24.0, 8.0), half),
        (Point(-8.0, 8.0), Point(8.0, 24.0), half),
        (Point(8.0, 8.0), Point(24.0, 24.0), half),
        (Point(-8.0, 0.0), Point(24.0, 16.0), RESOLUTION),
        (Point(0.0, -8.0), Point(16.0, 24.0), half),
        full,
    ]
    return diagram, requests


@pytest.mark.paper
def test_warm_cache_beats_uncached_rasterisation(workload):
    """The acceptance gate: warm-cache overlapping requests >= 5x uncached."""
    diagram, requests = workload

    uncached_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        truth = [diagram.rasterize(a, b, res) for a, b, res in requests]
        uncached_seconds = min(uncached_seconds, time.perf_counter() - start)

    cache = TileCache(tile_size=64)
    start = time.perf_counter()
    cold = [diagram.rasterize(a, b, res, cache=cache) for a, b, res in requests]
    cold_seconds = time.perf_counter() - start
    cold_stats = cache.stats()

    warm_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        warm = [diagram.rasterize(a, b, res, cache=cache) for a, b, res in requests]
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    warm_stats = cache.stats()

    for expected, cold_raster, warm_raster in zip(truth, cold, warm):
        np.testing.assert_array_equal(expected.labels, cold_raster.labels)
        np.testing.assert_array_equal(expected.sinr_values, cold_raster.sinr_values)
        np.testing.assert_array_equal(expected.labels, warm_raster.labels)
        np.testing.assert_array_equal(expected.sinr_values, warm_raster.sinr_values)

    per_request = len(requests)
    print(
        f"\nstations={STATION_COUNT} resolution={RESOLUTION} "
        f"requests={per_request}:"
    )
    print(f"{'mode':>24} {'total s':>9} {'ms/request':>11} {'hit rate':>9}")
    rows = [
        ("uncached", uncached_seconds, None),
        ("cold cache", cold_seconds, cold_stats.hit_rate),
        ("warm cache", warm_seconds, None),
    ]
    warm_hit_rate = (
        (warm_stats.hits - cold_stats.hits)
        / max(1, warm_stats.requests - cold_stats.requests)
    )
    rows[2] = ("warm cache", warm_seconds, warm_hit_rate)
    for label, seconds, hit_rate in rows:
        rate = "-" if hit_rate is None else f"{hit_rate:>8.0%}"
        print(
            f"{label:>24} {seconds:>9.3f} "
            f"{seconds / per_request * 1e3:>11.2f} {rate:>9}"
        )

    assert warm_hit_rate == 1.0  # the warm pass recomputed nothing
    speedup = uncached_seconds / warm_seconds
    print(f"warm cache vs uncached: {speedup:.1f}x "
          f"(cold pass overhead: {cold_seconds / uncached_seconds:.2f}x)")

    record_benchmark(
        "raster_cache",
        {
            "stations": STATION_COUNT,
            "resolution": RESOLUTION,
            "requests": per_request,
            "uncached_seconds": round(uncached_seconds, 4),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "cold_hit_rate": round(cold_stats.hit_rate, 4),
            "warm_speedup_vs_uncached": round(speedup, 2),
        },
    )

    # The warm cache must amortise: the default floor is the acceptance 5x
    # (REPRO_BENCH_MIN_SPEEDUP overrides for slow or noisy runners).
    assert speedup >= _speedup_floor(5.0)
