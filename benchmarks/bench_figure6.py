"""Figure 6: the point-location partition H+ / H? / H-.

Figure 6 depicts, for each station, the certified-inside region ``H_i^+``
(dark grey), the uncertainty band ``H_i^?`` (light grey) and the certified
outside ``H^-``.  The benchmark rebuilds the partition for the figure's
network, measures how the three regions split a sampling of the plane, and
verifies the structural guarantees of Theorem 3 on them:

    (1)  H_i^+ is contained in H_i,
    (2)  H^- misses every H_i,
    (3)  area(H_i^?) is at most an eps-fraction of area(H_i).
"""

from __future__ import annotations

import random

import pytest

from repro import Point, SINRDiagram
from repro.diagrams import figure6_network
from repro.pointlocation import PointLocationStructure, ZoneLabel

EPSILON = 0.25


@pytest.fixture(scope="module")
def figure6_structure():
    return PointLocationStructure(figure6_network(), epsilon=EPSILON)


@pytest.mark.paper
def test_figure6_partition_query_split(benchmark, figure6_structure):
    network = figure6_network()
    rng = random.Random(12)
    queries = [
        Point(rng.uniform(-7.0, 7.0), rng.uniform(-7.0, 8.0)) for _ in range(3000)
    ]

    answers = benchmark(figure6_structure.locate_many, queries)

    inside = sum(1 for a in answers if a.label is ZoneLabel.INSIDE)
    uncertain = sum(1 for a in answers if a.label is ZoneLabel.UNCERTAIN)
    outside = sum(1 for a in answers if a.label is ZoneLabel.OUTSIDE)

    # Guarantees (1) and (2) on the sampled queries.
    for query, answer in zip(queries, answers):
        if answer.label is ZoneLabel.INSIDE:
            assert network.is_received(answer.station, query)
        elif answer.label is ZoneLabel.OUTSIDE:
            assert all(
                not network.is_received(index, query) for index in range(len(network))
            )

    benchmark.extra_info["fraction_H_plus"] = round(inside / len(queries), 4)
    benchmark.extra_info["fraction_H_uncertain"] = round(uncertain / len(queries), 4)
    benchmark.extra_info["fraction_H_minus"] = round(outside / len(queries), 4)


@pytest.mark.paper
def test_figure6_uncertain_band_area(benchmark, figure6_structure):
    network = figure6_network()
    diagram = SINRDiagram(network)

    def measure():
        ratios = []
        for index in range(len(network)):
            zone_index = figure6_structure.zone_index(index)
            zone_area = diagram.zone(index).area_estimate(vertices=240)
            ratios.append(zone_index.uncertain_area() / zone_area)
        return ratios

    ratios = benchmark(measure)

    # Guarantee (3): every uncertainty band is at most an eps-fraction of its zone.
    assert all(ratio <= EPSILON for ratio in ratios)
    benchmark.extra_info["epsilon"] = EPSILON
    benchmark.extra_info["max_band_to_zone_ratio"] = round(max(ratios), 4)


@pytest.mark.paper
def test_figure6_structure_build(benchmark):
    network = figure6_network()

    structure = benchmark.pedantic(
        lambda: PointLocationStructure(network, epsilon=EPSILON),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["stored_cells"] = structure.size_estimate()
    benchmark.extra_info["segment_tests"] = structure.report.total_segment_tests
