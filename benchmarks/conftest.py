"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or theorem-level
claims.  Heavy objects (networks, diagrams, point-location structures) are
built once per module through session-scoped fixtures so that
``pytest benchmarks/ --benchmark-only`` stays laptop-friendly.
"""

from __future__ import annotations

import pytest

from repro import SINRDiagram, WirelessNetwork
from repro.workloads import uniform_random_network


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; ensure a sane default
    # so that plain `pytest benchmarks/` also works without --benchmark-only.
    config.addinivalue_line("markers", "paper: marks a paper-reproduction benchmark")


@pytest.fixture(scope="session")
def medium_network() -> WirelessNetwork:
    """An 8-station random deployment used by several benchmarks."""
    return uniform_random_network(
        8, side=16.0, minimum_separation=2.5, noise=0.005, beta=3.0, seed=4
    )


@pytest.fixture(scope="session")
def medium_diagram(medium_network) -> SINRDiagram:
    return SINRDiagram(medium_network)
