"""Figures 3-4: reception as transmitters are added one at a time.

The paper's series, with stations s1..s4 added in order and a fixed receiver:

    step 1 (s1 only)       : UDG hears s1,     SINR hears s1   (models agree)
    step 2 (s1, s2)        : UDG hears nothing, SINR hears s1  (false negative)
    step 3 (s1, s2, s3)    : UDG hears nothing, SINR hears s3  (false negative)
    step 4 (s1, s2, s3, s4): the outcome changes again across the models

The benchmark regenerates each step's decision pair and times the evaluation
of both models on the step's diagram.
"""

from __future__ import annotations

import pytest

from repro.diagrams import figure3_4_steps
from repro.graphs import UnitDiskGraph


EXPECTED_SERIES = {
    1: ("s1", "s1"),
    2: ("none", "s1"),
    3: ("none", "s3"),
    4: ("none", "none"),
}


def _label(index):
    return "none" if index is None else f"s{index + 1}"


@pytest.mark.paper
@pytest.mark.parametrize("step", [1, 2, 3, 4])
def test_figure3_4_step(benchmark, step):
    panel = figure3_4_steps()[step - 1]

    def evaluate():
        udg = UnitDiskGraph.from_network(panel.network, radius=panel.udg_radius)
        transmitters = range(min(step, len(panel.network)))
        udg_heard = udg.station_heard_at(panel.receiver, transmitters=transmitters)
        sinr_heard = panel.sinr_outcome()
        return udg_heard, sinr_heard

    udg_heard, sinr_heard = benchmark(evaluate)

    expected_udg, expected_sinr = EXPECTED_SERIES[step]
    assert _label(udg_heard) == expected_udg
    assert _label(sinr_heard) == expected_sinr
    benchmark.extra_info["step"] = step
    benchmark.extra_info["udg_hears"] = _label(udg_heard)
    benchmark.extra_info["sinr_hears"] = _label(sinr_heard)
