"""Incremental dynamic-network updates vs rebuilding from scratch.

The dynamic-network acceptance workload: one station of a 200-station
deployment moves a short distance, and every derived structure must follow.

Two gates, both against the honest static-world baseline:

* **shard-selective rebuild** — ``ShardedLocator.updated(new_network,
  delta)`` rebuilds only the shards whose station sets the move touches
  (plus the cheap all-shard routing-box refresh), against a full
  ``build()`` of the same configuration on the mutated network.  With an
  expensive Theorem-3 inner the incremental path must win by at least
  **5x**, while staying bit-identical to the fresh build (asserted on a
  20k-point batch);
* **tile-granular raster invalidation** — after the move,
  ``invalidate_for_delta`` re-keys every warm tile outside the moved
  station's certified reach and drops only the overlapping ones, so
  re-serving the warm request set is mostly cache assembly.  That re-serve
  must beat the same re-serve after a whole-fingerprint flush by at least
  **3x**.

``REPRO_BENCH_MIN_SPEEDUP=<float>`` overrides both floors on slow or noisy
runners (the CI smoke leg relaxes them), and ``REPRO_BENCH_QUICK=1``
shrinks the workload.  Results are recorded into ``BENCH_engine.json``
via :mod:`persist`.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from persist import record_benchmark
from repro.env import BENCH_QUICK, read_bool_knob
from repro import Point, SINRDiagram, TileCache
from repro.model import move_station
from repro.pointlocation import ShardedLocator, get_locator
from repro.raster import invalidate_for_delta
from repro.workloads import random_query_array, uniform_random_network

QUICK = read_bool_knob(BENCH_QUICK)
STATION_COUNT = 50 if QUICK else 200
QUERY_COUNT = 2_000 if QUICK else 20_000
SHARDS = 8 if QUICK else 16
RESOLUTION = 96 if QUICK else 192
DS_OPTIONS = {"epsilon": 0.5, "cover_method": "ray_sweep"}


def _speedup_floor(default: float) -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "")
    return float(override) if override.strip() else default


def _moved_workload(station_count: int, seed: int = 23):
    """A deployment plus the same deployment with one station nudged."""
    side = 4.0 * station_count ** 0.5
    network = uniform_random_network(
        station_count,
        side=side,
        minimum_separation=1.5,
        noise=0.002,
        beta=3.0,
        seed=seed,
    )
    index = station_count // 2
    station = network.stations[index]
    moved, delta = move_station(
        network, index, Point(station.x + 0.6, station.y - 0.4)
    )
    return network, moved, delta, side


@pytest.mark.paper
def test_incremental_update_beats_full_rebuild():
    """The acceptance gate: ``updated()`` >= 5x a fresh ``build()``."""
    network, moved, delta, side = _moved_workload(STATION_COUNT)
    queries = random_query_array(
        QUERY_COUNT, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=17
    )
    options = {"shards": SHARDS, "inner_options": DS_OPTIONS}

    start = time.perf_counter()
    locator = get_locator("sharded:theorem3").build(network, **options)
    initial_build = time.perf_counter() - start
    assert isinstance(locator, ShardedLocator)

    start = time.perf_counter()
    fresh = get_locator("sharded:theorem3").build(moved, **options)
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    incremental = locator.updated(moved, delta)
    incremental_seconds = time.perf_counter() - start

    report = incremental.last_update
    assert report is not None and not report.full_rebuild
    assert 0 < report.rebuilt < SHARDS  # the move touched a strict subset

    truth = fresh.locate_batch(queries)
    np.testing.assert_array_equal(incremental.locate_batch(queries), truth)

    speedup = full_seconds / incremental_seconds
    print(
        f"\nstations={STATION_COUNT} shards={SHARDS} single move: "
        f"initial build {initial_build:.2f}s, full rebuild {full_seconds:.2f}s, "
        f"incremental {incremental_seconds * 1e3:.1f} ms "
        f"({report.describe()}) -> {speedup:.1f}x"
    )

    record_benchmark(
        "incremental_update",
        {
            "stations": STATION_COUNT,
            "shards": SHARDS,
            "full_rebuild_seconds": round(full_seconds, 4),
            "incremental_seconds": round(incremental_seconds, 4),
            "shards_rebuilt": report.rebuilt,
            "shards_reused": report.reused,
            "speedup_vs_full_rebuild": round(speedup, 2),
        },
    )

    # A single move must not pay for the whole deployment (default floor
    # the acceptance 5x; REPRO_BENCH_MIN_SPEEDUP overrides).
    assert speedup >= _speedup_floor(5.0)


@pytest.mark.paper
def test_tile_invalidation_beats_full_flush():
    """The acceptance gate: delta invalidation re-serve >= 3x full flush."""
    network, moved, delta, side = _moved_workload(20, seed=31)
    lo, hi = -0.25 * side, 1.25 * side
    mid = 0.5 * (lo + hi)
    half = RESOLUTION // 2
    requests = [
        (Point(lo, lo), Point(hi, hi), RESOLUTION),
        (Point(lo, lo), Point(mid, mid), half),
        (Point(mid, lo), Point(hi, mid), half),
        (Point(lo, mid), Point(mid, hi), half),
        (Point(mid, mid), Point(hi, hi), half),
        (Point(lo, lo), Point(hi, hi), RESOLUTION),
    ]
    diagram = SINRDiagram(network)
    moved_diagram = SINRDiagram(moved)

    def warm_cache() -> TileCache:
        cache = TileCache(tile_size=32)
        for a, b, res in requests:
            diagram.rasterize(a, b, res, cache=cache)
        return cache

    def reserve_seconds(cache: TileCache) -> float:
        start = time.perf_counter()
        for a, b, res in requests:
            moved_diagram.rasterize(a, b, res, cache=cache)
        return time.perf_counter() - start

    flushed = warm_cache()
    flushed.invalidate_region(network.fingerprint, moved.fingerprint, None)
    flush_seconds = reserve_seconds(flushed)

    granular = warm_cache()
    rekeyed, dropped = invalidate_for_delta(granular, network, moved, delta)
    assert rekeyed > 0  # most warm tiles survive the move
    granular_seconds = reserve_seconds(granular)

    speedup = flush_seconds / granular_seconds
    print(
        f"\nstations=20 resolution={RESOLUTION} requests={len(requests)}: "
        f"full-flush re-serve {flush_seconds * 1e3:.1f} ms, "
        f"delta re-serve {granular_seconds * 1e3:.1f} ms "
        f"({rekeyed} rekeyed / {dropped} dropped) -> {speedup:.1f}x"
    )

    record_benchmark(
        "incremental_raster",
        {
            "stations": 20,
            "resolution": RESOLUTION,
            "requests": len(requests),
            "full_flush_seconds": round(flush_seconds, 4),
            "granular_seconds": round(granular_seconds, 4),
            "tiles_rekeyed": rekeyed,
            "tiles_dropped": dropped,
            "speedup_vs_full_flush": round(speedup, 2),
        },
    )

    # Tile-granular invalidation must amortise (default floor the
    # acceptance 3x; REPRO_BENCH_MIN_SPEEDUP overrides).
    assert speedup >= _speedup_floor(3.0)
