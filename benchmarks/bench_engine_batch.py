"""Batched query engine: batch vs. per-point scalar throughput.

The engine's reason to exist is bulk queries: one vectorised pass over an
``(m, 2)`` coordinate array instead of ``m`` Python calls.  This benchmark
measures the ratio on the acceptance workload (a 50-station uniform random
deployment, 10k query points) for the three query families:

* ``sinr_batch`` vs. per-point ``WirelessNetwork.sinr``,
* ``heard_station_batch`` vs. per-point ``SINRDiagram.station_heard_at``,
* locator ``locate_batch`` vs. per-point ``locate`` for the exact baselines
  and the Theorem 3 grid structure,

plus a backend-comparison section timing the same bulk workload through
every production backend (numpy, multiprocess, float32-screen, and
numba/gpu when installed); its per-backend q/s land in ``BENCH_engine.json``
via :mod:`persist`.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload (CI smoke mode), and
``REPRO_BENCH_MIN_SPEEDUP=<float>`` to override the batch-over-scalar
speedup gates on runners too slow or noisy for the defaults.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from persist import record_benchmark
from repro.env import BENCH_QUICK, read_bool_knob
from repro import Point, SINRDiagram
from repro.engine import (
    GPU_AVAILABLE,
    NUMBA_AVAILABLE,
    MultiprocessBackend,
    heard_station_batch,
    sinr_batch,
)
from repro.pointlocation import (
    BruteForceLocator,
    PointLocationStructure,
    VoronoiCandidateLocator,
)
from repro.workloads import random_query_array, uniform_random_network

QUICK = read_bool_knob(BENCH_QUICK)
STATION_COUNT = 10 if QUICK else 50
QUERY_COUNT = 500 if QUICK else 10_000
SCALAR_SAMPLE = 100 if QUICK else 1_000  # scalar loops are timed on a subsample
# The Theorem 3 structure's preprocessing is cubic-ish in n (Sturm segment
# tests along every zone boundary); its *query* throughput is what this
# module measures, so it gets a smaller deployment that builds in seconds.
DS_STATION_COUNT = 6 if QUICK else 12


def _make_workload(station_count):
    side = 4.0 * station_count ** 0.5
    network = uniform_random_network(
        station_count,
        side=side,
        minimum_separation=1.5,
        noise=0.002,
        beta=3.0,
        seed=23,
    )
    queries = random_query_array(
        QUERY_COUNT, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=17
    )
    return network, queries


@pytest.fixture(scope="module")
def workload():
    return _make_workload(STATION_COUNT)


@pytest.fixture(scope="module")
def ds_workload():
    network, queries = _make_workload(DS_STATION_COUNT)
    return network, queries, PointLocationStructure(network, epsilon=0.5)


def _speedup_floor(default: float) -> float:
    """The gate threshold, overridable for slow CI runners."""
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "")
    return float(override) if override.strip() else default


def _scalar_seconds_per_query(fn, points) -> float:
    start = time.perf_counter()
    for x, y in points:
        fn(Point(x, y))
    return (time.perf_counter() - start) / len(points)


def _batch_seconds_per_query(fn, queries, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(queries)
        best = min(best, time.perf_counter() - start)
    return best / len(queries)


@pytest.mark.paper
def test_throughput_sinr_batch(benchmark, workload):
    network, queries = workload
    benchmark(sinr_batch, network, queries)
    benchmark.extra_info["stations"] = STATION_COUNT
    benchmark.extra_info["queries"] = QUERY_COUNT
    benchmark.extra_info["per_query_us"] = round(
        benchmark.stats.stats.mean / QUERY_COUNT * 1e6, 3
    )


@pytest.mark.paper
def test_throughput_heard_station_batch(benchmark, workload):
    network, queries = workload
    benchmark(heard_station_batch, network, queries)
    benchmark.extra_info["per_query_us"] = round(
        benchmark.stats.stats.mean / QUERY_COUNT * 1e6, 3
    )


@pytest.mark.paper
def test_throughput_locate_batch_structure(benchmark, ds_workload):
    network, queries, structure = ds_workload
    benchmark(structure.locate_batch, queries)
    benchmark.extra_info["stations"] = DS_STATION_COUNT
    benchmark.extra_info["per_query_us"] = round(
        benchmark.stats.stats.mean / QUERY_COUNT * 1e6, 3
    )


@pytest.mark.paper
def test_speedup_batch_over_scalar(workload):
    """The acceptance ratio: batch >= 10x scalar on the 50 x 10k workload.

    Timed directly (not via the benchmark fixture) so the ratio is computed
    within one process on the same machine state; the scalar loops run on a
    subsample and are normalised per query.
    """
    network, queries = workload
    sample = queries[:SCALAR_SAMPLE]
    diagram_heard = SINRDiagram(network).station_heard_at

    scalar_heard = _scalar_seconds_per_query(diagram_heard, sample)
    batch_heard = _batch_seconds_per_query(
        lambda pts: heard_station_batch(network, pts), queries
    )

    voronoi = VoronoiCandidateLocator(network)
    scalar_locate = _scalar_seconds_per_query(voronoi.locate, sample)
    batch_locate = _batch_seconds_per_query(voronoi.locate_batch, queries)

    heard_speedup = scalar_heard / batch_heard
    locate_speedup = scalar_locate / batch_locate
    print(
        f"\nstations={STATION_COUNT} queries={QUERY_COUNT}: "
        f"heard-station speedup {heard_speedup:.1f}x "
        f"({scalar_heard * 1e6:.1f} -> {batch_heard * 1e6:.2f} us/query), "
        f"voronoi locate speedup {locate_speedup:.1f}x "
        f"({scalar_locate * 1e6:.1f} -> {batch_locate * 1e6:.2f} us/query)"
    )
    # Generous slack below the ~100x typically observed, so CI noise cannot
    # flake the gate while a genuine vectorisation regression still fails it;
    # REPRO_BENCH_MIN_SPEEDUP overrides it for pathologically slow runners.
    floor = _speedup_floor(3.0 if QUICK else 10.0)
    assert heard_speedup >= floor
    assert locate_speedup >= floor


@pytest.mark.paper
def test_speedup_structure_batch_over_scalar(ds_workload):
    """locate_batch of the Theorem 3 structure beats its own scalar loop."""
    network, queries, structure = ds_workload
    sample = queries[:SCALAR_SAMPLE]

    scalar = _scalar_seconds_per_query(structure.locate, sample)
    batch = _batch_seconds_per_query(structure.locate_batch, queries)
    speedup = scalar / batch
    print(
        f"\nDS locate speedup {speedup:.1f}x "
        f"({scalar * 1e6:.1f} -> {batch * 1e6:.2f} us/query)"
    )
    assert speedup >= _speedup_floor(2.0 if QUICK else 4.0)


@pytest.mark.paper
def test_backend_comparison(workload):
    """Per-backend throughput on the acceptance workload.

    Times ``sinr_batch`` and ``heard_station_batch`` through every production
    backend — numpy, multiprocess (pool forced on so the sharding path is
    what gets measured), and numba when installed (first call excluded: it
    is the JIT compilation) — and sanity-checks that all answers agree.
    Reported for the record; no relative gate, since the winner depends on
    core count and whether numba is present.
    """
    network, queries = workload
    backends = {"numpy": "numpy"}
    pool = MultiprocessBackend(
        workers=max(2, os.cpu_count() or 1), min_batch_size=1
    )
    backends["multiprocess"] = pool
    if NUMBA_AVAILABLE:
        backends["numba"] = "numba"
    backends["float32-screen"] = "float32-screen"
    if GPU_AVAILABLE:
        backends["gpu"] = "gpu"

    recorded = {}
    try:
        expected = heard_station_batch(network, queries, backend="numpy")
        print(
            f"\nbackend comparison (stations={STATION_COUNT} "
            f"queries={QUERY_COUNT}, multiprocess workers={pool.workers}):"
        )
        for name, backend in backends.items():
            # Warm-up: numba JIT compile, multiprocess pool start-up.
            heard_station_batch(network, queries[:64], backend=backend)
            sinr_seconds = _batch_seconds_per_query(
                lambda pts, b=backend: sinr_batch(network, pts, backend=b),
                queries,
            )
            heard_seconds = _batch_seconds_per_query(
                lambda pts, b=backend: heard_station_batch(network, pts, backend=b),
                queries,
            )
            np.testing.assert_array_equal(
                heard_station_batch(network, queries, backend=backend), expected
            )
            recorded[name] = {
                "sinr_qps": round(1.0 / sinr_seconds, 1),
                "heard_qps": round(1.0 / heard_seconds, 1),
            }
            print(
                f"  {name:>14}: sinr {sinr_seconds * 1e6:8.3f} us/query "
                f"({1.0 / sinr_seconds:>12,.0f} q/s), "
                f"heard {heard_seconds * 1e6:8.3f} us/query "
                f"({1.0 / heard_seconds:>12,.0f} q/s)"
            )
    finally:
        pool.close()

    baseline = recorded["numpy"]["heard_qps"]
    for name, payload in recorded.items():
        payload["heard_speedup_vs_numpy"] = round(
            payload["heard_qps"] / baseline, 3
        )
    record_benchmark(
        "engine_batch",
        {
            "stations": STATION_COUNT,
            "queries": QUERY_COUNT,
            "backends": recorded,
        },
    )


@pytest.mark.paper
def test_batch_answers_match_scalar_on_workload(workload):
    """Sanity gate next to the timing: the fast path answers are the real ones."""
    network, queries = workload
    sample = queries[:200]
    brute = BruteForceLocator(network)
    labels = brute.locate_batch(sample)
    for (x, y), label in zip(sample, labels):
        assert brute.locate(Point(x, y)) == label
