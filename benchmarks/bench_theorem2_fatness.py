"""Theorems 2, 4.1 and 4.2: fatness of reception zones.

The paper's claims, regenerated here:

* Theorem 4.1 — explicit bounds give ``phi = O(sqrt(n))``; the benchmark
  sweeps colinear worst-case networks of growing size and reports both the
  explicit-bound ratio (which grows like sqrt(n)) and the measured fatness
  (which does not).
* Theorem 4.2 / Theorem 2 — the measured fatness never exceeds the constant
  ``(sqrt(beta)+1)/(sqrt(beta)-1)``; the two-station network attains it
  exactly (Lemma 4.3 with equal powers).
* Figure 7 — the delta / Delta measurement itself.
"""

from __future__ import annotations

import math

import pytest

from repro import SINRDiagram
from repro.analysis import verify_zone_fatness
from repro.diagrams import figure7_network
from repro.geometry import theoretical_fatness_bound
from repro.pointlocation import explicit_radius_bounds
from repro.workloads import colinear_network, theorem_verification_networks

NETWORKS = dict(theorem_verification_networks())


@pytest.mark.paper
@pytest.mark.parametrize("name", sorted(NETWORKS))
def test_theorem2_fatness_bound(benchmark, name):
    network = NETWORKS[name]
    diagram = SINRDiagram(network)

    def measure():
        return [
            verify_zone_fatness(diagram.zone(index), angles=90)
            for index in range(len(network))
            if not diagram.zone(index).is_degenerate
        ]

    results = benchmark(measure)
    assert all(result.satisfies_bound for result in results)
    benchmark.extra_info["scenario"] = name
    benchmark.extra_info["beta"] = network.beta
    benchmark.extra_info["max_fatness"] = round(max(r.fatness for r in results), 3)
    benchmark.extra_info["bound"] = round(results[0].bound, 3)


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [2, 4, 8, 16])
def test_theorem41_explicit_bounds_grow_with_n(benchmark, station_count):
    network = colinear_network(station_count, spacing=2.0, beta=2.0)

    def measure():
        explicit = explicit_radius_bounds(network, 0)
        measured = verify_zone_fatness(SINRDiagram(network).zone(0), angles=120)
        return explicit, measured

    explicit, measured = benchmark(measure)

    bound = theoretical_fatness_bound(2.0)
    # Theorem 4.1's certified ratio grows roughly like sqrt(beta * (n-1)).
    expected_explicit = (math.sqrt(2.0 * (station_count - 1)) + 1) / (math.sqrt(2.0) - 1)
    assert explicit.ratio == pytest.approx(expected_explicit, rel=1e-6)
    # The actual fatness stays below the Theorem 4.2 constant.
    assert measured.fatness <= bound * (1 + 1e-6)
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["explicit_ratio_O_sqrt_n"] = round(explicit.ratio, 3)
    benchmark.extra_info["measured_fatness"] = round(measured.fatness, 3)
    benchmark.extra_info["theorem42_bound"] = round(bound, 3)


@pytest.mark.paper
def test_lemma43_two_stations_attain_the_bound(benchmark):
    network = colinear_network(2, spacing=4.0, beta=2.0)

    result = benchmark(
        verify_zone_fatness, SINRDiagram(network).zone(0), 360
    )
    assert result.fatness == pytest.approx(result.bound, rel=1e-3)
    benchmark.extra_info["measured"] = round(result.fatness, 4)
    benchmark.extra_info["bound"] = round(result.bound, 4)


@pytest.mark.paper
def test_figure7_fatness_measurement(benchmark):
    network = figure7_network()
    zone = SINRDiagram(network).zone(0)

    result = benchmark(verify_zone_fatness, zone, 180)
    assert result.delta < result.Delta
    assert result.satisfies_bound
    benchmark.extra_info["delta"] = round(result.delta, 4)
    benchmark.extra_info["Delta"] = round(result.Delta, 4)
    benchmark.extra_info["fatness"] = round(result.fatness, 4)
