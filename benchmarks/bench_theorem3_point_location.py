"""Theorem 3: the approximate point-location data structure.

The paper claims a structure of size ``O(n / eps)`` built in ``O(n^3 / eps)``
time that answers queries in ``O(log n)``, against a naive exact locator that
needs ``O(n)`` (Voronoi candidate) or ``O(n^2)`` (brute force) per query.

The benchmark regenerates the relevant series:

* query latency of DS vs. the two exact baselines, as n grows;
* preprocessing time and structure size as a function of eps (size ~ 1/eps);
* correctness accounting: certified answers never contradict the exact
  locator and the uncertain fraction shrinks with eps.
"""

from __future__ import annotations

import random

import pytest

from repro import Point
from repro.pointlocation import (
    BruteForceLocator,
    PointLocationStructure,
    VoronoiCandidateLocator,
    ZoneLabel,
)
from repro.workloads import random_query_points, uniform_random_network


def build_network(station_count: int):
    return uniform_random_network(
        station_count,
        side=4.0 * station_count ** 0.5,
        minimum_separation=2.0,
        noise=0.002,
        beta=3.0,
        seed=station_count,
    )


QUERY_COUNT = 2000


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [4, 8, 16])
def test_query_time_grid_structure(benchmark, station_count):
    network = build_network(station_count)
    structure = PointLocationStructure(network, epsilon=0.4)
    side = 4.0 * station_count ** 0.5
    queries = random_query_points(
        QUERY_COUNT, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=7
    )

    benchmark(structure.locate_many, queries)
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["per_query_us"] = round(
        benchmark.stats.stats.mean / QUERY_COUNT * 1e6, 2
    )
    benchmark.extra_info["stored_cells"] = structure.size_estimate()


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [4, 8, 16])
def test_query_time_voronoi_candidate_baseline(benchmark, station_count):
    network = build_network(station_count)
    locator = VoronoiCandidateLocator(network)
    side = 4.0 * station_count ** 0.5
    queries = random_query_points(
        QUERY_COUNT, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=7
    )

    benchmark(lambda: [locator.locate(q) for q in queries])
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["per_query_us"] = round(
        benchmark.stats.stats.mean / QUERY_COUNT * 1e6, 2
    )


@pytest.mark.paper
@pytest.mark.parametrize("station_count", [4, 8])
def test_query_time_brute_force_baseline(benchmark, station_count):
    network = build_network(station_count)
    locator = BruteForceLocator(network)
    side = 4.0 * station_count ** 0.5
    queries = random_query_points(
        500, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=7
    )

    benchmark(lambda: [locator.locate(q) for q in queries])
    benchmark.extra_info["stations"] = station_count
    benchmark.extra_info["per_query_us"] = round(
        benchmark.stats.stats.mean / 500 * 1e6, 2
    )


@pytest.mark.paper
@pytest.mark.parametrize("epsilon", [0.6, 0.3, 0.15])
def test_preprocessing_cost_vs_epsilon(benchmark, epsilon):
    network = build_network(5)

    structure = benchmark.pedantic(
        lambda: PointLocationStructure(network, epsilon=epsilon),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["stored_cells"] = structure.size_estimate()
    benchmark.extra_info["segment_tests"] = structure.report.total_segment_tests
    benchmark.extra_info["cells_times_epsilon"] = round(
        structure.size_estimate() * epsilon, 1
    )


@pytest.mark.paper
def test_certified_answers_are_exact(benchmark):
    network = build_network(6)
    structure = PointLocationStructure(network, epsilon=0.4)
    exact = VoronoiCandidateLocator(network)
    rng = random.Random(3)
    queries = [Point(rng.uniform(-2, 12), rng.uniform(-2, 12)) for _ in range(1500)]

    def check():
        wrong = 0
        uncertain = 0
        for query in queries:
            answer = structure.locate_answer(query)
            truth = exact.locate(query)
            if answer.label is ZoneLabel.UNCERTAIN:
                uncertain += 1
            elif answer.label is ZoneLabel.INSIDE and truth != answer.station:
                wrong += 1
            elif answer.label is ZoneLabel.OUTSIDE and truth >= 0:
                wrong += 1
        return wrong, uncertain

    wrong, uncertain = benchmark(check)
    assert wrong == 0
    benchmark.extra_info["wrong_certified_answers"] = wrong
    benchmark.extra_info["uncertain_fraction"] = round(uncertain / len(queries), 4)
