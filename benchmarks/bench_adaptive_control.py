"""Closed-loop adaptive latency budget vs every static setting.

PR 9's acceptance gate.  The micro-batcher's latency budget is the classic
static trade-off: small budgets give low per-query latency but tiny
batches, large budgets amortise dispatch but make lonely queries wait.
:class:`repro.control.AdaptiveLatencyBudget` (AIMD over the metrics hub)
claims to remove the choice — so this bench runs three traffic shapes and
requires the adaptive controller to match or beat the **best** static
budget from a representative grid on every one of them:

* ``poisson``  — open-loop Poisson arrivals; scored by median end-to-end
  latency (the service's own exact-over-the-run reservoir percentile).
* ``burst``    — synchronized bursts with idle gaps; scored by median
  latency.
* ``closed``   — request-response clients, next query only after the
  previous answer; scored by completion time.

Open-loop *completion* time is schedule-dominated (every budget finishes
when the last arrival is served), so the open-loop shapes score latency.
The median is the scored percentile because it is structural — it tracks
``budget/2 + compute`` and orders the configurations identically run after
run — whereas p99 on a shared runner is dominated by scheduler hiccups
that hit every configuration alike (both are printed; only the median is
gated).  Every run — static or adaptive — carries the metrics hub, so the
comparison isolates the control *policy* rather than charging the
adaptive runs alone for observability.

A deployment pins ONE budget for whatever traffic arrives, so each static
budget is judged on its aggregate across the shapes (geometric mean of its
per-shape score ratio vs adaptive, so the shapes' different units and
magnitudes weigh equally), and the gate requires the controller to beat
the best aggregate static.  The per-shape table still prints and is
recorded, making visible where each static wins its home turf and loses
abroad.  A separate, non-gated test demonstrates the transient behaviour:
under a flood the controller grows the budget away from its floor
(pressure signal = sealed batches piling at the executor) and decays back
once the flood drains.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload (CI smoke mode) and
``REPRO_BENCH_MIN_SPEEDUP`` to relax the >= 1.0x gate on noisy runners.
Bit-identity of every served answer against a direct ``locate_batch`` is
asserted unconditionally.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from persist import record_benchmark
from repro.env import BENCH_QUICK, read_bool_knob
from repro import Point
from repro.control import AdaptiveLatencyBudget
from repro.obs import MetricsHub
from repro.pointlocation import build_locator
from repro.service import QueryService
from repro.workloads import (
    random_query_array,
    run_bursts,
    run_closed_loop,
    run_poisson,
    uniform_random_network,
)

QUICK = read_bool_knob(BENCH_QUICK)
STATION_COUNT = 50
QUERY_COUNT = 1_000 if QUICK else 4_000  # <= stats reservoir: p99 is exact
REPEATS = 2

#: The static grid the controller must beat (seconds).  Spans the regimes:
#: latency-first (1 ms), the repo default (2 ms), throughput-first (8 ms).
#: The controller's floor sits below the whole grid — finer than a static
#: choice anyone would pin — and its cap above it.
STATIC_BUDGETS = (0.001, 0.002, 0.008)

ADAPTIVE_FLOOR = 0.00025
ADAPTIVE_CAP = 0.02
HUB_INTERVAL = 0.01

POISSON_RATE = 3_000.0  # open-loop arrivals, q/s
BURST_SIZE = 64
BURST_GAP = 0.006
CLIENTS = 16


def _speedup_floor(default: float) -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "")
    return float(override) if override.strip() else default


@pytest.fixture(scope="module")
def workload():
    side = 4.0 * STATION_COUNT ** 0.5
    network = uniform_random_network(
        STATION_COUNT,
        side=side,
        minimum_separation=1.5,
        noise=0.002,
        beta=3.0,
        seed=23,
    )
    queries = random_query_array(
        QUERY_COUNT, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=17
    )
    truth = build_locator(network, "voronoi").locate_batch(queries)
    return network, queries, truth


def make_adaptive_controller() -> AdaptiveLatencyBudget:
    return AdaptiveLatencyBudget(
        min_budget=ADAPTIVE_FLOOR,
        max_budget=ADAPTIVE_CAP,
        target_wait_p99=0.004,
        increase=0.001,
        decrease=0.7,
    )


SHAPES = {
    "poisson": dict(
        driver=lambda service, queries: run_poisson(
            service, queries, rate=POISSON_RATE, seed=11
        ),
        metric="latency_p50_ms",
    ),
    "burst": dict(
        driver=lambda service, queries: run_bursts(
            service, queries, burst_size=BURST_SIZE, gap=BURST_GAP
        ),
        metric="latency_p50_ms",
    ),
    "closed": dict(
        driver=lambda service, queries: run_closed_loop(
            service, queries, clients=CLIENTS
        ),
        metric="completion_ms",
    ),
}


async def _serve_once(network, queries, shape: str, budget=None):
    """One run of ``shape``; ``budget=None`` means the adaptive controller.

    Every run gets a ticking :class:`MetricsHub` so static and adaptive
    configurations pay identical observability overhead.
    """
    adaptive = budget is None
    controller = make_adaptive_controller() if adaptive else None
    hub = MetricsHub(interval=HUB_INTERVAL)
    kwargs = (
        dict(metrics=hub, controller=controller) if adaptive
        else dict(metrics=hub, latency_budget=budget)
    )
    async with QueryService(
        network, "voronoi", max_batch_size=4096, max_pending=len(queries),
        **kwargs,
    ) as service:
        await hub.start()
        started = time.perf_counter()
        answers = await SHAPES[shape]["driver"](service, queries)
        seconds = time.perf_counter() - started
        await hub.stop()
        snapshot = service.stats_snapshot()
    return answers, seconds, snapshot, controller


def serve_shape(network, queries, truth, shape: str, budget=None):
    """Best-of-REPEATS score for one configuration of one shape."""
    best = None
    for _ in range(REPEATS):
        answers, seconds, snapshot, controller = asyncio.run(
            _serve_once(network, queries, shape, budget)
        )
        np.testing.assert_array_equal(answers, truth)
        score = (
            seconds if SHAPES[shape]["metric"] == "completion_ms"
            else snapshot.latency_p50
        )
        if best is None or score < best[0]:
            best = (score, seconds, snapshot, controller)
    return best


@pytest.mark.paper
def test_adaptive_budget_beats_every_static_on_aggregate(workload):
    """The gate: adaptive >= 1.0x every static budget's cross-shape
    aggregate (geometric mean of the per-shape score ratios)."""
    network, queries, truth = workload
    floor = _speedup_floor(1.0)
    payload = {
        "stations": STATION_COUNT,
        "queries": QUERY_COUNT,
        "static_budgets_ms": [round(b * 1e3, 2) for b in STATIC_BUDGETS],
        "adaptive_floor_ms": ADAPTIVE_FLOOR * 1e3,
        "adaptive_cap_ms": ADAPTIVE_CAP * 1e3,
    }
    static_scores = {budget: {} for budget in STATIC_BUDGETS}
    adaptive_scores = {}
    for shape, spec in SHAPES.items():
        metric = spec["metric"]
        print(f"\n[{shape}] scored by {metric} "
              f"(best of {REPEATS} runs per configuration)")
        print(f"{'budget':>14} {'score':>10} {'mean batch':>11} "
              f"{'lat p99 ms':>11} {'wait p99 ms':>12}")
        for budget in STATIC_BUDGETS:
            score, seconds, snapshot, _ = serve_shape(
                network, queries, truth, shape, budget
            )
            static_scores[budget][shape] = score
            print(f"{budget * 1e3:>11.2f} ms {score * 1e3:>10.2f} "
                  f"{snapshot.mean_batch_size:>11.1f} "
                  f"{snapshot.latency_p99 * 1e3:>11.2f} "
                  f"{snapshot.wait_p99 * 1e3:>12.2f}")
        adaptive_score, seconds, snapshot, controller = serve_shape(
            network, queries, truth, shape, budget=None
        )
        adaptive_scores[shape] = adaptive_score
        final_budget = controller.budget if controller else float("nan")
        print(f"{'adaptive':>14} {adaptive_score * 1e3:>10.2f} "
              f"{snapshot.mean_batch_size:>11.1f} "
              f"{snapshot.latency_p99 * 1e3:>11.2f} "
              f"{snapshot.wait_p99 * 1e3:>12.2f}   "
              f"(final budget {final_budget * 1e3:.2f} ms, "
              f"{controller.grows} grows / {controller.shrinks} shrinks)")
        best_on_shape = min(static_scores[b][shape] for b in STATIC_BUDGETS)
        payload[shape] = {
            metric: round(adaptive_score * 1e3, 3),
            "static_" + metric: {
                f"{b * 1e3:.2f}ms": round(static_scores[b][shape] * 1e3, 3)
                for b in STATIC_BUDGETS
            },
            "speedup_vs_best_static_on_shape": round(
                best_on_shape / adaptive_score, 2
            ),
            "final_adaptive_budget_ms": round(final_budget * 1e3, 3),
        }

    # One pinned budget has to serve every shape: judge each static on the
    # geometric mean of its per-shape ratio to adaptive, then require the
    # controller to beat even the best static on that aggregate.
    print("\naggregate (geomean over shapes of static score / adaptive score):")
    aggregates = {}
    for budget in STATIC_BUDGETS:
        ratios = [
            static_scores[budget][shape] / adaptive_scores[shape]
            for shape in SHAPES
        ]
        aggregate = float(np.prod(ratios)) ** (1.0 / len(ratios))
        aggregates[budget] = aggregate
        per_shape = ", ".join(
            f"{shape} {ratio:.2f}x" for shape, ratio in zip(SHAPES, ratios)
        )
        print(f"  static {budget * 1e3:>5.2f} ms: {aggregate:.2f}x "
              f"({per_shape})")
    best_budget = min(aggregates, key=aggregates.__getitem__)
    speedup = aggregates[best_budget]
    print(f"best static on aggregate: {best_budget * 1e3:.2f} ms; "
          f"adaptive speedup {speedup:.2f}x (gate: >= {floor:.2f}x)")
    payload["aggregate_speedups"] = {
        f"{b * 1e3:.2f}ms": round(aggregates[b], 3) for b in STATIC_BUDGETS
    }
    payload["best_static_budget_ms"] = round(best_budget * 1e3, 2)
    payload["speedup_vs_best_static"] = round(speedup, 2)
    record_benchmark("adaptive_control", payload)
    assert speedup >= floor, (
        f"adaptive lost the aggregate to static {best_budget * 1e3:.2f} ms: "
        f"{speedup:.2f}x < {floor:.2f}x"
    )


@pytest.mark.paper
def test_budget_grows_under_pressure_then_decays(workload):
    """Phase-shift demo (not speedup-gated): a flood of simultaneous
    queries piles sealed batches at the executor, the controller must grow
    the budget away from its floor, and once the flood drains the
    light-traffic rule must decay it back down."""
    network, queries, truth = workload
    waves = 8  # make the flood outlast several controller ticks
    flood_queries = np.tile(queries, (waves, 1))
    flood_truth = np.tile(truth, waves)
    interval = 0.002

    async def flood():
        controller = make_adaptive_controller()
        hub = MetricsHub(interval=interval)
        async with QueryService(
            network, "voronoi",
            metrics=hub, controller=controller,
            max_batch_size=32,  # keep batches small so backlog shows up
            max_pending=len(flood_queries),
        ) as service:
            await hub.start()
            answers = await service.locate_many(flood_queries)
            peak_budget = controller.budget
            # Idle tail: with the flood drained, arrivals stop and the
            # light-traffic rule should walk the budget back down.
            await asyncio.sleep(20 * interval)
            await hub.stop()
        return answers, controller, peak_budget

    answers, controller, peak_budget = asyncio.run(flood())
    np.testing.assert_array_equal(answers, flood_truth)
    peak = max(budget for _, budget in controller.trace())
    print(f"\nflood of {len(flood_queries)} concurrent queries: "
          f"{controller.grows} grows / {controller.shrinks} shrinks, "
          f"peak budget {peak * 1e3:.2f} ms "
          f"(floor {ADAPTIVE_FLOOR * 1e3:.2f} ms), "
          f"final {controller.budget * 1e3:.2f} ms")
    assert controller.grows >= 1, "the flood never triggered a grow"
    assert peak > ADAPTIVE_FLOOR
    assert controller.shrinks >= 1, "the idle tail never triggered a shrink"
    assert controller.budget < peak
