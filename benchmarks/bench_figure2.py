"""Figure 2: cumulative interference — the UDG false positive.

The paper's claim: the receiver lies within the range of ``s1`` only, so the
UDG (protocol) model predicts successful reception, but the *cumulative*
interference of ``s2, s3, s4`` (each individually out of range) pushes the
SINR below the threshold.  The benchmark regenerates both halves of the figure
and additionally measures, over the whole plot region, how much of the plane
is affected by this kind of false positive.
"""

from __future__ import annotations

import pytest

from repro import Point, SINRDiagram
from repro.diagrams import figure2_scenario
from repro.graphs import ModelComparator, ReceptionOutcome


@pytest.mark.paper
def test_figure2_false_positive_at_the_receiver(benchmark):
    panel = figure2_scenario()

    def evaluate():
        comparator = ModelComparator(panel.network, udg_radius=panel.udg_radius)
        return (
            comparator.heard_station_udg(panel.receiver),
            comparator.heard_station_sinr(panel.receiver),
            comparator.compare_at(panel.receiver, 0).outcome,
        )

    udg_heard, sinr_heard, outcome = benchmark(evaluate)

    # Paper's series: UDG says "hears s1", SINR says "hears nothing".
    assert udg_heard == 0
    assert sinr_heard is None
    assert outcome is ReceptionOutcome.FALSE_POSITIVE
    benchmark.extra_info["udg"] = "s1"
    benchmark.extra_info["sinr"] = "none"
    benchmark.extra_info["outcome"] = outcome.value


@pytest.mark.paper
def test_figure2_false_positive_area(benchmark):
    panel = figure2_scenario()
    comparator = ModelComparator(panel.network, udg_radius=panel.udg_radius)

    summary = benchmark(
        comparator.summarize_grid,
        Point(-10.0, -10.0),
        Point(10.0, 10.0),
        0,
        60,
    )

    # A non-trivial fraction of s1's UDG disk is a false positive.
    assert summary.counts[ReceptionOutcome.FALSE_POSITIVE] > 0
    benchmark.extra_info["false_positive_fraction"] = round(
        summary.fraction(ReceptionOutcome.FALSE_POSITIVE), 4
    )
    benchmark.extra_info["disagreement_fraction"] = round(
        summary.disagreement_fraction, 4
    )


@pytest.mark.paper
def test_figure2_sinr_diagram_raster(benchmark, ):
    panel = figure2_scenario()
    diagram = SINRDiagram(panel.network)

    raster = benchmark(
        diagram.rasterize, Point(-10, -10), Point(10, 10), 200
    )
    # In the SINR panel the receiver's pixel is in the null zone.
    assert raster.label_at(panel.receiver) == -1
    benchmark.extra_info["coverage_fraction"] = round(raster.coverage_fraction(), 4)
