"""The precision tier: float32 screen-then-verify throughput and exactness.

The acceptance workload is the ISSUE's gate: 200 stations x 100k query
points, where ``float32-screen`` must beat the numpy float64 backend by
>= 1.5x on ``strongest_station_batch`` while staying bit-identical.  On top
of the gate, two sweeps characterise the design space:

* margin widths — a wider decision margin routes more points through the
  exact inner backend; the sweep records the verified fraction and the
  throughput cost per margin, and asserts exactness at every width;
* chunk budgets — the shared ``REPRO_ENGINE_CHUNK_BYTES`` budget trades
  peak memory against per-chunk overhead; the sweep asserts bit-identical
  answers across budgets while recording the throughput of each.

Headline numbers are persisted to ``BENCH_engine.json`` via :mod:`persist`.
``REPRO_BENCH_QUICK=1`` shrinks the workload (CI smoke mode) and
``REPRO_BENCH_MIN_SPEEDUP=<float>`` overrides the speedup gate.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from persist import record_benchmark
from repro.env import BENCH_QUICK, read_bool_knob
from repro import Point
from repro.engine import (
    GPU_AVAILABLE,
    Float32ScreenBackend,
    get_backend,
    heard_station_batch,
    strongest_station_batch,
)
from repro.workloads import random_query_array, uniform_random_network

QUICK = read_bool_knob(BENCH_QUICK)
STATION_COUNT = 40 if QUICK else 200
QUERY_COUNT = 5_000 if QUICK else 100_000


def _speedup_floor(default: float) -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "")
    return float(override) if override.strip() else default


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def workload():
    side = 4.0 * STATION_COUNT ** 0.5
    network = uniform_random_network(
        STATION_COUNT,
        side=side,
        minimum_separation=1.5,
        noise=0.002,
        beta=3.0,
        seed=29,
    )
    queries = random_query_array(
        QUERY_COUNT, Point(-4.0, -4.0), Point(side + 4.0, side + 4.0), seed=31
    )
    return network, queries


@pytest.mark.paper
def test_strongest_station_speedup_gate(workload):
    """The acceptance gate: float32-screen >= 1.5x numpy on strongest-station.

    Also times ``heard_station_batch`` for the record and re-asserts
    bit-identical answers on the gate workload itself (the equivalence
    property suite covers the adversarial cases).
    """
    network, queries = workload
    screen = get_backend("float32-screen")
    screen.stats.reset()

    results = {}
    for name in ("numpy", "float32-screen") + (("gpu",) if GPU_AVAILABLE else ()):
        strongest_station_batch(network, queries[:256], backend=name)  # warm
        strongest = _best_seconds(
            lambda n=name: strongest_station_batch(network, queries, backend=n)
        )
        heard = _best_seconds(
            lambda n=name: heard_station_batch(network, queries, backend=n)
        )
        results[name] = {
            "strongest_qps": round(QUERY_COUNT / strongest, 1),
            "heard_qps": round(QUERY_COUNT / heard, 1),
        }

    np.testing.assert_array_equal(
        strongest_station_batch(network, queries, backend="float32-screen"),
        strongest_station_batch(network, queries, backend="numpy"),
    )
    np.testing.assert_array_equal(
        heard_station_batch(network, queries, backend="float32-screen"),
        heard_station_batch(network, queries, backend="numpy"),
    )

    speedup = (
        results["float32-screen"]["strongest_qps"]
        / results["numpy"]["strongest_qps"]
    )
    verify_fraction = screen.stats.verify_fraction()
    print(
        f"\nmixed precision (stations={STATION_COUNT} queries={QUERY_COUNT}): "
        f"strongest numpy {results['numpy']['strongest_qps']:,.0f} q/s, "
        f"float32-screen {results['float32-screen']['strongest_qps']:,.0f} q/s "
        f"({speedup:.2f}x), verify fraction {verify_fraction:.4f}"
    )
    record_benchmark(
        "mixed_precision",
        {
            "stations": STATION_COUNT,
            "queries": QUERY_COUNT,
            "backends": results,
            "strongest_speedup_vs_numpy": round(speedup, 3),
            "verify_fraction": round(verify_fraction, 6),
        },
    )
    # The tentpole's raison d'etre; REPRO_BENCH_MIN_SPEEDUP overrides for
    # noisy or underpowered runners.
    assert speedup >= _speedup_floor(1.5)


@pytest.mark.paper
def test_margin_width_sweep(workload):
    """Wider margins verify more points but never change an answer."""
    network, queries = workload
    expected = heard_station_batch(network, queries, backend="numpy")
    sweep = {}
    previous_fraction = -1.0
    for margin in (1e-5, 1e-3, 1e-1):
        screen = Float32ScreenBackend(decision_margin=margin)
        seconds = _best_seconds(
            lambda b=screen: heard_station_batch(network, queries, backend=b),
            repeats=2,
        )
        np.testing.assert_array_equal(
            heard_station_batch(network, queries, backend=screen), expected
        )
        fraction = screen.stats.verify_fraction()
        sweep[f"{margin:g}"] = {
            "heard_qps": round(QUERY_COUNT / seconds, 1),
            "verify_fraction": round(fraction, 6),
        }
        # Monotone by construction: a wider margin can only flag more points.
        assert fraction >= previous_fraction
        previous_fraction = fraction
    print(f"\nmargin sweep: {sweep}")
    record_benchmark("mixed_precision_margin_sweep", sweep)


@pytest.mark.paper
def test_chunk_budget_sweep(workload, monkeypatch):
    """Throughput across chunk budgets; answers bit-identical at every one."""
    network, queries = workload
    expected = strongest_station_batch(network, queries, backend="numpy")
    sweep = {}
    for budget in (4 * 2**20, 64 * 2**20, 256 * 2**20):
        monkeypatch.setenv("REPRO_ENGINE_CHUNK_BYTES", str(budget))
        seconds = _best_seconds(
            lambda: strongest_station_batch(
                network, queries, backend="float32-screen"
            ),
            repeats=2,
        )
        np.testing.assert_array_equal(
            strongest_station_batch(network, queries, backend="float32-screen"),
            expected,
        )
        sweep[f"{budget >> 20}MiB"] = {
            "strongest_qps": round(QUERY_COUNT / seconds, 1)
        }
    print(f"\nchunk budget sweep: {sweep}")
    record_benchmark("mixed_precision_chunk_sweep", sweep)
