"""Adversarial tests of the float32 screen-then-verify precision tier.

The general property suite (``test_engine.py``) already runs
``float32-screen`` through the full backend-equivalence matrix; this module
attacks the *margin* machinery directly with inputs built to sit exactly
where a float32 screen alone would go wrong:

* points whose SINR *equals* beta (zero decision margin), constructed by
  setting beta to the computed SINR, plus straddles a hair either side;
* exact strongest-station ties (perpendicular bisector, duplicated
  stations) where top-1/top-2 separation is zero;
* overflow-close and float32-coincident points (float64-distinct
  coordinates that round onto a station in float32);
* the late-binding contract of the inner backend (the PR's bugfix): a
  ``register_backend`` overwrite or a ``use_backend`` context must reach
  the verify path of an already-constructed screen backend;
* end-to-end round trips through every layer that routes by backend name —
  ``sharded:`` locators, the micro-batching service, and the raster tiles.

Everything asserts bit-identity against the numpy float64 backend (itself
property-tested against ``reference``), and — where the point of the test
is the verify path — that the screen really did route points through it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Point
from repro.engine import (
    Float32ScreenBackend,
    NumpyBackend,
    get_backend,
    heard_station_batch,
    locate_batch,
    received_at,
    received_mask,
    register_backend,
    sinr_batch,
    strongest_station_batch,
    use_backend,
)
from repro.engine import backend as backend_module
from repro.exceptions import ReproError
from repro.pointlocation import build_locator
from repro.service import serve_points
from seeded_workloads import query_box_array, seeded_network

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def network_6(seed: int = 60, **kwargs):
    return seeded_network(6, side=14.0, seed=seed, **kwargs)


def assert_decisions_identical(network, points, backend, reference="numpy"):
    """Every decision family, bit-identical between two backends."""
    indices = np.arange(len(points)) % len(network)
    pairs = [
        strongest_station_batch(network, points, backend=backend),
        heard_station_batch(network, points, backend=backend),
        received_mask(network, 0, points, backend=backend),
        received_at(network, indices, points, backend=backend),
    ]
    expected = [
        strongest_station_batch(network, points, backend=reference),
        heard_station_batch(network, points, backend=reference),
        received_mask(network, 0, points, backend=reference),
        received_at(network, indices, points, backend=reference),
    ]
    for got, want in zip(pairs, expected):
        np.testing.assert_array_equal(got, want)


class TestAdversarialMargins:
    def test_zero_margin_reception_boundary(self):
        """Points whose SINR is *exactly* beta, plus straddles either side.

        ``with_beta(sinr(point))`` puts the point on the decision boundary
        to the last bit: any float32 rounding of the screen would flip the
        ``>=`` test, so these points must all ride the verify path.
        """
        base = network_6()
        probes = query_box_array(base, 40, seed=61, margin=1.0)
        sinr = sinr_batch(base, probes, backend="numpy")
        screen = Float32ScreenBackend()
        for j in (0, 7, 19, 33):
            best = int(np.argmax(sinr[:, j]))
            value = float(sinr[best, j])
            if not (0.0 < value < np.inf):
                continue
            network = base.with_beta(value)
            jitter = np.array([1.0 - 1e-12, 1.0, 1.0 + 1e-12])
            points = np.vstack([probes, probes[j] * jitter[:, None]])
            screen.stats.reset()
            assert_decisions_identical(network, points, screen)
            assert screen.stats.verified > 0

    def test_exact_strongest_station_ties(self):
        """Perpendicular-bisector points: top-1 == top-2, zero separation."""
        network = seeded_network(2, side=8.0, seed=62)
        a, b = network.coords
        mid = (a + b) / 2.0
        offsets = np.linspace(-3.0, 3.0, 21)
        perp = np.array([-(b - a)[1], (b - a)[0]])
        perp = perp / np.hypot(*perp)
        points = mid[None, :] + offsets[:, None] * perp[None, :]
        screen = Float32ScreenBackend()
        screen.stats.reset()
        assert_decisions_identical(network, points, screen)
        # Exact float64 ties exist only where the arithmetic cooperates,
        # but the bisector band must at least partly defeat the separation
        # test; what matters above is that answers (first-index tie-break
        # included) came out identical.
        assert screen.stats.verified > 0

    def test_duplicated_stations_tie_everywhere(self):
        """Two co-located equal-power stations: every point is a tie."""
        network = network_6(seed=63)
        first = network.stations[0]
        duplicated = network.with_station(first)
        points = query_box_array(duplicated, 120, seed=64)
        screen = Float32ScreenBackend()
        screen.stats.reset()
        got = strongest_station_batch(duplicated, points, backend=screen)
        want = strongest_station_batch(duplicated, points, backend="numpy")
        np.testing.assert_array_equal(got, want)
        # Wherever the duplicated pair wins, top-1 == top-2 exactly, so the
        # separation test must have routed those points through the verify
        # path (elsewhere an untied winner may legitimately be certified).
        tied_wins = int(np.count_nonzero(want == 0))
        assert tied_wins > 0
        assert screen.stats.verified >= tied_wins

    def test_overflow_close_and_float32_coincident_columns(self):
        """Station-adjacent pathologies route exact, answers identical.

        Three families: exact station locations (float64 coincidence),
        points ~1e-200 from the origin station (float64-distinct but the
        power law overflows both precisions), and offsets ~1e-9 from the
        far stations (finite in float64 yet rounding *onto* the station in
        float32 — the screen sees a zero distance where the exact path sees
        none).
        """
        from repro import WirelessNetwork

        network = WirelessNetwork.uniform(
            [(0.0, 0.0), (4.0, 0.0), (1.0, 5.0)], noise=0.01, beta=2.0
        )
        coords = network.coords
        points = np.vstack(
            [
                coords,
                [[1e-200, 0.0], [1e-160, 0.0], [0.0, 1e-170]],
                coords[1:] + np.array([1e-9, -1e-9]),
                query_box_array(network, 60, seed=66),
            ]
        )
        screen = Float32ScreenBackend()
        screen.stats.reset()
        assert_decisions_identical(network, points, screen)
        assert screen.stats.verified >= 3 * len(coords)

    def test_screen_actually_screens_generic_points(self):
        """On generic workloads the verify fraction stays small (< 20%)."""
        network = seeded_network(30, side=30.0, seed=67)
        points = query_box_array(network, 4000, seed=68)
        screen = Float32ScreenBackend()
        screen.stats.reset()
        assert_decisions_identical(network, points, screen)
        assert 0.0 <= screen.stats.verify_fraction() < 0.2

    def test_low_beta_regime_with_ties(self):
        """beta < 1: several stations heard at once, highest-SINR tie-break."""
        network = network_6(seed=69, beta=0.2)
        points = np.vstack(
            [query_box_array(network, 400, seed=70), network.coords]
        )
        assert_decisions_identical(network, points, "float32-screen")

    def test_unscreenable_parameters_fall_back_to_exact(self):
        """Absurd beta values bypass the reception screens entirely.

        (``strongest_station`` is beta-independent and may still screen;
        the reception families must delegate without screening.)
        """
        network = network_6(seed=71).with_beta(1e-31)
        points = query_box_array(network, 100, seed=72)
        indices = np.zeros(len(points), dtype=np.intp)
        screen = Float32ScreenBackend()
        screen.stats.reset()
        np.testing.assert_array_equal(
            heard_station_batch(network, points, backend=screen),
            heard_station_batch(network, points, backend="numpy"),
        )
        np.testing.assert_array_equal(
            received_mask(network, 0, points, backend=screen),
            received_mask(network, 0, points, backend="numpy"),
        )
        np.testing.assert_array_equal(
            received_at(network, indices, points, backend=screen),
            received_at(network, indices, points, backend="numpy"),
        )
        assert screen.stats.screened == 0  # delegated, not screened

    def test_value_queries_delegate_to_inner_exactly(self):
        network = network_6(seed=73)
        points = query_box_array(network, 80, seed=74)
        np.testing.assert_array_equal(
            sinr_batch(network, points, backend="float32-screen"),
            sinr_batch(network, points, backend="numpy"),
        )

    def test_rejects_nonpositive_margins(self):
        with pytest.raises(ReproError, match="decision_margin"):
            Float32ScreenBackend(decision_margin=0.0)
        with pytest.raises(ReproError, match="geometry_margin"):
            Float32ScreenBackend(geometry_margin=-1.0)


class _CountingInner(NumpyBackend):
    """A numpy backend that counts how often its kernels are reached."""

    def __init__(self, name):
        self.name = name
        self.calls = 0

    def heard_station(self, *args, **kwargs):
        self.calls += 1
        return super().heard_station(*args, **kwargs)

    def strongest_station(self, *args, **kwargs):
        self.calls += 1
        return super().strongest_station(*args, **kwargs)


class TestLateBoundInner:
    """The PR's bugfix: the inner backend re-resolves by name on every call."""

    def _adversarial_workload(self):
        # Station coordinates are in the batch, so verification is forced.
        network = network_6(seed=80)
        points = np.vstack(
            [network.coords, query_box_array(network, 50, seed=81)]
        )
        return network, points

    def test_register_backend_overwrite_reaches_verify_path(self):
        network, points = self._adversarial_workload()
        first = _CountingInner("first")
        second = _CountingInner("second")
        screen = Float32ScreenBackend(inner="screen-inner-test")
        try:
            register_backend("screen-inner-test", first)
            heard_station_batch(network, points, backend=screen)
            assert first.calls > 0 and second.calls == 0
            register_backend("screen-inner-test", second)
            heard_station_batch(network, points, backend=screen)
            assert second.calls > 0
        finally:
            backend_module.BACKENDS.unregister("screen-inner-test")

    def test_overwriting_the_default_inner_name_applies(self):
        network, points = self._adversarial_workload()
        expected = heard_station_batch(network, points, backend="numpy")
        spy = _CountingInner("numpy")
        screen = Float32ScreenBackend()  # inner="numpy", resolved per call
        try:
            register_backend("numpy", spy)
            got = heard_station_batch(network, points, backend=screen)
            assert spy.calls > 0
            np.testing.assert_array_equal(got, expected)
        finally:
            register_backend("numpy", NumpyBackend())

    def test_inner_none_follows_use_backend_context(self):
        network, points = self._adversarial_workload()
        counting = _CountingInner("counting")
        screen = Float32ScreenBackend(inner=None)
        try:
            register_backend("counting-inner", counting)
            with use_backend("counting-inner"):
                heard_station_batch(network, points, backend=screen)
            assert counting.calls > 0
        finally:
            backend_module.BACKENDS.unregister("counting-inner")

    def test_inner_none_never_verifies_through_itself(self):
        network, points = self._adversarial_workload()
        screen = Float32ScreenBackend(inner=None)
        try:
            register_backend("screen-self-test", screen)
            with use_backend("screen-self-test"):
                got = heard_station_batch(network, points)
        finally:
            backend_module.BACKENDS.unregister("screen-self-test")
        np.testing.assert_array_equal(
            got, heard_station_batch(network, points, backend="numpy")
        )


class TestRoutedEndToEnd:
    """The new names flow through every layer that routes by backend."""

    def test_sharded_locator_under_screen_backend(self):
        network = seeded_network(24, side=28.0, seed=90)
        points = np.vstack(
            [query_box_array(network, 600, seed=91), network.coords]
        )
        expected = locate_batch(build_locator(network, "brute-force"), points)
        with use_backend("float32-screen"):
            sharded = build_locator(network, "sharded:voronoi")
            got = locate_batch(sharded, points)
        np.testing.assert_array_equal(got, expected)

    def test_micro_batched_service_under_screen_backend(self):
        network = seeded_network(12, side=20.0, seed=92)
        points = query_box_array(network, 200, seed=93)
        expected = serve_points(network, points, locator="voronoi")
        with use_backend("float32-screen"):
            got = serve_points(network, points, locator="voronoi")
        np.testing.assert_array_equal(got, expected)

    def test_raster_tiles_under_screen_backend(self):
        from repro.model.diagram import raster_block

        network = network_6(seed=94)
        xs = np.linspace(-2.0, 16.0, 80)
        ys = np.linspace(-2.0, 16.0, 64)
        labels, values = raster_block(network, xs, ys)
        with use_backend("float32-screen"):
            labels_screen, values_screen = raster_block(network, xs, ys)
        # Value planes delegate to the exact inner backend, so the whole
        # raster — labels *and* SINR values — is bit-identical to numpy.
        np.testing.assert_array_equal(labels_screen, labels)
        np.testing.assert_array_equal(values_screen, values)
