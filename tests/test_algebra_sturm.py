"""Tests for Sturm sequences, root counting and root isolation."""

from __future__ import annotations

import pytest

from repro.algebra import (
    Polynomial,
    SturmSequence,
    count_distinct_real_roots_in_interval,
    count_real_roots,
    isolate_real_roots,
    numeric_real_roots,
    refine_root,
)
from repro.exceptions import AlgebraError


class TestSturmSequenceConstruction:
    def test_sequence_of_zero_polynomial_rejected(self):
        with pytest.raises(AlgebraError):
            SturmSequence.of(Polynomial.zero())

    def test_sequence_length_is_at_most_degree_plus_one(self):
        polynomial = Polynomial.from_roots([1.0, 2.0, 3.0, -1.0])
        sequence = SturmSequence.of(polynomial)
        assert len(sequence) <= polynomial.degree() + 1

    def test_constant_polynomial_sequence(self):
        sequence = SturmSequence.of(Polynomial.constant(5.0))
        assert sequence.count_real_roots() == 0


class TestRootCounting:
    def test_distinct_real_roots_of_simple_polynomials(self):
        assert count_real_roots(Polynomial.from_roots([1.0, 2.0, 3.0])) == 3
        assert count_real_roots(Polynomial([1.0, 0.0, 1.0])) == 0  # x^2 + 1
        assert count_real_roots(Polynomial([0.0, 1.0])) == 1  # x

    def test_multiple_roots_counted_once(self):
        # (x - 1)^2 has one *distinct* real root.
        polynomial = Polynomial.from_roots([1.0, 1.0])
        assert count_real_roots(polynomial) == 1

    def test_counting_in_interval(self):
        polynomial = Polynomial.from_roots([-2.0, 0.5, 3.0])
        assert count_distinct_real_roots_in_interval(polynomial, 0.0, 1.0) == 1
        assert count_distinct_real_roots_in_interval(polynomial, -3.0, 4.0) == 3
        assert count_distinct_real_roots_in_interval(polynomial, 1.0, 2.0) == 0

    def test_interval_bounds_validation(self):
        with pytest.raises(AlgebraError):
            count_distinct_real_roots_in_interval(Polynomial([0.0, 1.0]), 2.0, 1.0)

    def test_endpoint_on_root_is_handled(self):
        polynomial = Polynomial.from_roots([0.0, 2.0])
        # Both endpoints are roots; the count must still be finite and sane.
        count = count_distinct_real_roots_in_interval(polynomial, 0.0, 2.0)
        assert count in (1, 2)

    def test_agreement_with_numpy_roots_on_random_polynomials(self):
        import random

        rng = random.Random(12)
        for _ in range(40):
            roots = sorted(rng.uniform(-5.0, 5.0) for _ in range(rng.randint(1, 6)))
            polynomial = Polynomial.from_roots(roots)
            assert count_real_roots(polynomial) == len(set(roots))
            numeric = numeric_real_roots(polynomial)
            assert len(numeric) >= len(set(roots))

    def test_quartic_from_the_convexity_proof(self):
        # A quartic of the form (x^2 + 1)^2 - (gamma z^2 + delta) appearing in
        # Section 3.2 has at most two distinct real roots when gamma, delta
        # correspond to a valid configuration; check a concrete instance.
        base = Polynomial([1.0, 0.0, 1.0]) ** 2  # (x^2+1)^2
        j = Polynomial([0.5, 0.0, 3.0])  # 3x^2 + 0.5
        polynomial = base - j
        assert count_real_roots(polynomial) <= 2


class TestSignChanges:
    def test_sign_changes_bracket_roots(self):
        polynomial = Polynomial.from_roots([-1.0, 1.0])
        sequence = SturmSequence.of(polynomial)
        assert (
            sequence.sign_changes_at(-2.0) - sequence.sign_changes_at(2.0)
        ) == 2

    def test_sign_changes_at_infinity(self):
        polynomial = Polynomial.from_roots([-1.0, 1.0, 3.0])
        sequence = SturmSequence.of(polynomial)
        assert (
            sequence.sign_changes_at_minus_infinity()
            - sequence.sign_changes_at_plus_infinity()
        ) == 3


class TestIsolationAndRefinement:
    def test_isolate_real_roots(self):
        roots = [-2.0, 0.25, 1.5]
        polynomial = Polynomial.from_roots(roots)
        intervals = isolate_real_roots(polynomial, -10.0, 10.0)
        assert len(intervals) == 3
        for (low, high), root in zip(intervals, roots):
            assert low < root <= high + 1e-9

    def test_refine_root_bisection(self):
        polynomial = Polynomial.from_roots([2.0])
        assert refine_root(polynomial, 1.0, 3.0) == pytest.approx(2.0, abs=1e-9)

    def test_refine_root_without_sign_change_returns_midpoint(self):
        polynomial = Polynomial.from_roots([1.0, 1.0])  # double root, no sign change
        assert refine_root(polynomial, 0.0, 2.0) == pytest.approx(1.0)

    def test_refine_root_at_endpoint(self):
        polynomial = Polynomial.from_roots([1.0])
        assert refine_root(polynomial, 1.0, 2.0) == pytest.approx(1.0)
