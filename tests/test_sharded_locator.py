"""Property tests for the sharded point-location subsystem.

The headline invariant: for every partitioner, shard count and inner
locator, ``ShardedLocator.locate_batch`` is bit-identical to
``BruteForceLocator.locate_batch`` — including query points exactly on shard
boundaries, configurations with empty shards, and the single-shard
degenerate config.  Shards narrow the candidate search; interference is
always summed over the full station set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Point
from repro.exceptions import NetworkConfigurationError, PointLocationError
from repro.pointlocation import (
    BruteForceLocator,
    KDMedianPartitioner,
    ShardedLocator,
    UniformTilePartitioner,
    get_partitioner,
)
from repro.workloads import (
    clustered_outliers_network,
    sharding_networks,
    uniform_random_network,
)

from seeded_workloads import query_box_array


class TestPartitioners:
    def test_kd_partition_is_balanced_and_complete(self):
        network = uniform_random_network(23, side=30.0, minimum_separation=1.0, seed=2)
        for shards in (1, 2, 3, 5, 8):
            groups = KDMedianPartitioner(shards).partition(network.coords)
            assert len(groups) == shards
            sizes = [len(group) for group in groups]
            assert max(sizes) - min(sizes) <= 1
            merged = np.sort(np.concatenate(groups))
            np.testing.assert_array_equal(merged, np.arange(23))
            assert all(group.dtype == np.int64 for group in groups)

    def test_uniform_tiles_cover_all_stations(self):
        network = clustered_outliers_network(
            3, 6, outlier_count=3, side=30.0, seed=4, minimum_separation=0.3
        )
        groups = UniformTilePartitioner(3, 3).partition(network.coords)
        assert len(groups) == 9
        merged = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(merged, np.arange(len(network)))
        # A clustered layout leaves some tiles empty; they must be preserved
        # as empty groups, not dropped or mis-assigned.
        assert any(len(group) == 0 for group in groups)

    def test_kd_with_more_shards_than_stations_pads_empty_groups(self):
        network = uniform_random_network(3, side=10.0, minimum_separation=1.0, seed=6)
        groups = KDMedianPartitioner(5).partition(network.coords)
        assert len(groups) == 5
        assert sum(len(group) for group in groups) == 3
        assert any(len(group) == 0 for group in groups)

    def test_resolver(self):
        assert isinstance(get_partitioner("kd", 4), KDMedianPartitioner)
        assert isinstance(get_partitioner("uniform", 4), UniformTilePartitioner)
        custom = KDMedianPartitioner(2)
        assert get_partitioner(custom, 99) is custom
        with pytest.raises(PointLocationError):
            get_partitioner("bogus", 4)
        with pytest.raises(PointLocationError):
            KDMedianPartitioner(0)
        with pytest.raises(PointLocationError):
            UniformTilePartitioner(0)


class TestShardedExactness:
    @pytest.mark.parametrize("partitioner", ["kd", "uniform"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 6, 8])
    def test_identical_to_brute_force_on_random_networks(self, partitioner, shards):
        network = uniform_random_network(
            18, side=18.0, minimum_separation=1.5, noise=0.002, beta=3.0,
            seed=40 + shards,
        )
        truth = BruteForceLocator(network).locate_batch
        locator = ShardedLocator(
            network, inner="voronoi", shards=shards, partitioner=partitioner
        )
        pts = query_box_array(network, 1200, seed=shards)
        np.testing.assert_array_equal(locator.locate_batch(pts), truth(pts))

    @pytest.mark.parametrize("partitioner", ["kd", "uniform"])
    def test_skewed_scenarios_with_empty_tiles(self, partitioner):
        for name, network in sharding_networks():
            locator = ShardedLocator(
                network, inner="voronoi", shards=6, partitioner=partitioner
            )
            pts = query_box_array(network, 800, seed=13)
            truth = BruteForceLocator(network).locate_batch(pts)
            np.testing.assert_array_equal(
                locator.locate_batch(pts), truth, err_msg=f"scenario {name}"
            )

    def test_points_exactly_on_shard_boundaries(self):
        network = uniform_random_network(
            16, side=16.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=8
        )
        locator = ShardedLocator(network, inner="voronoi", shards=4, partitioner="kd")
        # Probe along every query-box edge (including its corners): these
        # points sit exactly on the routing boundaries, where an open/closed
        # mix-up would drop or double-route them.
        edge_points = []
        for shard in locator.shards:
            xmin, ymin, xmax, ymax = shard.query_box
            for t in np.linspace(0.0, 1.0, 9):
                edge_points.extend([
                    (xmin + t * (xmax - xmin), ymin),
                    (xmin + t * (xmax - xmin), ymax),
                    (xmin, ymin + t * (ymax - ymin)),
                    (xmax, ymin + t * (ymax - ymin)),
                ])
        # Station locations and kd split lines are boundary-flavoured too.
        edge_points.extend(map(tuple, network.coords.tolist()))
        pts = np.array(edge_points, dtype=float)
        truth = BruteForceLocator(network).locate_batch(pts)
        np.testing.assert_array_equal(locator.locate_batch(pts), truth)

    def test_single_shard_degenerate_config(self):
        network = uniform_random_network(
            9, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=5
        )
        locator = ShardedLocator(network, inner="voronoi", shards=1)
        assert len(locator.shards) == 1
        assert locator.shard_sizes() == [9]
        pts = query_box_array(network, 600, seed=3)
        truth = BruteForceLocator(network).locate_batch(pts)
        np.testing.assert_array_equal(locator.locate_batch(pts), truth)

    def test_more_shards_than_stations(self):
        network = uniform_random_network(
            4, side=10.0, minimum_separation=2.0, noise=0.002, beta=3.0, seed=7
        )
        locator = ShardedLocator(network, inner="voronoi", shards=8)
        # Singleton shards have no inner locator; their station is proposed
        # directly and settled by the full-network verification.
        assert all(size >= 1 for size in locator.shard_sizes())
        pts = query_box_array(network, 500, seed=11)
        truth = BruteForceLocator(network).locate_batch(pts)
        np.testing.assert_array_equal(locator.locate_batch(pts), truth)

    def test_coincident_stations_route_to_first_index(self):
        from repro import WirelessNetwork

        network = WirelessNetwork.uniform(
            [(0.0, 0.0), (0.0, 0.0), (6.0, 0.0), (6.0, 5.0)], beta=2.0
        )
        locator = ShardedLocator(network, inner="voronoi", shards=2)
        pts = np.array([[0.0, 0.0], [6.0, 0.0], [3.0, 2.0]])
        truth = BruteForceLocator(network).locate_batch(pts)
        np.testing.assert_array_equal(locator.locate_batch(pts), truth)
        assert locator.locate_batch(pts)[0] == 0  # first co-located station

    def test_scalar_locate_matches_batch(self):
        network = uniform_random_network(
            12, side=14.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=9
        )
        locator = ShardedLocator(network, shards=3)
        pts = query_box_array(network, 50, seed=17)
        labels = locator.locate_batch(pts)
        for (x, y), label in zip(pts, labels):
            assert locator.locate(Point(x, y)) == label


class TestShardedPreconditions:
    def test_requires_the_paper_regime(self):
        from repro import WirelessNetwork

        low_beta = uniform_random_network(6, side=10.0, seed=1, beta=1.0)
        with pytest.raises(PointLocationError):
            ShardedLocator(low_beta)
        alpha_four = WirelessNetwork.uniform([(0, 0), (4, 0)], beta=2.0, alpha=4.0)
        with pytest.raises(PointLocationError):
            ShardedLocator(alpha_four)
        with pytest.raises(PointLocationError):
            ShardedLocator(
                uniform_random_network(6, side=10.0, seed=1, beta=3.0), shards=0
            )

    def test_inner_options_forward(self):
        network = uniform_random_network(
            8, side=12.0, minimum_separation=1.8, noise=0.002, beta=3.0, seed=12
        )
        locator = ShardedLocator(
            network,
            inner="theorem3",
            shards=2,
            inner_options={"epsilon": 0.5, "cover_method": "ray_sweep"},
        )
        for shard in locator.shards:
            if shard.locator is not None:
                assert shard.locator.epsilon == 0.5
        assert "sharded" in locator.describe()


class TestSubnetworkView:
    def test_subnetwork_slices_cached_arrays(self):
        network = uniform_random_network(10, side=15.0, minimum_separation=1.0, seed=3)
        base_coords = network.coords  # materialise the parent cache
        sub = network.subnetwork([4, 1, 7])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.coords, base_coords[[4, 1, 7]])
        assert not sub.coords.flags.writeable
        assert sub.noise == network.noise
        assert sub.beta == network.beta
        assert sub.station(0) is network.station(4)

    def test_subnetwork_validation(self):
        network = uniform_random_network(5, side=10.0, minimum_separation=1.0, seed=3)
        with pytest.raises(NetworkConfigurationError):
            network.subnetwork([2])
        with pytest.raises(NetworkConfigurationError):
            network.subnetwork([0, 9])
        with pytest.raises(NetworkConfigurationError):
            network.subnetwork([-1, 2])

    def test_subnetwork_sinr_drops_outside_interference(self):
        network = uniform_random_network(
            8, side=12.0, minimum_separation=1.5, noise=0.01, beta=2.0, seed=6
        )
        sub = network.subnetwork([0, 1, 2])
        probe = Point(
            (network.coords[0, 0] + network.coords[1, 0]) / 2.0,
            (network.coords[0, 1] + network.coords[1, 1]) / 2.0,
        )
        # Fewer interferers, same noise: SINR can only go up.
        assert sub.sinr(0, probe) >= network.sinr(0, probe)
