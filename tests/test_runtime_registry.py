"""Contract of the unified registry framework (:mod:`repro.runtime.registry`).

The invariants under test: one :class:`Registry` implementation backs both
the engine-backend and locator surfaces; ``available()`` (and both public
``available_*`` call sites) is sorted, hence deterministic across runs;
spec strings round-trip every registered name — composed locator
spellings included — through ``to_spec`` / ``from_spec``; selections
nest and restore with ContextVar token semantics; and the kind table
resolves specs without the caller knowing which layer owns them.
"""

from __future__ import annotations

import pytest

from repro.engine import backend as backend_module
from repro.engine.backend import (
    BACKENDS,
    available_backends,
    use_backend,
)
from repro.exceptions import (
    ComponentError,
    PointLocationError,
    ReproError,
)
from repro.pointlocation import registry as locator_module
from repro.pointlocation.registry import (
    LOCATORS,
    available_locators,
    get_locator,
)
from repro.runtime import Registry, Selection, registry_for_kind, use_spec
from repro.runtime.registry import SPEC_SEPARATOR


class TestOneImplementation:
    def test_both_surfaces_are_registry_instances(self):
        assert isinstance(BACKENDS, Registry)
        assert isinstance(LOCATORS, Registry)
        assert BACKENDS.kind == "backend"
        assert LOCATORS.kind == "locator"

    def test_kind_table_resolves_both(self):
        assert registry_for_kind("backend") is BACKENDS
        assert registry_for_kind("locator") is LOCATORS

    def test_unknown_kind_lists_known_kinds(self):
        with pytest.raises(ComponentError, match="backend"):
            registry_for_kind("no-such-kind")


class TestSortedAvailability:
    """Both public call sites return sorted names — deterministic output."""

    def test_available_backends_is_sorted(self):
        names = list(available_backends())
        assert names == sorted(names) and "numpy" in names

    def test_available_locators_is_sorted(self):
        names = list(available_locators())
        assert names == sorted(names) and "voronoi" in names

    def test_registry_available_is_sorted_after_unsorted_insertion(self):
        scratch = Registry("scratch-sorted")
        for name in ("zeta", "alpha", "mid"):
            scratch.register(name, object())
        assert scratch.available() == ["alpha", "mid", "zeta"]
        assert list(scratch.snapshot()) == ["alpha", "mid", "zeta"]


class TestSpecRoundTrip:
    def test_every_backend_round_trips(self):
        for name in available_backends():
            spec = BACKENDS.to_spec(name)
            assert spec == f"backend{SPEC_SEPARATOR}{name}"
            assert Registry.from_spec(spec) is BACKENDS.get(name)

    def test_every_locator_round_trips(self):
        for name in available_locators():
            spec = LOCATORS.to_spec(name)
            assert Registry.from_spec(spec) is LOCATORS.get(name)

    def test_composed_locator_spec_round_trips(self):
        spec = LOCATORS.to_spec("sharded:voronoi")
        assert spec == "locator/sharded:voronoi"
        factory = Registry.from_spec(spec)
        # Composed factories are derived per resolution (never registered),
        # so identity cannot hold; the resolved type must match instead.
        assert type(factory) is type(get_locator("sharded:voronoi"))

    def test_to_spec_renders_the_active_selection(self):
        with BACKENDS.use("reference"):
            assert BACKENDS.to_spec() == "backend/reference"

    def test_to_spec_validates_the_name(self):
        with pytest.raises(ReproError, match="available"):
            BACKENDS.to_spec("no-such-backend")

    def test_to_spec_rejects_object_selections(self):
        with pytest.raises(ReproError, match="by name"):
            BACKENDS.to_spec(object())

    def test_malformed_specs_are_component_errors(self):
        for spec in ("numpy", "backend/", "/numpy", ""):
            with pytest.raises(ComponentError, match="malformed"):
                Registry.resolve_spec(spec)

    def test_use_spec_selects_in_context(self):
        reference = BACKENDS.get("reference")
        before = BACKENDS.active()
        with use_spec("backend/reference") as selected:
            assert selected is reference
            assert BACKENDS.active() is reference
        assert BACKENDS.active() is before

    def test_use_spec_unknown_name_raises_the_layer_error(self):
        with pytest.raises(PointLocationError, match="available"):
            use_spec("locator/no-such-locator")


class TestSelectionSemantics:
    def test_nested_selections_unwind_in_order(self):
        default = BACKENDS.active()
        with use_backend("reference"):
            assert type(BACKENDS.active()).__name__ == "ReferenceBackend"
            with use_backend("numpy"):
                assert type(BACKENDS.active()).__name__ == "NumpyBackend"
            assert type(BACKENDS.active()).__name__ == "ReferenceBackend"
        assert BACKENDS.active() is default

    def test_selection_value_tracks_reregistration(self):
        scratch = Registry("scratch-reregister", default="thing")
        first, second = object(), object()
        scratch.register("thing", first)
        selection = scratch.use("thing")
        assert selection.value is first
        scratch.register("thing", second)
        assert selection.value is second  # names re-resolve on access
        assert scratch.active() is second
        assert isinstance(selection, Selection)

    def test_unregister_then_resolve_fails_with_available_list(self):
        scratch = Registry("scratch-unregister")
        scratch.register("gone", object())
        assert scratch.unregister("gone")
        assert not scratch.unregister("gone")
        with pytest.raises(ReproError, match="available"):
            scratch.get("gone")

    def test_contains_and_default_error(self):
        scratch = Registry("scratch-contains")
        scratch.register("present", object())
        assert "present" in scratch and "absent" not in scratch
        with pytest.raises(ReproError, match="no default"):
            scratch.active()


class TestKindValidation:
    def test_kind_must_not_contain_the_spec_separator(self):
        with pytest.raises(ComponentError, match="non-empty"):
            Registry("bad/kind")
        with pytest.raises(ComponentError, match="non-empty"):
            Registry("")

    def test_module_aliases_point_at_the_instances(self):
        assert backend_module.BACKENDS is BACKENDS
        assert locator_module.LOCATORS is LOCATORS
