"""The unified Locator protocol: registry behaviour and the shared contract.

Every registered locator (and the sharded compositions) must satisfy one
contract: ``locate_batch`` returns an ``int64`` array with ``-1`` as the
no-reception sentinel, agreeing pointwise with the scalar ``locate``; on the
paper's ``beta > 1`` regime all of them agree with brute force exactly.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Point
from repro.exceptions import PointLocationError
from repro.pointlocation import (
    BruteForceLocator,
    Locator,
    active_locator,
    available_locators,
    get_locator,
    register_locator,
    use_locator,
)
from repro.workloads import random_query_array

from seeded_workloads import seeded_network

#: Build options that keep the sweep fast; every name resolves via the
#: registry exactly as harness code would.
CONTRACT_SWEEP = [
    ("brute-force", {}),
    ("voronoi", {}),
    ("theorem3", {"epsilon": 0.5}),
    ("sharded:voronoi", {"shards": 3}),
    ("sharded:brute-force", {"shards": 2, "partitioner": "uniform"}),
    (
        "sharded:theorem3",
        {"shards": 2, "inner_options": {"epsilon": 0.5, "cover_method": "ray_sweep"}},
    ),
]


@pytest.fixture(scope="module")
def network(ten_station_network):
    # The suite-standard 10-station network (tests/conftest.py).
    return ten_station_network


@pytest.fixture(scope="module")
def queries(network, query_box):
    return query_box(network, 800, seed=21, margin=3.0)


@pytest.fixture(scope="module")
def truth(network, queries):
    return BruteForceLocator(network).locate_batch(queries)


class TestRegistry:
    def test_base_locators_are_registered(self):
        names = available_locators()
        for expected in ("brute-force", "voronoi", "theorem3", "sharded"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(PointLocationError):
            get_locator("nope")
        with pytest.raises(PointLocationError):
            get_locator("sharded:nope")  # inner names are validated eagerly

    def test_composed_names_cannot_be_registered(self):
        with pytest.raises(PointLocationError):
            register_locator("bad:name", BruteForceLocator)

    def test_registering_and_overwriting(self, network):
        class Custom(BruteForceLocator):
            name = "custom"

        try:
            register_locator("custom", Custom)
            assert get_locator("custom") is Custom
            built = get_locator("custom").build(network)
            assert isinstance(built, Locator)
            # Overwriting is allowed and visible immediately, also through
            # an active by-name selection.
            with use_locator("custom"):
                register_locator("custom", BruteForceLocator)
                assert active_locator() is BruteForceLocator
        finally:
            from repro.pointlocation import registry

            registry.LOCATORS.unregister("custom")

    def test_use_locator_scoping_and_default(self):
        assert active_locator() is get_locator("voronoi")
        with use_locator("brute-force") as factory:
            assert factory is get_locator("brute-force")
            assert active_locator() is get_locator("brute-force")
        assert active_locator() is get_locator("voronoi")

    def test_use_locator_is_thread_isolated(self):
        seen = {}

        def worker():
            seen["worker"] = active_locator()

        with use_locator("theorem3"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert active_locator() is get_locator("theorem3")
        assert seen["worker"] is get_locator("voronoi")

    def test_factory_objects_pass_through(self):
        assert get_locator(BruteForceLocator) is BruteForceLocator


class TestLocatorContract:
    """The satellite contract: int64 dtype, -1 sentinel, scalar agreement."""

    @pytest.mark.parametrize("name,options", CONTRACT_SWEEP)
    def test_uniform_int64_contract(self, network, queries, truth, name, options):
        locator = get_locator(name).build(network, **options)
        labels = locator.locate_batch(queries)
        assert isinstance(labels, np.ndarray)
        assert labels.dtype == np.int64
        assert labels.shape == (len(queries),)
        # The sentinel is -1 and station labels are in range.
        assert labels.min() >= -1
        assert labels.max() < len(network)
        assert (labels == -1).any()  # the query box extends past every zone
        # Exactness on the beta > 1 regime: identical to brute force.
        np.testing.assert_array_equal(labels, truth)

    @pytest.mark.parametrize("name,options", CONTRACT_SWEEP)
    def test_scalar_locate_agrees_with_batch(self, network, queries, name, options):
        locator = get_locator(name).build(network, **options)
        sample = queries[:60]
        labels = locator.locate_batch(sample)
        for (x, y), label in zip(sample, labels):
            scalar = locator.locate(Point(x, y))
            assert isinstance(scalar, (int, np.integer))
            assert scalar == label

    @pytest.mark.parametrize("name,options", CONTRACT_SWEEP)
    def test_empty_and_single_batches(self, network, name, options):
        locator = get_locator(name).build(network, **options)
        empty = locator.locate_batch([])
        assert empty.dtype == np.int64
        assert empty.shape == (0,)
        single = locator.locate_batch(Point(0.5, 0.5))
        assert single.shape == (1,)

    @pytest.mark.parametrize("name,options", CONTRACT_SWEEP)
    def test_protocol_conformance(self, network, name, options):
        locator = get_locator(name).build(network, **options)
        assert isinstance(locator, Locator)
        assert locator.network is network or locator.network == network
        assert isinstance(locator.name, str)

    def test_ray_sweep_structure_is_exact_at_large_coordinate_scale(self):
        """Regression: boundary-probe tolerances must not degrade with the
        absolute coordinate scale (the bisection tolerance is relative)."""
        from repro.geometry.transform import SimilarityTransform

        base = seeded_network(8, side=12.0, seed=6, noise=0.01)
        scaled = base.transformed(SimilarityTransform.scaling(1000.0))
        queries = random_query_array(
            600, Point(-2000.0, -2000.0), Point(14000.0, 14000.0), seed=2
        )
        truth = get_locator("brute-force").build(scaled).locate_batch(queries)
        structure = get_locator("theorem3").build(
            scaled, epsilon=0.5, cover_method="ray_sweep"
        )
        np.testing.assert_array_equal(structure.locate_batch(queries), truth)
