"""Tests for contour tracing, exports and the paper-figure scenarios."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Point, SINRDiagram, WirelessNetwork
from repro.diagrams import (
    FigurePanel,
    figure1_panels,
    figure2_scenario,
    figure3_4_steps,
    figure5_network,
    figure6_network,
    figure7_network,
    marching_squares,
    PAPER_FIGURES,
    to_ascii,
    to_csv,
    to_pgm,
    trace_zone_boundary,
    write_csv,
    write_pgm,
)
from repro.exceptions import DiagramError


class TestContourTracing:
    def test_trace_zone_boundary_points_are_on_the_boundary(self, noisy_diagram):
        zone = noisy_diagram.zone(0)
        points = trace_zone_boundary(zone, vertices=60)
        assert len(points) == 61  # closed
        assert points[0] == points[-1]
        polynomial = zone.polynomial
        for point in points[:-1]:
            assert abs(polynomial.evaluate_at_point(point)) <= 1e-3 * max(
                abs(polynomial(point.x + 1.0, point.y)), 1.0
            )

    def test_trace_rejects_degenerate_zone(self):
        network = WirelessNetwork.uniform([(0, 0), (0, 0), (4, 0)], beta=2.0)
        with pytest.raises(DiagramError):
            trace_zone_boundary(SINRDiagram(network).zone(0))

    def test_marching_squares_circle(self):
        xs = np.linspace(-2, 2, 81)
        ys = np.linspace(-2, 2, 81)
        grid_x, grid_y = np.meshgrid(xs, ys)
        values = grid_x ** 2 + grid_y ** 2 - 1.0  # unit circle
        contours = marching_squares(values, xs, ys, level=0.0)
        assert contours
        # All contour points lie near the unit circle.
        for polyline in contours:
            for point in polyline:
                assert math.hypot(point.x, point.y) == pytest.approx(1.0, abs=0.06)
        # Total length approximates the circumference.
        total = sum(
            polyline[i].distance_to(polyline[i + 1])
            for polyline in contours
            for i in range(len(polyline) - 1)
        )
        assert total == pytest.approx(2 * math.pi, rel=0.05)

    def test_marching_squares_validation(self):
        xs = np.linspace(0, 1, 4)
        with pytest.raises(DiagramError):
            marching_squares(np.zeros((3, 3)), xs, xs)
        with pytest.raises(DiagramError):
            marching_squares(np.zeros(5), xs, xs)


class TestExports:
    def make_raster(self):
        network = WirelessNetwork.uniform([(0, 0), (5, 0)], noise=0.0, beta=2.0)
        return SINRDiagram(network).rasterize(Point(-12, -9), Point(9, 9), resolution=60), network

    def test_ascii_rendering(self):
        raster, network = self.make_raster()
        art = to_ascii(raster, station_locations=network.locations(), max_width=60)
        assert "0" in art and "1" in art and "." in art and "*" in art
        assert len(art.splitlines()) > 10

    def test_pgm_format(self):
        raster, _ = self.make_raster()
        pgm = to_pgm(raster)
        lines = pgm.splitlines()
        assert lines[0] == "P2"
        columns, rows = (int(v) for v in lines[1].split())
        assert (rows, columns) == raster.labels.shape
        assert lines[2] == "255"

    def test_csv_round_trip_dimensions(self):
        raster, _ = self.make_raster()
        csv_text = to_csv(raster)
        lines = csv_text.strip().splitlines()
        assert len(lines) == raster.labels.shape[0] + 1
        assert len(lines[1].split(",")) == raster.labels.shape[1] + 1

    def test_file_writers(self, tmp_path):
        raster, _ = self.make_raster()
        pgm_path = write_pgm(raster, tmp_path / "diagram.pgm")
        csv_path = write_csv(raster, tmp_path / "diagram.csv")
        assert pgm_path.read_text().startswith("P2")
        assert csv_path.read_text().count("\n") > 10


class TestPaperFigures:
    def test_figure1_panels_match_expectations(self):
        panels = figure1_panels()
        assert [panel.name for panel in panels] == ["1A", "1B", "1C"]
        for panel in panels:
            assert panel.matches_expectations()
        assert panels[0].sinr_outcome() == 1
        assert panels[1].sinr_outcome() is None
        assert panels[2].sinr_outcome() == 0

    def test_figure2_false_positive(self):
        panel = figure2_scenario()
        assert panel.matches_expectations()
        assert panel.udg_outcome() == 0
        assert panel.sinr_outcome() is None

    def test_figure3_4_progression(self):
        panels = figure3_4_steps()
        assert len(panels) == 4
        outcomes = [(panel.udg_outcome(), panel.sinr_outcome()) for panel in panels]
        assert outcomes[0] == (0, 0)  # both hear s1
        assert outcomes[1] == (None, 0)  # UDG collision, SINR still hears s1
        assert outcomes[2] == (None, 2)  # SINR switches to s3
        assert outcomes[3][0] is None  # UDG still hears nothing
        for panel in panels:
            assert panel.matches_expectations()

    def test_figure5_network_regime(self):
        network = figure5_network()
        assert network.beta == 0.3 and network.noise == 0.05
        assert len(network) == 3

    def test_figure6_and_7_networks_are_in_the_theorem_regime(self):
        for network in (figure6_network(), figure7_network()):
            assert network.is_uniform_power()
            assert network.beta > 1.0

    def test_registry_contains_all_figures(self):
        assert set(PAPER_FIGURES) == {
            "figure1",
            "figure2",
            "figure3_4",
            "figure5",
            "figure6",
            "figure7",
        }

    def test_panel_without_receiver_matches_trivially(self):
        panel = FigurePanel(name="x", network=figure7_network())
        assert panel.matches_expectations()
        assert panel.sinr_outcome() is None and panel.udg_outcome() is None
