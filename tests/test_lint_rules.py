"""Per-rule fixture tests for reprolint.

Every shipped rule gets at least one violating fixture (proving it fires)
and one conforming fixture (proving it stays quiet on the idiom the project
actually uses).  Scoped rules additionally get an out-of-scope fixture.
Below the rule fixtures: suppression comments, baseline round-trips, and
the CLI contract (exit codes, JSON shape).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from io import StringIO
from pathlib import Path

import pytest

from repro.exceptions import LintError
from repro.lint import (
    ALL_RULE_CLASSES,
    BaselineEntry,
    check_source,
    load_baseline,
    run_lint,
)
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.lint.core import PARSE_ERROR_RULE

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_hit(source: str, path: str = "somewhere/x.py") -> set:
    """The set of rule ids that fire on a dedented fixture."""
    return {f.rule for f in check_source(textwrap.dedent(source), path)}


def findings_for(rule_id: str, source: str, path: str = "somewhere/x.py"):
    return [
        f
        for f in check_source(textwrap.dedent(source), path)
        if f.rule == rule_id
    ]


class TestRuleRegistry:
    def test_rule_ids_unique_and_well_formed(self):
        ids = [cls.rule_id for cls in ALL_RULE_CLASSES]
        assert len(ids) == len(set(ids))
        for rule_id in ids:
            assert rule_id.startswith("RL") and rule_id[2:].isdigit()

    def test_every_rule_states_its_contract(self):
        for cls in ALL_RULE_CLASSES:
            assert cls.title, f"{cls.rule_id} has no title"
            assert len(cls.contract.split()) >= 10, (
                f"{cls.rule_id} contract must state the invariant, not a stub"
            )


class TestRL001ExceptionTaxonomy:
    def test_flags_non_taxonomy_raise(self):
        assert findings_for(
            "RL001",
            """
            def f():
                raise RuntimeError("boom")
            """,
        )

    def test_flags_valueerror(self):
        assert findings_for("RL001", "raise ValueError('bad')\n")

    def test_allows_taxonomy_and_documented_split(self):
        clean = """
            from repro.exceptions import EngineError, ReproError

            def f(flag):
                if flag:
                    raise EngineError("bad input")
                raise TypeError("wrong type")

            def g():
                raise NotImplementedError
        """
        assert not findings_for("RL001", clean)

    def test_allows_reraise_and_bound_objects(self):
        clean = """
            def f(error):
                try:
                    g()
                except Exception as caught:
                    raise
                raise error
        """
        assert not findings_for("RL001", clean)


class TestRL002LockDiscipline:
    VIOLATING = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def reset(self):
                self._count = 0
    """

    def test_flags_unlocked_write_of_locked_attribute(self):
        findings = findings_for("RL002", self.VIOLATING)
        assert len(findings) == 1
        assert "_count" in findings[0].message

    def test_init_writes_are_exempt(self):
        # __init__ also writes _count without the lock; only reset() fires,
        # so exactly one finding, anchored at the last line of the fixture.
        (finding,) = findings_for("RL002", self.VIOLATING)
        lines = textwrap.dedent(self.VIOLATING).splitlines()
        assert lines[finding.line - 1].strip() == "self._count = 0"
        assert finding.line > 10  # the reset() write, not the __init__ one

    def test_locked_helper_suffix_is_exempt(self):
        clean = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._insert_locked()

                def _insert_locked(self):
                    self._count += 1
        """
        assert not findings_for("RL002", clean)

    def test_attributes_never_locked_are_free(self):
        clean = """
            class Plain:
                def set(self, value):
                    self.value = value

                def clear(self):
                    self.value = None
        """
        assert not findings_for("RL002", clean)


class TestRL003AsyncPurity:
    def test_flags_time_sleep_in_async_def(self):
        assert findings_for(
            "RL003",
            """
            import time

            async def handler():
                time.sleep(1)
            """,
            path="service/x.py",
        )

    def test_flags_future_result_and_open(self):
        findings = findings_for(
            "RL003",
            """
            async def handler(future):
                data = open("f").read()
                return future.result()
            """,
            path="workloads/x.py",
        )
        assert len(findings) == 2

    def test_flags_subprocess(self):
        assert findings_for(
            "RL003",
            """
            import subprocess

            async def handler():
                subprocess.run(["ls"])
            """,
            path="service/x.py",
        )

    def test_sync_helpers_inside_async_are_exempt(self):
        clean = """
            import asyncio

            async def handler(loop, future):
                def drain():
                    return future.result()
                await asyncio.sleep(0)
                return await loop.run_in_executor(None, drain)
        """
        assert not findings_for("RL003", clean, path="service/x.py")

    def test_out_of_scope_files_are_not_checked(self):
        violating = """
            import time

            async def helper():
                time.sleep(1)
        """
        assert not findings_for("RL003", violating, path="model/x.py")

    def test_obs_tier_is_in_scope(self):
        # The metrics hub's periodic task shares the event loop with the
        # batcher; a blocking call in obs/ stalls both.
        violating = """
            import time

            async def ticker():
                time.sleep(1)
        """
        assert findings_for("RL003", violating, path="obs/hub.py")


class TestRL004SelectionDiscipline:
    def test_flags_plain_global_selection_state(self):
        findings = findings_for(
            "RL004",
            """
            _active_backend = None

            def set_backend(backend):
                global _active_backend
                _active_backend = backend
            """,
        )
        # Both the module-level assignment and the `global` rebinding fire.
        assert len(findings) == 2

    def test_contextvar_selection_is_the_idiom(self):
        clean = """
            from contextvars import ContextVar

            _selection = ContextVar("repro.backend", default="numpy")

            def use_backend(name):
                return _selection.set(name)
        """
        assert not findings_for("RL004", clean)

    def test_unrelated_globals_pass(self):
        clean = """
            _cache_limit = 64

            def grow():
                global _cache_limit
                _cache_limit *= 2
        """
        assert not findings_for("RL004", clean)


class TestRL005ChunkingDiscipline:
    def test_flags_direct_kernel_call_outside_engine(self):
        assert findings_for(
            "RL005",
            """
            from repro.engine import kernels

            def render(coords, powers, pts, noise, alpha):
                return kernels.sinr_matrix(coords, powers, pts, noise, alpha)
            """,
            path="model/x.py",
        )

    def test_flags_from_import_of_entry_kernel(self):
        assert findings_for(
            "RL005",
            "from repro.engine.kernels import heard_station\n",
            path="raster/x.py",
        )

    def test_helper_kernels_stay_callable(self):
        clean = """
            from repro.engine import kernels

            def distances(coords, pts):
                return kernels.pairwise_squared_distances(coords, pts)
        """
        assert not findings_for("RL005", clean, path="model/x.py")

    def test_engine_internals_are_in_scope_for_kernels(self):
        violating = """
            from repro.engine import kernels

            def run(coords, powers, pts, noise, alpha):
                return kernels.sinr_matrix(coords, powers, pts, noise, alpha)
        """
        assert not findings_for("RL005", violating, path="engine/x.py")


class TestRL006SeededRng:
    def test_flags_global_rng_attribute_calls(self):
        assert findings_for(
            "RL006",
            """
            import numpy as np

            def jitter(n):
                return np.random.rand(n)
            """,
        )

    def test_flags_global_rng_from_import(self):
        assert findings_for("RL006", "from numpy.random import shuffle\n")

    def test_generator_idiom_passes(self):
        clean = """
            import numpy as np

            def jitter(n, rng=None):
                rng = np.random.default_rng(0) if rng is None else rng
                return rng.random(n)
        """
        assert not findings_for("RL006", clean)


class TestRL007MutableDefaults:
    def test_flags_literal_and_constructor_defaults(self):
        findings = findings_for(
            "RL007",
            """
            def f(items=[]):
                return items

            def g(*, table=dict()):
                return table
            """,
        )
        assert len(findings) == 2

    def test_none_and_tuple_defaults_pass(self):
        clean = """
            def f(items=None, pair=(), name="x"):
                return items or list(pair)
        """
        assert not findings_for("RL007", clean)


class TestRL008Float32Containment:
    def test_flags_float32_outside_precision_tier(self):
        assert findings_for(
            "RL008",
            """
            import numpy as np

            def shrink(a):
                return a.astype(np.float32)
            """,
            path="model/x.py",
        )

    def test_flags_cached_view_access_outside_tier(self):
        assert findings_for(
            "RL008",
            "def f(network):\n    return network.coords32\n",
            path="service/x.py",
        )

    def test_precision_tier_files_are_exempt(self):
        violating = "def f(a, np):\n    return a.astype(np.float32)\n"
        assert not findings_for(
            "RL008", violating, path="engine/mixed_precision.py"
        )

    def test_names_mentioning_the_tier_pass(self):
        clean = """
            from repro.engine.mixed_precision import Float32ScreenBackend

            def make():
                return Float32ScreenBackend("numpy")
        """
        assert not findings_for("RL008", clean, path="model/x.py")


class TestRL009EnvRegistry:
    def test_flags_os_environ_and_getenv(self):
        findings = findings_for(
            "RL009",
            """
            import os

            def knobs():
                first = os.environ.get("X")
                return first, os.getenv("Y")
            """,
        )
        assert len(findings) == 2

    def test_flags_from_import(self):
        assert findings_for("RL009", "from os import environ\n")

    def test_env_module_is_the_one_allowed_reader(self):
        violating = "import os\nVALUE = os.environ.get('X')\n"
        assert not findings_for("RL009", violating, path="env.py")

    def test_other_os_use_passes(self):
        clean = "import os\nWORKERS = os.cpu_count()\n"
        assert not findings_for("RL009", clean)


class TestRL010UnifiedRuntime:
    def test_flags_contextvar_construction(self):
        findings = findings_for(
            "RL010",
            """
            from contextvars import ContextVar

            _active = ContextVar("active", default=None)
            """,
        )
        assert len(findings) == 1
        assert "Registry" in findings[0].message

    def test_flags_module_qualified_contextvar(self):
        assert findings_for(
            "RL010",
            """
            import contextvars

            _sel = contextvars.ContextVar("sel")
            """,
        )

    def test_copy_context_stays_allowed(self):
        clean = """
        import contextvars

        def capture():
            return contextvars.copy_context()
        """
        assert not findings_for("RL010", clean)

    def test_flags_hand_rolled_start_stop_pair(self):
        findings = findings_for(
            "RL010",
            """
            class Widget:
                async def start(self):
                    self._running = True

                async def stop(self):
                    self._running = False
            """,
        )
        assert len(findings) == 1
        assert "Component" in findings[0].message

    def test_single_start_or_stop_passes(self):
        clean = """
        class Stopwatch:
            def stop(self) -> int:
                return 0
        """
        assert not findings_for("RL010", clean)

    def test_runtime_package_is_exempt(self):
        violating = """
        from contextvars import ContextVar

        _sel = ContextVar("sel")

        class Component:
            async def start(self): ...
            async def stop(self): ...
        """
        assert not findings_for("RL010", violating, path="runtime/component.py")


class TestParseErrors:
    def test_unparseable_file_is_one_rl000_finding(self):
        findings = check_source("def broken(:\n", "somewhere/x.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert "does not parse" in findings[0].message


class TestSuppression:
    def test_inline_disable_silences_the_named_rule_on_that_line(self):
        source = 'raise RuntimeError("boom")  # reprolint: disable=RL001\n'
        assert not findings_for("RL001", source)

    def test_inline_disable_is_rule_specific(self):
        source = 'raise RuntimeError("boom")  # reprolint: disable=RL007\n'
        assert findings_for("RL001", source)

    def test_inline_disable_is_line_specific(self):
        source = (
            'raise RuntimeError("a")  # reprolint: disable=RL001\n'
            'raise RuntimeError("b")\n'
        )
        findings = findings_for("RL001", source)
        assert [f.line for f in findings] == [2]

    def test_file_wide_disable(self):
        source = (
            "# reprolint: disable-file=RL001\n"
            'raise RuntimeError("a")\n'
            'raise RuntimeError("b")\n'
        )
        assert not findings_for("RL001", source)

    def test_disable_accepts_a_comma_list(self):
        source = (
            "def f(x=[]):  # reprolint: disable=RL007, RL001\n"
            "    raise RuntimeError('boom')\n"
        )
        findings = check_source(source, "somewhere/x.py")
        assert {f.rule for f in findings} == {"RL001"}  # line 2 not suppressed


VIOLATING_MODULE = 'raise RuntimeError("boom")\n'


class TestBaseline:
    def _write_violation(self, tmp_path: Path) -> Path:
        target = tmp_path / "repro" / "scratch.py"
        target.parent.mkdir()
        target.write_text(VIOLATING_MODULE)
        return target

    def test_baseline_entry_absorbs_a_matching_finding(self, tmp_path):
        target = self._write_violation(tmp_path)
        entry = BaselineEntry(
            rule="RL001",
            path="repro/scratch.py",
            line_text='raise RuntimeError("boom")',
            justification="fixture justification for the round-trip test",
        )
        report = run_lint([target], baseline=[entry])
        assert report.clean
        assert len(report.baselined) == 1

    def test_baseline_survives_line_drift_but_not_text_drift(self, tmp_path):
        target = self._write_violation(tmp_path)
        target.write_text("# a new comment pushes the line down\n" + VIOLATING_MODULE)
        entry = BaselineEntry(
            rule="RL001",
            path="repro/scratch.py",
            line_text='raise RuntimeError("boom")',
            justification="fixture justification for the drift test",
        )
        assert run_lint([target], baseline=[entry]).clean
        # Different line text: the entry no longer matches.
        target.write_text('raise RuntimeError("rewritten")\n')
        assert not run_lint([target], baseline=[entry]).clean

    def test_load_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "rule": "RL001",
                        "path": "repro/scratch.py",
                        "line_text": 'raise RuntimeError("boom")',
                        "justification": "written reason for keeping this",
                    }
                ]
            )
        )
        entries = load_baseline(path)
        assert entries == [
            BaselineEntry(
                rule="RL001",
                path="repro/scratch.py",
                line_text='raise RuntimeError("boom")',
                justification="written reason for keeping this",
            )
        ]

    def test_load_baseline_rejects_empty_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "rule": "RL001",
                        "path": "x.py",
                        "line_text": "raise RuntimeError()",
                        "justification": "   ",
                    }
                ]
            )
        )
        with pytest.raises(LintError):
            load_baseline(path)

    def test_load_baseline_rejects_missing_keys_and_bad_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([{"rule": "RL001"}]))
        with pytest.raises(LintError):
            load_baseline(path)
        path.write_text("{not json")
        with pytest.raises(LintError):
            load_baseline(path)


class TestCli:
    def _violating_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "bad.py"
        target.write_text(VIOLATING_MODULE)
        return target

    def _clean_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "good.py"
        target.write_text("from repro.exceptions import ReproError\n")
        return target

    def test_clean_path_exits_zero(self, tmp_path):
        out = StringIO()
        assert main([str(self._clean_file(tmp_path))], out=out) == EXIT_CLEAN
        assert "OK:" in out.getvalue()

    def test_findings_exit_one_with_location_lines(self, tmp_path):
        target = self._violating_file(tmp_path)
        out = StringIO()
        assert main([str(target)], out=out) == EXIT_FINDINGS
        text = out.getvalue()
        assert f"{target.as_posix()}:1: RL001" in text
        assert "FAIL:" in text

    def test_json_output_is_machine_readable(self, tmp_path):
        target = self._violating_file(tmp_path)
        out = StringIO()
        assert main([str(target), "--json"], out=out) == EXIT_FINDINGS
        payload = json.loads(out.getvalue())
        assert payload["clean"] is False
        assert payload["checked_files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL001"
        assert finding["line"] == 1
        assert finding["line_text"] == 'raise RuntimeError("boom")'

    def test_select_restricts_the_rule_set(self, tmp_path):
        target = self._violating_file(tmp_path)
        out = StringIO()
        assert main([str(target), "--select", "RL007"], out=out) == EXIT_CLEAN

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path):
        target = self._clean_file(tmp_path)
        assert main([str(target), "--select", "RL999"], out=StringIO()) == EXIT_USAGE

    def test_missing_path_is_a_usage_error(self, tmp_path):
        missing = tmp_path / "does-not-exist"
        assert main([str(missing)], out=StringIO()) == EXIT_USAGE

    def test_custom_baseline_flag(self, tmp_path):
        target = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                [
                    {
                        "rule": "RL001",
                        "path": "bad.py",
                        "line_text": 'raise RuntimeError("boom")',
                        "justification": "cli round-trip fixture entry",
                    }
                ]
            )
        )
        out = StringIO()
        code = main([str(target), "--baseline", str(baseline)], out=out)
        assert code == EXIT_CLEAN
        assert "1 baselined" in out.getvalue()
        # --no-baseline must surface it again.
        assert main([str(target), "--no-baseline"], out=StringIO()) == EXIT_FINDINGS

    def test_list_rules_prints_every_contract(self):
        out = StringIO()
        assert main(["--list-rules"], out=out) == EXIT_CLEAN
        text = out.getvalue()
        for cls in ALL_RULE_CLASSES:
            assert cls.rule_id in text

    def test_module_entry_point_subprocess(self, tmp_path):
        """``python -m repro.lint`` works as the CI leg invokes it."""
        target = self._clean_file(tmp_path)
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(target)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == EXIT_CLEAN, result.stderr
        assert "OK:" in result.stdout
