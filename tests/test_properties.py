"""Property-based tests (hypothesis) for the library's core invariants.

These encode the paper's structural claims and the substrate's algebraic
invariants as properties over randomly generated inputs:

* Sturm root counting agrees with the factored ground truth;
* polynomial division reconstructs the dividend;
* Lemma 2.3 invariance of the SINR under similarity transforms;
* Theorem 1: segments between points of a reception zone stay in the zone;
* Theorem 2: the measured fatness never exceeds the bound;
* Lemma 2.1 via Sturm: no line crosses a convex zone boundary more than twice;
* the reception polynomial sign test agrees with the SINR threshold rule;
* the point-location answers are one-sided exact.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import Point, ReceptionZone, SINRDiagram, WirelessNetwork
from repro.algebra import Polynomial, count_real_roots
from repro.geometry import SimilarityTransform, convex_hull, Polygon
from repro.pointlocation import PointLocationStructure, ZoneLabel, explicit_radius_bounds

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
coordinates = st.floats(
    min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False
)
# Root sets for Sturm-counting properties.  Roots are kept pairwise separated:
# with float arithmetic a Sturm sequence cannot reliably distinguish a true
# multiple root from a near-multiple one, so exact-multiplicity inputs are a
# dedicated unit-test case rather than a property-test case.
small_roots = st.lists(
    st.floats(min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=5,
).filter(
    lambda roots: all(
        abs(a - b) >= 0.05 for i, a in enumerate(roots) for b in roots[i + 1 :]
    )
)


@st.composite
def station_layouts(draw, min_stations=2, max_stations=5, min_separation=1.0):
    """Station location lists with pairwise separation at least ``min_separation``."""
    count = draw(st.integers(min_value=min_stations, max_value=max_stations))
    points = []
    for _ in range(count * 8):
        if len(points) == count:
            break
        candidate = Point(draw(coordinates), draw(coordinates))
        if all(candidate.distance_to(p) >= min_separation for p in points):
            points.append(candidate)
    assume(len(points) == count)
    return points


@st.composite
def uniform_networks(draw, beta_min=1.5, beta_max=6.0):
    """Uniform power networks in the Theorem 1/2 regime."""
    points = draw(station_layouts())
    beta = draw(st.floats(min_value=beta_min, max_value=beta_max))
    noise = draw(st.floats(min_value=0.0, max_value=0.05))
    return WirelessNetwork.uniform(points, noise=noise, beta=beta)


# ----------------------------------------------------------------------
# Algebra invariants
# ----------------------------------------------------------------------
class TestAlgebraProperties:
    @given(small_roots)
    @settings(max_examples=60, deadline=None)
    def test_sturm_counts_distinct_real_roots(self, roots):
        polynomial = Polynomial.from_roots(roots)
        distinct = len({round(r, 9) for r in roots})
        assert count_real_roots(polynomial) == distinct

    @given(
        st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=6),
        st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_polynomial_division_reconstructs_dividend(self, dividend_coefficients, divisor_coefficients):
        dividend = Polynomial(dividend_coefficients)
        divisor = Polynomial(divisor_coefficients)
        assume(not divisor.is_zero(tolerance=1e-9))
        assume(abs(divisor.leading_coefficient()) > 1e-3)
        quotient, remainder = dividend.divmod(divisor)
        for x in (-1.7, -0.3, 0.0, 0.9, 2.2):
            reconstructed = quotient(x) * divisor(x) + remainder(x)
            assert reconstructed == pytest.approx(dividend(x), rel=1e-6, abs=1e-6)

    @given(small_roots, st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=50, deadline=None)
    def test_shift_preserves_root_count(self, roots, offset):
        polynomial = Polynomial.from_roots(roots)
        shifted = polynomial.shifted(offset)
        assert count_real_roots(shifted) == count_real_roots(polynomial)


# ----------------------------------------------------------------------
# Geometry invariants
# ----------------------------------------------------------------------
class TestGeometryProperties:
    @given(st.lists(st.tuples(coordinates, coordinates), min_size=3, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_convex_hull_contains_every_point(self, raw_points):
        points = [Point(x, y) for x, y in raw_points]
        hull = convex_hull(points)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        for point in points:
            assert polygon.contains(point, tolerance=1e-7)

    @given(
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=0.2, max_value=3.0),
        st.tuples(coordinates, coordinates),
        st.tuples(coordinates, coordinates),
    )
    @settings(max_examples=60, deadline=None)
    def test_similarity_transforms_scale_distances_uniformly(
        self, angle, scale, raw_p, raw_q
    ):
        transform = SimilarityTransform(angle=angle, scale=scale, offset=Point(1.0, -2.0))
        p, q = Point(*raw_p), Point(*raw_q)
        original = p.distance_to(q)
        mapped = transform.apply(p).distance_to(transform.apply(q))
        assert mapped == pytest.approx(scale * original, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# SINR model invariants (the paper's theorems)
# ----------------------------------------------------------------------
class TestModelProperties:
    @given(uniform_networks(), st.tuples(coordinates, coordinates))
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_lemma_2_3_sinr_invariance(self, network, raw_point):
        point = Point(*raw_point)
        assume(all(s.location.distance_to(point) > 1e-6 for s in network.stations))
        transform = SimilarityTransform(angle=0.9, scale=1.7, offset=Point(2.0, 3.0))
        transformed = network.transformed(transform)
        assert transformed.sinr(0, transform.apply(point)) == pytest.approx(
            network.sinr(0, point), rel=1e-9
        )

    @given(uniform_networks(), st.tuples(coordinates, coordinates))
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_reception_polynomial_sign_matches_sinr_rule(self, network, raw_point):
        point = Point(*raw_point)
        assume(all(s.location.distance_to(point) > 1e-9 for s in network.stations))
        polynomial = network.reception_polynomial(0)
        assert polynomial.is_received(point) == network.is_received(0, point)

    @given(uniform_networks(beta_min=1.5), st.floats(min_value=0.0, max_value=2 * math.pi), st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=2 * math.pi), st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.05, max_value=0.95))
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_theorem_1_segments_between_zone_points_stay_inside(
        self, network, angle_a, radial_a, angle_b, radial_b, interpolation
    ):
        zone = ReceptionZone(network=network, index=0)
        assume(not zone.is_degenerate)
        max_radius = zone.search_radius()
        point_a = zone.station_location + Point(
            math.cos(angle_a), math.sin(angle_a)
        ) * (radial_a * 0.98 * zone.boundary_distance_along_ray(angle_a, max_radius))
        point_b = zone.station_location + Point(
            math.cos(angle_b), math.sin(angle_b)
        ) * (radial_b * 0.98 * zone.boundary_distance_along_ray(angle_b, max_radius))
        assume(zone.contains(point_a) and zone.contains(point_b))
        between = point_a + (point_b - point_a) * interpolation
        assert zone.contains(between)

    @given(uniform_networks(beta_min=1.3))
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_theorem_2_fatness_bound(self, network):
        zone = ReceptionZone(network=network, index=0)
        assume(not zone.is_degenerate)
        measurement = zone.fatness(angles=72)
        beta = network.beta
        bound = (math.sqrt(beta) + 1.0) / (math.sqrt(beta) - 1.0)
        assert measurement.fatness <= bound * (1.0 + 1e-4)

    @given(uniform_networks(beta_min=1.3))
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_theorem_4_1_explicit_bounds_sandwich_measured_radii(self, network):
        assume(not network.location_is_shared(0))
        bounds = explicit_radius_bounds(network, 0)
        zone = ReceptionZone(network=network, index=0)
        measurement = zone.fatness(angles=72)
        assert bounds.delta_lower <= measurement.delta * (1.0 + 1e-6)
        assert bounds.Delta_upper >= measurement.Delta * (1.0 - 1e-6)

    @given(
        uniform_networks(beta_min=1.5),
        st.floats(min_value=0.0, max_value=math.pi),
        st.floats(min_value=-4.0, max_value=4.0),
    )
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_lemma_2_1_lines_cross_the_boundary_at_most_twice(
        self, network, angle, offset
    ):
        assume(not network.location_is_shared(0))
        polynomial = network.reception_polynomial(0)
        zone = ReceptionZone(network=network, index=0)
        reach = zone.search_radius() * 3.0 + 5.0
        direction = Point(math.cos(angle), math.sin(angle))
        normal = direction.perpendicular()
        anchor = zone.station_location + normal * offset - direction * reach
        end = zone.station_location + normal * offset + direction * reach
        assert polynomial.count_boundary_crossings(anchor, end) <= 2


# ----------------------------------------------------------------------
# Point-location invariants (Theorem 3)
# ----------------------------------------------------------------------
class TestPointLocationProperties:
    @given(
        station_layouts(min_stations=2, max_stations=4, min_separation=2.0),
        st.lists(st.tuples(coordinates, coordinates), min_size=5, max_size=30),
    )
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_answers_are_one_sided_exact(self, layout, raw_queries):
        network = WirelessNetwork.uniform(layout, noise=0.005, beta=2.5)
        structure = PointLocationStructure(network, epsilon=0.5)
        for raw in raw_queries:
            point = Point(*raw)
            answer = structure.locate_answer(point)
            if answer.label is ZoneLabel.INSIDE:
                assert network.is_received(answer.station, point)
            elif answer.label is ZoneLabel.OUTSIDE:
                assert all(
                    not network.is_received(index, point)
                    for index in range(len(network))
                )
