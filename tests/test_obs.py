"""Contract of the observability layer (:mod:`repro.obs`).

The hub invariants under test: records are immutable per-tick snapshots of
every registered source; one failing source or sink is skipped and counted,
never propagated into the service being observed; the periodic task keeps
collecting across epoch swaps; and ``stop()`` always drains one final
record through the sinks (plus a flush), so the tail of a run is never
lost.  Sinks are exercised for thread-safety-adjacent basics and strict
JSON output (non-finite percentiles become ``null``).
"""

from __future__ import annotations

import asyncio
import json
import logging
import math

import numpy as np
import pytest

from repro.exceptions import ObservabilityClosedError, ObservabilityError
from repro.obs import (
    JsonlSink,
    LogSink,
    MemorySink,
    MetricsHub,
    MetricsRecord,
    batcher_depth_source,
    cache_stats_source,
    query_service_source,
    screen_stats_source,
    service_stats_source,
)
from repro.raster import TileCache
from repro.service import MicroBatcher, QueryService, ServiceStats

from test_service import FakeLocator, fingerprint_answers  # noqa: F401


def run(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


# ----------------------------------------------------------------------
# Records and registration
# ----------------------------------------------------------------------
class TestHubBasics:
    def test_collect_builds_record_from_all_sources(self):
        hub = MetricsHub(interval=1.0)
        hub.add_source("a", lambda: {"x": 1, "y": 2.5})
        hub.add_source("b", lambda: {"z": -3})
        record = hub.collect()
        assert record.sequence == 1
        assert record.source("a") == {"x": 1.0, "y": 2.5}
        assert record.source("b") == {"z": -3.0}
        assert hub.records == 1
        second = hub.collect()
        assert second.sequence == 2
        assert second.timestamp >= record.timestamp

    def test_missing_source_accessor_raises(self):
        record = MetricsRecord(sequence=1, timestamp=0.0, values={"a": {}})
        with pytest.raises(ObservabilityError, match="no source 'b'"):
            record.source("b")

    def test_duplicate_source_name_rejected(self):
        hub = MetricsHub(interval=1.0)
        hub.add_source("svc", lambda: {})
        with pytest.raises(ObservabilityError, match="already registered"):
            hub.add_source("svc", lambda: {})

    def test_unique_source_name_suffixes(self):
        hub = MetricsHub(interval=1.0)
        assert hub.unique_source_name("svc") == "svc"
        hub.add_source("svc", lambda: {})
        assert hub.unique_source_name("svc") == "svc-2"
        hub.add_source("svc-2", lambda: {})
        assert hub.unique_source_name("svc") == "svc-3"

    def test_remove_source_and_sink(self):
        hub = MetricsHub(interval=1.0)
        hub.add_source("svc", lambda: {"x": 1})
        sink = MemorySink()
        hub.add_sink(sink)
        assert hub.remove_source("svc") is True
        assert hub.remove_source("svc") is False
        assert hub.remove_sink(sink) is True
        assert hub.remove_sink(sink) is False
        record = hub.collect()
        assert record.values == {} and len(sink) == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsHub(interval=0.0)
        with pytest.raises(ObservabilityError):
            MetricsHub(interval=-1.0)
        hub = MetricsHub(interval=1.0)
        with pytest.raises(ObservabilityError):
            hub.add_source("svc", object())
        with pytest.raises(ObservabilityError):
            hub.add_sink(object())  # no emit()

    def test_interval_defaults_from_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "0.125")
        assert MetricsHub().interval == 0.125
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "not-a-number")
        with pytest.warns(UserWarning, match="REPRO_METRICS_INTERVAL"):
            assert MetricsHub().interval == 0.25

    def test_failing_source_is_skipped_and_counted(self):
        hub = MetricsHub(interval=1.0)
        hub.add_source("good", lambda: {"x": 1})
        hub.add_source("bad", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        record = hub.collect()
        assert record.source("good") == {"x": 1.0}
        assert "bad" not in record.values
        assert hub.source_errors == 1 and hub.records == 1

    def test_failing_sink_is_skipped_and_counted(self):
        class ExplodingSink:
            def emit(self, record):
                raise RuntimeError("boom")

        hub = MetricsHub(interval=1.0)
        hub.add_source("svc", lambda: {"x": 1})
        good = MemorySink()
        hub.add_sink(ExplodingSink())
        hub.add_sink(good)
        record = hub.collect()
        assert hub.sink_errors == 1
        assert good.last() is record  # the good sink still got the record


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_memory_sink_is_a_ring(self):
        sink = MemorySink(capacity=3)
        hub = MetricsHub(interval=1.0)
        hub.add_source("svc", lambda: {"x": 1})
        hub.add_sink(sink)
        records = [hub.collect() for _ in range(5)]
        assert len(sink) == 3
        assert sink.records() == tuple(records[-3:])
        assert sink.last() is records[-1]
        with pytest.raises(ObservabilityError):
            MemorySink(capacity=0)

    def test_jsonl_sink_writes_strict_json(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hub = MetricsHub(interval=1.0)
        stats = ServiceStats()  # all percentiles still nan
        hub.add_source("service", service_stats_source(stats))
        hub.add_source("plain", lambda: {"x": 1.5, "inf": math.inf})
        with JsonlSink(path) as sink:
            hub.add_sink(sink)
            hub.collect()
            hub.collect()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for sequence, line in enumerate(lines, start=1):
            payload = json.loads(line)  # must be strict JSON
            assert payload["sequence"] == sequence
            assert payload["values"]["service"]["wait_p99"] is None  # nan
            assert payload["values"]["plain"]["inf"] is None
            assert payload["values"]["plain"]["x"] == 1.5

    def test_log_sink_emits_one_line_per_record(self, caplog):
        hub = MetricsHub(interval=1.0)
        hub.add_source("svc", lambda: {"x": 1.25})
        hub.add_sink(LogSink(logging.getLogger("repro.obs.test")))
        with caplog.at_level(logging.INFO, logger="repro.obs.test"):
            hub.collect()
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "metrics #1" in message and "svc[x=1.25]" in message


# ----------------------------------------------------------------------
# Source adapters
# ----------------------------------------------------------------------
class TestSources:
    def test_service_stats_source_flattens_snapshot(self):
        stats = ServiceStats()
        stats.record_submitted()
        stats.record_batch(1, [0.001])
        stats.record_completed(0.002)
        sample = service_stats_source(stats)()
        assert sample["submitted"] == 1.0
        assert sample["batches"] == 1.0
        assert sample["wait_p99"] == pytest.approx(0.001)
        assert math.isnan(sample["last_swap_seconds"])

    def test_cache_stats_source_includes_derived_rates(self):
        cache = TileCache(max_bytes=1 << 20)
        sample = cache_stats_source(cache)()
        assert sample["hits"] == 0.0 and sample["hit_rate"] == 0.0
        assert sample["max_bytes"] == float(1 << 20)
        assert sample["requests"] == 0.0

    def test_screen_stats_source(self):
        class FakeScreen:
            screened = 10
            verified = 4

            def verify_fraction(self):
                return self.verified / self.screened

        sample = screen_stats_source(FakeScreen())()
        assert sample == {"screened": 10.0, "verified": 4.0, "verify_fraction": 0.4}

    def test_batcher_gauges_sources(self, ten_station_network):
        async def main():
            fake = FakeLocator()
            batcher = MicroBatcher(fake.locate_batch, latency_budget=0.001)
            await batcher.start()
            try:
                sample = batcher_depth_source(batcher)()
                assert sample == {
                    "queue_depth": 0.0,
                    "inflight_batches": 0.0,
                    "latency_budget": 0.001,
                }
            finally:
                await batcher.stop()

            service = QueryService(ten_station_network, "voronoi")
            async with service:
                await service.locate((1.0, 1.0))
                sample = query_service_source(service)()
            assert sample["completed"] == 1.0
            assert sample["queue_depth"] == 0.0
            assert sample["latency_budget"] == service._batcher.latency_budget

        run(main())


# ----------------------------------------------------------------------
# Periodic collection against a live service
# ----------------------------------------------------------------------
class TestPeriodicCollection:
    def test_periodic_ticks_and_final_drain(self, ten_station_network):
        async def main():
            hub = MetricsHub(interval=0.02)
            sink = MemorySink(capacity=1024)
            hub.add_sink(sink)
            async with QueryService(
                ten_station_network, "voronoi", metrics=hub
            ) as service:
                await hub.start()
                assert hub.running
                pts = query_box_points(ten_station_network)
                await service.locate_many(pts)
                await asyncio.sleep(0.1)
                periodic_count = len(sink)
                final = await hub.stop()
                assert not hub.running
            return sink, periodic_count, final

        sink, periodic_count, final = run(main())
        assert periodic_count >= 2  # the ticker actually ticked
        # The final drain record reached the sink and is the newest one.
        assert sink.last() is final
        assert final.source("service")["completed"] == 60.0

    def test_stop_drains_final_snapshot_even_without_ticks(self):
        async def main():
            hub = MetricsHub(interval=30.0)  # ticker will never fire
            sink = MemorySink()
            hub.add_sink(sink)
            seen = []
            hub.add_source("probe", lambda: seen.append(1) or {"n": len(seen)})
            await hub.start()
            final = await hub.stop()
            return sink, final, seen

        sink, final, seen = run(main())
        assert len(seen) == 1  # exactly the final drain sampled it
        assert sink.last() is final and final.source("probe") == {"n": 1.0}

    def test_hub_lifecycle_is_terminal(self):
        """A stopped hub is closed for good: no restart, no ``collect()``."""

        async def main():
            hub = MetricsHub(interval=0.01)
            hub.add_source("svc", lambda: {"x": 1})
            await hub.start()
            await asyncio.sleep(0.03)
            final = await hub.stop()
            assert final is not None and hub.records >= 1
            with pytest.raises(ObservabilityError, match="cannot be restarted"):
                await hub.start()
            with pytest.raises(ObservabilityClosedError):
                hub.collect()
            # Registration stays open after stop: services withdraw their
            # sources during their own teardown, which may outlive the hub.
            assert hub.remove_source("svc")
            assert await hub.stop() is None  # idempotent

        run(main())

    def test_double_start_rejected(self):
        async def main():
            hub = MetricsHub(interval=1.0)
            await hub.start()
            try:
                with pytest.raises(ObservabilityError, match="already running"):
                    await hub.start()
            finally:
                await hub.stop()

        run(main())

    def test_stop_without_start_is_a_noop(self):
        async def main():
            hub = MetricsHub(interval=1.0)
            assert await hub.stop() is None
            assert hub.records == 0

        run(main())

    def test_collection_continues_across_epoch_swap(self, ten_station_network):
        """The hub keeps sampling through swap_network; epoch metric moves."""

        async def main():
            hub = MetricsHub(interval=0.01)
            sink = MemorySink(capacity=4096)
            hub.add_sink(sink)
            async with QueryService(
                ten_station_network, "voronoi", metrics=hub
            ) as service:
                await hub.start()
                await service.locate((1.0, 1.0))
                await asyncio.sleep(0.05)
                shifted = FakeLocator()
                await service.swap_network(
                    ten_station_network, locator=shifted
                )
                answer = await service.locate((1.5, 2.5))
                assert answer == int(
                    fingerprint_answers(np.array([[1.5, 2.5]]))[0]
                )
                await asyncio.sleep(0.05)
                await hub.stop()
            return sink

        sink = run(main())
        epochs = [record.source("service")["epoch"] for record in sink.records()]
        assert 0.0 in epochs and 1.0 in epochs  # sampled both sides of the swap

    def test_shared_hub_deregistered_on_service_stop(self, ten_station_network):
        async def main():
            hub = MetricsHub(interval=1.0)
            async with QueryService(ten_station_network, "voronoi", metrics=hub):
                assert hub.source_names() == ("service",)
            assert hub.source_names() == ()
            record = hub.collect()
            assert record.values == {}

        run(main())


def query_box_points(network, count: int = 60):
    from seeded_workloads import query_box_array

    return query_box_array(network, count, seed=11, margin=2.0)
