"""Tests for the extension modules: 1-D reception analysis, link scheduling,
and the programmatic experiment harness."""

from __future__ import annotations

import math

import pytest

from repro import SINRDiagram, WirelessNetwork
from repro.analysis import (
    ExperimentResult,
    format_report,
    run_figure1,
    run_figure2,
    run_figure3_4,
    run_figure5,
    run_theorem1,
    run_theorem2,
)
from repro.exceptions import NetworkConfigurationError
from repro.geometry import theoretical_fatness_bound
from repro.graphs import (
    compare_schedules,
    greedy_schedule,
    sinr_link_feasible,
    sinr_links_feasible,
    udg_links_feasible,
)
from repro.model import (
    colinear_reception_interval,
    is_positive_colinear,
    two_station_fatness_ratio,
    two_station_reception_interval,
)
from repro.workloads import colinear_network


class TestTwoStationClosedForms:
    def test_interval_formulas(self):
        interval = two_station_reception_interval(beta=2.0, separation=4.0)
        assert interval.mu_right == pytest.approx(4.0 / (math.sqrt(2.0) + 1.0))
        assert interval.mu_left == pytest.approx(-4.0 / (math.sqrt(2.0) - 1.0))
        assert interval.delta == interval.mu_right
        assert interval.Delta == -interval.mu_left
        assert interval.length == pytest.approx(interval.mu_right - interval.mu_left)

    def test_lemma_4_3_ratio(self):
        # Equality at psi_1 = 1; the ratio decreases as the interferer gets stronger.
        equal = two_station_fatness_ratio(beta=2.0, interferer_power=1.0)
        stronger = two_station_fatness_ratio(beta=2.0, interferer_power=4.0)
        assert equal == pytest.approx(theoretical_fatness_bound(2.0))
        assert stronger < equal
        interval = two_station_reception_interval(2.0, 1.0, 3.0)
        assert interval.ratio == pytest.approx(equal)

    def test_closed_form_matches_the_planar_zone(self):
        network = WirelessNetwork.uniform([(0, 0), (4, 0)], noise=0.0, beta=2.0)
        zone = SINRDiagram(network).zone(0)
        interval = two_station_reception_interval(beta=2.0, separation=4.0)
        assert zone.boundary_distance_along_ray(0.0) == pytest.approx(
            interval.mu_right, abs=1e-6
        )
        assert zone.boundary_distance_along_ray(math.pi) == pytest.approx(
            -interval.mu_left, abs=1e-5
        )

    def test_validation(self):
        with pytest.raises(NetworkConfigurationError):
            two_station_reception_interval(beta=0.5, separation=1.0)
        with pytest.raises(NetworkConfigurationError):
            two_station_reception_interval(beta=2.0, separation=0.0)
        with pytest.raises(NetworkConfigurationError):
            two_station_fatness_ratio(beta=0.9)


class TestColinearIntervals:
    def test_positive_colinear_detection(self):
        assert is_positive_colinear(colinear_network(4, spacing=2.0, beta=2.0))
        assert not is_positive_colinear(
            WirelessNetwork.uniform([(0, 0), (2, 1)], beta=2.0)
        )
        assert not is_positive_colinear(
            WirelessNetwork.uniform([(1, 0), (2, 0)], beta=2.0)
        )

    def test_two_station_case_matches_closed_form(self):
        network = colinear_network(2, spacing=4.0, beta=2.0)
        interval = colinear_reception_interval(network)
        closed_form = two_station_reception_interval(beta=2.0, separation=4.0)
        assert interval.mu_right == pytest.approx(closed_form.mu_right, abs=1e-6)
        assert interval.mu_left == pytest.approx(closed_form.mu_left, abs=1e-5)

    def test_lemma_4_4_interval_matches_zone_radii(self):
        # delta = mu_r and Delta = -mu_l for positive colinear networks.
        network = colinear_network(5, spacing=2.0, beta=2.0)
        interval = colinear_reception_interval(network)
        measurement = SINRDiagram(network).zone(0).fatness(angles=240)
        assert interval.delta == pytest.approx(measurement.delta, rel=1e-3)
        assert interval.Delta == pytest.approx(measurement.Delta, rel=1e-3)
        assert interval.ratio <= theoretical_fatness_bound(2.0) + 1e-9

    def test_more_interferers_shrink_the_interval(self):
        small = colinear_reception_interval(colinear_network(2, spacing=2.0, beta=2.0))
        large = colinear_reception_interval(colinear_network(6, spacing=2.0, beta=2.0))
        assert large.mu_right < small.mu_right
        assert large.Delta <= small.Delta + 1e-9

    def test_validation(self):
        with pytest.raises(NetworkConfigurationError):
            colinear_reception_interval(WirelessNetwork.uniform([(0, 0), (2, 1)], beta=2.0))
        with pytest.raises(NetworkConfigurationError):
            colinear_reception_interval(colinear_network(3, spacing=2.0, beta=1.0))


class TestLinkScheduling:
    def network(self):
        # Two well separated sender/receiver pairs plus a middle station.
        return WirelessNetwork.uniform(
            [(0, 0), (1.5, 0), (10, 0), (11.5, 0), (5.5, 4.0)], noise=0.0, beta=2.0
        )

    def test_single_link_feasibility(self):
        network = self.network()
        assert sinr_link_feasible(network, (1, 0), senders={1})
        # The same link fails if the far pair transmits close to the receiver? No:
        # the far senders are 10 units away, so the link still succeeds.
        assert sinr_link_feasible(network, (1, 0), senders={1, 3})
        # A sender that is not transmitting cannot be received.
        assert not sinr_link_feasible(network, (1, 0), senders={3})

    def test_parallel_links_feasible_when_far_apart(self):
        network = self.network()
        assert sinr_links_feasible(network, [(1, 0), (3, 2)])
        # Both links sharing a receiver is never feasible.
        assert not sinr_links_feasible(network, [(1, 0), (3, 0)])
        # A station cannot send and receive simultaneously.
        assert not sinr_links_feasible(network, [(1, 0), (0, 4)])

    def test_udg_feasibility_is_more_conservative_here(self):
        network = self.network()
        links = [(1, 0), (4, 2)]
        # Under the SINR rule the strong nearby link (1->0) survives the far
        # transmitter; under a UDG with a large radius the two senders collide
        # at receiver 2.
        assert udg_links_feasible(network, [(1, 0)], radius=2.0)
        assert not udg_links_feasible(network, [(1, 0), (3, 2)], radius=10.0)

    def test_greedy_schedule_and_comparison(self):
        network = self.network()
        links = [(1, 0), (3, 2)]
        comparison = compare_schedules(network, links, udg_radius=10.0)
        assert comparison.sinr_length == 1
        assert comparison.udg_length == 2
        assert comparison.udg_overhead == pytest.approx(2.0)

    def test_greedy_schedule_rejects_impossible_links(self):
        network = self.network()
        with pytest.raises(NetworkConfigurationError):
            greedy_schedule(
                [(0, 2)],  # sender 0 is 10 units from receiver 2: SNR fine (no
                # noise) but interference from... actually make it infeasible by
                # scheduling against an oracle that always refuses.
                lambda batch: False,
            )

    def test_link_validation(self):
        network = self.network()
        with pytest.raises(NetworkConfigurationError):
            sinr_links_feasible(network, [(0, 9)])
        with pytest.raises(NetworkConfigurationError):
            sinr_links_feasible(network, [(0, 0)])


class TestExperimentHarness:
    def test_figure_experiments_reproduce(self):
        for runner in (run_figure1, run_figure2, run_figure3_4, run_figure5):
            result = runner()
            assert isinstance(result, ExperimentResult)
            assert result.reproduced, result.experiment

    def test_theorem_experiments_reproduce(self):
        assert run_theorem1().reproduced
        result = run_theorem2()
        assert result.reproduced
        assert len(result.details["series"]) == 4

    def test_query_service_experiment_reproduces(self):
        from repro.analysis import run_query_service

        result = run_query_service(queries=600)
        assert result.reproduced, result.measured
        assert result.details["mismatches"] == 0
        assert result.details["mean_batch_size"] > 1.0

    def test_format_report_is_markdown_table(self):
        results = [run_figure2()]
        report = format_report(results)
        lines = report.splitlines()
        assert lines[0].startswith("| Experiment |")
        assert "Figure 2" in report
        assert "| yes |" in report
