"""Tests for balls, segments, lines and similarity transforms."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import GeometryError
from repro.geometry import (
    Ball,
    Line,
    Point,
    Segment,
    SimilarityTransform,
    circle_intersection_points,
    separation_line,
)


class TestBall:
    def test_containment_predicates(self):
        ball = Ball(Point(0, 0), 2.0)
        assert ball.contains(Point(1, 1))
        assert ball.contains(Point(2, 0))
        assert not ball.contains(Point(2.1, 0))
        assert ball.strictly_contains(Point(1, 0))
        assert not ball.strictly_contains(Point(2, 0))
        assert ball.on_boundary(Point(0, 2))

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Ball(Point(0, 0), -1.0)

    def test_ball_containment_and_intersection(self):
        big = Ball(Point(0, 0), 5.0)
        small = Ball(Point(1, 0), 1.0)
        far = Ball(Point(10, 0), 1.0)
        assert big.contains_ball(small)
        assert not small.contains_ball(big)
        assert big.intersects_ball(small)
        assert not big.intersects_ball(far)

    def test_area_and_perimeter(self):
        ball = Ball(Point(0, 0), 2.0)
        assert ball.area() == pytest.approx(4.0 * math.pi)
        assert ball.perimeter() == pytest.approx(4.0 * math.pi)

    def test_boundary_sampling(self):
        ball = Ball(Point(1, 1), 3.0)
        samples = ball.sample_boundary(8)
        assert len(samples) == 8
        for sample in samples:
            assert ball.on_boundary(sample, tolerance=1e-9)

    def test_circle_intersection_two_points(self):
        first = Ball(Point(0, 0), 2.0)
        second = Ball(Point(2, 0), 2.0)
        points = circle_intersection_points(first, second)
        assert len(points) == 2
        for point in points:
            assert first.on_boundary(point) and second.on_boundary(point)

    def test_circle_intersection_tangent_and_disjoint(self):
        assert len(circle_intersection_points(Ball(Point(0, 0), 1), Ball(Point(2, 0), 1))) == 1
        assert circle_intersection_points(Ball(Point(0, 0), 1), Ball(Point(5, 0), 1)) == []

    def test_identical_circles_raise(self):
        with pytest.raises(GeometryError):
            circle_intersection_points(Ball(Point(0, 0), 1), Ball(Point(0, 0), 1))


class TestSegment:
    def test_length_midpoint_direction(self):
        segment = Segment(Point(0, 0), Point(3, 4))
        assert segment.length() == pytest.approx(5.0)
        assert segment.midpoint() == Point(1.5, 2.0)
        assert segment.direction() == Point(3, 4)

    def test_point_at_and_sampling(self):
        segment = Segment(Point(0, 0), Point(4, 0))
        assert segment.point_at(0.25) == Point(1, 0)
        samples = segment.sample(5)
        assert samples[0] == Point(0, 0) and samples[-1] == Point(4, 0)
        inner = segment.sample(3, include_endpoints=False)
        assert all(0 < p.x < 4 for p in inner)

    def test_contains(self):
        segment = Segment(Point(0, 0), Point(2, 2))
        assert segment.contains(Point(1, 1))
        assert not segment.contains(Point(3, 3))
        assert not segment.contains(Point(1, 1.5))

    def test_closest_point_and_distance(self):
        segment = Segment(Point(0, 0), Point(4, 0))
        assert segment.closest_point(Point(2, 3)) == Point(2, 0)
        assert segment.closest_point(Point(-2, 1)) == Point(0, 0)
        assert segment.distance_to_point(Point(2, 3)) == pytest.approx(3.0)

    def test_intersection(self):
        first = Segment(Point(0, 0), Point(2, 2))
        second = Segment(Point(0, 2), Point(2, 0))
        assert first.intersection(second).is_close(Point(1, 1))
        assert first.intersection(Segment(Point(0, 1), Point(2, 3))) is None

    def test_degenerate_segment(self):
        segment = Segment(Point(1, 1), Point(1, 1))
        assert segment.is_degenerate()
        assert segment.contains(Point(1, 1))
        with pytest.raises(GeometryError):
            segment.projection_parameter(Point(0, 0))


class TestLine:
    def test_through_two_points(self):
        line = Line.through(Point(0, 0), Point(2, 2))
        assert line.contains(Point(5, 5))
        assert not line.contains(Point(1, 2))

    def test_signed_distance_and_projection(self):
        line = Line.horizontal(1.0)
        assert abs(line.signed_distance(Point(0, 3))) == pytest.approx(2.0)
        assert line.project(Point(5, 3)) == Point(5, 1)

    def test_intersection_of_lines(self):
        horizontal = Line.horizontal(2.0)
        vertical = Line.vertical(3.0)
        assert horizontal.intersection(vertical) == Point(3, 2)
        assert horizontal.intersection(Line.horizontal(5.0)) is None

    def test_side_classification(self):
        line = Line.through(Point(0, 0), Point(1, 0))
        assert line.side(Point(0, 1)) != line.side(Point(0, -1))
        assert line.side(Point(5, 0)) == 0

    def test_coincident_points_raise(self):
        with pytest.raises(GeometryError):
            Line.through(Point(1, 1), Point(1, 1))

    def test_separation_line_is_perpendicular_bisector(self):
        bisector = separation_line(Point(0, 0), Point(4, 0))
        assert bisector.contains(Point(2, -7))
        assert bisector.contains(Point(2, 12))
        assert bisector.side(Point(0, 0)) != bisector.side(Point(4, 0))

    def test_separation_line_of_coincident_points_raises(self):
        with pytest.raises(GeometryError):
            separation_line(Point(1, 1), Point(1, 1))


class TestSimilarityTransform:
    def test_identity(self):
        transform = SimilarityTransform.identity()
        assert transform.apply(Point(3, -2)) == Point(3, -2)

    def test_translation_rotation_scaling(self):
        assert SimilarityTransform.translation(Point(1, 2)).apply(Point(0, 0)) == Point(1, 2)
        rotated = SimilarityTransform.rotation(math.pi / 2).apply(Point(1, 0))
        assert rotated.is_close(Point(0, 1))
        assert SimilarityTransform.scaling(3.0).apply(Point(1, 1)) == Point(3, 3)

    def test_rotation_about_pivot(self):
        transform = SimilarityTransform.rotation(math.pi, about=Point(1, 0))
        assert transform.apply(Point(2, 0)).is_close(Point(0, 0))

    def test_composition_matches_sequential_application(self):
        first = SimilarityTransform.rotation(0.3)
        second = SimilarityTransform.translation(Point(2, -1))
        combined = second.compose(first)
        p = Point(1.7, -0.4)
        assert combined.apply(p).is_close(second.apply(first.apply(p)))

    def test_inverse_round_trip(self):
        transform = SimilarityTransform(angle=0.7, scale=2.5, offset=Point(3, -4))
        inverse = transform.inverse()
        p = Point(1.2, 3.4)
        assert inverse.apply(transform.apply(p)).is_close(p, tolerance=1e-9)

    def test_canonicalize_maps_source_to_origin_and_target_to_unit(self):
        transform = SimilarityTransform.canonicalize(Point(2, 3), Point(5, 7))
        assert transform.apply(Point(2, 3)).is_close(Point(0, 0))
        assert transform.apply(Point(5, 7)).is_close(Point(1, 0))

    def test_noise_factor_is_square_of_scale(self):
        assert SimilarityTransform.scaling(3.0).noise_factor() == pytest.approx(9.0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(GeometryError):
            SimilarityTransform(scale=0.0)
