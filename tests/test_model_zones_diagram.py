"""Tests for reception zones and SINR diagrams."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import (
    NO_RECEPTION,
    Point,
    RasterDiagram,
    ReceptionZone,
    SINRDiagram,
    WirelessNetwork,
)
from repro.exceptions import DiagramError, NetworkConfigurationError


class TestReceptionZone:
    def test_membership_matches_network_rule(self, noisy_network):
        zone = ReceptionZone(network=noisy_network, index=0)
        rng = random.Random(4)
        for _ in range(200):
            point = Point(rng.uniform(-5, 8), rng.uniform(-5, 8))
            assert zone.contains(point) == noisy_network.is_received(0, point)
        assert Point(0.2, 0.1) in zone

    def test_invalid_index_rejected(self, noisy_network):
        with pytest.raises(NetworkConfigurationError):
            ReceptionZone(network=noisy_network, index=99)

    def test_degenerate_zone(self):
        network = WirelessNetwork.uniform([(0, 0), (0, 0), (4, 0)], beta=2.0)
        zone = ReceptionZone(network=network, index=0)
        assert zone.is_degenerate
        assert zone.inscribed_radius() == 0.0
        assert zone.area_estimate() == 0.0
        with pytest.raises(NetworkConfigurationError):
            zone.boundary_polygon()

    def test_boundary_distance_bisection(self, two_station_network):
        zone = ReceptionZone(network=two_station_network, index=0)
        # The zone of s0 is the Apollonius disk d0 <= d1 / sqrt(2) whose
        # rightmost boundary point on the x-axis is at x = 4/(sqrt(2)+1).
        expected = 4.0 / (math.sqrt(2.0) + 1.0)
        assert zone.boundary_distance_along_ray(0.0) == pytest.approx(expected, abs=1e-6)
        # Leftmost boundary point at distance 4/(sqrt(2)-1).
        expected_far = 4.0 / (math.sqrt(2.0) - 1.0)
        assert zone.boundary_distance_along_ray(math.pi) == pytest.approx(
            expected_far, abs=1e-5
        )

    def test_boundary_points_lie_on_the_boundary(self, noisy_network):
        zone = ReceptionZone(network=noisy_network, index=0)
        polynomial = noisy_network.reception_polynomial(0)
        for k in range(12):
            point = zone.boundary_point_along_ray(2 * math.pi * k / 12)
            scale = max(abs(polynomial(point.x + 1, point.y)), 1.0)
            assert abs(polynomial.evaluate_at_point(point)) <= 1e-4 * scale

    def test_boundary_polygon_is_convex_for_beta_above_one(self, noisy_network):
        zone = ReceptionZone(network=noisy_network, index=0)
        polygon = zone.boundary_polygon(vertices=90)
        assert polygon.is_convex(tolerance=1e-7)

    def test_fatness_measurement_respects_theorem_2(self, noisy_network):
        zone = ReceptionZone(network=noisy_network, index=0)
        measurement = zone.fatness(angles=120)
        bound = (math.sqrt(noisy_network.beta) + 1) / (math.sqrt(noisy_network.beta) - 1)
        assert 1.0 <= measurement.fatness <= bound + 1e-6

    def test_two_station_exact_radii(self, two_station_network):
        # Section 4.2.1: delta = kappa/(sqrt(beta)+1), Delta = kappa/(sqrt(beta)-1).
        zone = ReceptionZone(network=two_station_network, index=0)
        measurement = zone.fatness(angles=256)
        beta, kappa = 2.0, 4.0
        assert measurement.delta == pytest.approx(kappa / (math.sqrt(beta) + 1), rel=1e-3)
        assert measurement.Delta == pytest.approx(kappa / (math.sqrt(beta) - 1), rel=1e-3)

    def test_area_and_perimeter_estimates(self, two_station_network):
        zone = ReceptionZone(network=two_station_network, index=0)
        # The zone is the Apollonius disk of radius sqrt(32).
        radius = math.sqrt(32.0)
        assert zone.area_estimate(vertices=720) == pytest.approx(
            math.pi * radius * radius, rel=2e-2
        )
        assert zone.perimeter_estimate(vertices=720) == pytest.approx(
            2 * math.pi * radius, rel=2e-2
        )

    def test_search_radius_bounds_the_zone(self, noisy_network):
        zone = ReceptionZone(network=noisy_network, index=0)
        radius = zone.search_radius()
        center = zone.station_location
        for k in range(16):
            angle = 2 * math.pi * k / 16
            probe = Point(
                center.x + radius * 1.01 * math.cos(angle),
                center.y + radius * 1.01 * math.sin(angle),
            )
            assert not zone.contains(probe)


class TestSINRDiagram:
    def test_zone_accessors(self, noisy_diagram):
        assert len(noisy_diagram) == 5
        assert len(noisy_diagram.zones) == 5
        assert noisy_diagram.zone(2).index == 2

    def test_station_heard_at_matches_zones(self, noisy_diagram, noisy_network):
        rng = random.Random(8)
        for _ in range(150):
            point = Point(rng.uniform(-5, 8), rng.uniform(-5, 8))
            heard = noisy_diagram.station_heard_at(point)
            memberships = [
                noisy_network.is_received(i, point) for i in range(len(noisy_network))
            ]
            if heard is None:
                assert not any(memberships)
            else:
                assert memberships[heard]

    def test_reception_vector(self, noisy_diagram):
        vector = noisy_diagram.reception_vector(Point(0.2, 0.1))
        assert vector[0] is True
        assert sum(vector) == 1

    def test_rasterize_shapes_and_labels(self, noisy_diagram):
        raster = noisy_diagram.rasterize(Point(-5, -5), Point(8, 8), resolution=60)
        rows, columns = raster.resolution
        assert raster.labels.shape == (rows, columns)
        assert raster.sinr_values.shape == (5, rows, columns)
        assert set(raster.labels.flatten()).issubset(set(range(5)) | {NO_RECEPTION})
        assert 0.0 < raster.coverage_fraction() < 1.0
        assert raster.pixel_area() > 0.0

    def test_rasterize_validation(self, noisy_diagram):
        with pytest.raises(DiagramError):
            noisy_diagram.rasterize(Point(0, 0), Point(0, 5), resolution=50)
        with pytest.raises(DiagramError):
            noisy_diagram.rasterize(Point(0, 0), Point(5, 5), resolution=1)

    def test_raster_zone_area_close_to_analytic(self, two_station_network):
        diagram = SINRDiagram(two_station_network)
        raster = diagram.rasterize(Point(-16, -12), Point(8, 12), resolution=400)
        expected = math.pi * 32.0  # Apollonius disk of radius sqrt(32)
        assert raster.zone_area(0) == pytest.approx(expected, rel=5e-2)

    def test_raster_label_at(self, noisy_diagram):
        raster = noisy_diagram.rasterize(Point(-5, -5), Point(8, 8), resolution=80)
        assert raster.label_at(Point(0.0, 0.2)) == 0

    def test_raster_label_at_nearest_centre(self, noisy_diagram):
        """Points just above/below a pixel centre map to that centre.

        The old searchsorted-on-centres lookup returned the next pixel
        at-or-above the coordinate, so a point epsilon right of a centre
        mapped one column too far.
        """
        raster = noisy_diagram.rasterize(Point(-5, -5), Point(8, 8), resolution=80)
        dx = raster.xs[1] - raster.xs[0]
        dy = raster.ys[1] - raster.ys[0]
        for column in (0, 1, 37, len(raster.xs) - 1):
            for row in (0, 2, 41, len(raster.ys) - 1):
                centre = Point(raster.xs[column], raster.ys[row])
                expected = int(raster.labels[row, column])
                for nudge_x in (-0.4 * dx, 0.0, 0.4 * dx):
                    for nudge_y in (-0.4 * dy, 0.0, 0.4 * dy):
                        probe = Point(centre.x + nudge_x, centre.y + nudge_y)
                        assert raster.label_at(probe) == expected, (
                            column, row, nudge_x, nudge_y,
                        )

    def test_raster_label_at_outside_box_clamps_to_edge(self, noisy_diagram):
        raster = noisy_diagram.rasterize(Point(-5, -5), Point(8, 8), resolution=40)
        assert raster.label_at(Point(-50.0, -50.0)) == int(raster.labels[0, 0])
        assert raster.label_at(Point(50.0, 50.0)) == int(raster.labels[-1, -1])
        assert raster.label_at(Point(-50.0, 0.0)) == raster.label_at(
            Point(raster.xs[0], 0.0)
        )

    def test_raster_pixels_tile_the_box_exactly(self, noisy_diagram):
        """Cell-centre sampling: labels.size * pixel_area() == box area.

        Endpoint sampling (the old behaviour) over-counted the box area by
        ~(1 + 1/(cols-1)) * (1 + 1/(rows-1)) and biased every zone_area.
        """
        boxes = [
            (Point(-5.0, -5.0), Point(8.0, 8.0), 200),
            (Point(-5.0, -5.0), Point(8.0, 8.0), 2),
            (Point(-1.3, 0.7), Point(2.9, 1.1), 57),
            (Point(0.0, 0.0), Point(1.0, 10.0), 30),
        ]
        for lower_left, upper_right, resolution in boxes:
            raster = noisy_diagram.rasterize(
                lower_left, upper_right, resolution=resolution
            )
            box_area = (upper_right.x - lower_left.x) * (upper_right.y - lower_left.y)
            assert raster.labels.size * raster.pixel_area() == pytest.approx(
                box_area, rel=1e-12
            )
            # Centres are inset half a pixel from every box edge.
            dx, dy = raster.pitch
            assert raster.xs[0] == pytest.approx(lower_left.x + dx / 2, rel=1e-12)
            assert raster.xs[-1] == pytest.approx(upper_right.x - dx / 2, rel=1e-12)
            assert raster.ys[0] == pytest.approx(lower_left.y + dy / 2, rel=1e-12)
            assert raster.ys[-1] == pytest.approx(upper_right.y - dy / 2, rel=1e-12)

    def test_pixel_area_degenerate_raster(self):
        """A single-row/column raster must not silently zero zone areas."""
        xs = np.array([0.5])
        ys = np.array([0.5, 1.5, 2.5])
        labels = np.zeros((3, 1), dtype=np.intp)
        sinr = np.zeros((2, 3, 1))
        degenerate = RasterDiagram(xs=xs, ys=ys, labels=labels, sinr_values=sinr)
        with pytest.raises(DiagramError):
            degenerate.pixel_area()
        # With an explicit pitch the cell extent is known and the area is real.
        pitched = RasterDiagram(
            xs=xs, ys=ys, labels=labels, sinr_values=sinr, pitch=(1.0, 1.0)
        )
        assert pitched.pixel_area() == 1.0
        assert pitched.zone_area(0) == 3.0

    def test_default_bounding_box_contains_all_stations(self, noisy_diagram, noisy_network):
        lower_left, upper_right = noisy_diagram.default_bounding_box()
        for station in noisy_network.stations:
            assert lower_left.x <= station.x <= upper_right.x
            assert lower_left.y <= station.y <= upper_right.y

    def test_summary_structure(self, noisy_diagram):
        summary = noisy_diagram.summary(resolution=80)
        assert set(summary) == {"network", "zone_areas", "coverage_fraction", "fatness"}
        assert len(summary["zone_areas"]) == 5

    def test_beta_below_one_allows_overlapping_zones(self, sub_unit_beta_network):
        diagram = SINRDiagram(sub_unit_beta_network)
        rng = random.Random(5)
        overlapping = 0
        for _ in range(400):
            point = Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
            vector = diagram.reception_vector(point)
            if sum(vector) > 1:
                overlapping += 1
        assert overlapping > 0
