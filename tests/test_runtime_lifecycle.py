"""Lifecycle conformance battery over every :class:`repro.runtime.Component`.

One parametrized contract for the whole stack: every component starts at
most once, rejects restart after stop, stops idempotently, raises its
layer's ``*ClosedError`` when used after close, and drains cleanly as an
async context manager.  Below the battery: the :class:`Runtime`
composition root — declaration-order boot, reverse-order shutdown,
automatic stats wiring into an owned hub, and startup-failure rollback.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Point
from repro.control import Controller
from repro.exceptions import (
    ComponentError,
    ControlClosedError,
    ObservabilityClosedError,
    ServiceClosedError,
)
from repro.obs import MetricsHub
from repro.runtime import Component, Runtime
from repro.service import LocatorRouter, MicroBatcher, QueryService
from repro.service.raster import RasterService


def run(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _zeros_locate(points) -> np.ndarray:
    return np.zeros(len(np.asarray(points, dtype=float)), dtype=np.int64)


class CountingController(Controller):
    def __init__(self) -> None:
        super().__init__()
        self.seen = 0

    def observe(self, record) -> None:
        self.seen += 1


def _build(name: str, network):
    """One (component, use_op) pair per stack layer.

    ``use_op`` is the layer's natural request entry point; after ``stop``
    it must raise the component's ``closed_error``.
    """
    if name == "batcher":
        component = MicroBatcher(_zeros_locate, latency_budget=0.005)

        async def op(c):
            return await c.submit((1.0, 2.0))

    elif name == "query-service":
        component = QueryService(network, "voronoi", latency_budget=0.005)

        async def op(c):
            return await c.locate((1.0, 2.0))

    elif name == "raster-service":
        component = RasterService(network, max_bytes=1 << 20)

        async def op(c):
            return await c.rasterize(Point(0.0, 0.0), Point(2.0, 2.0), resolution=8)

    elif name == "router":
        component = LocatorRouter(network, ["voronoi"], latency_budget=0.005)

        async def op(c):
            return await c.locate("voronoi", (1.0, 2.0))

    elif name == "hub":
        component = MetricsHub(interval=0.02)

        async def op(c):
            return c.collect()

    elif name == "controller":
        component = CountingController()

        async def op(c):
            c.emit(None)  # _ensure_open runs before the record is touched

    else:  # pragma: no cover - parametrization mismatch
        raise AssertionError(name)
    return component, op


COMPONENTS = [
    "batcher",
    "query-service",
    "raster-service",
    "router",
    "hub",
    "controller",
]

CLOSED_ERRORS = {
    "batcher": ServiceClosedError,
    "query-service": ServiceClosedError,
    "raster-service": ServiceClosedError,
    "router": ServiceClosedError,
    "hub": ObservabilityClosedError,
    "controller": ControlClosedError,
}


@pytest.mark.parametrize("name", COMPONENTS)
class TestLifecycleConformance:
    def test_double_start_raises_the_layer_error(self, name, ten_station_network):
        async def main():
            component, _ = _build(name, ten_station_network)
            try:
                await component.start()
                assert component.running and not component.closed
                with pytest.raises(
                    component.lifecycle_error, match="already running"
                ):
                    await component.start()
            finally:
                await component.stop()

        run(main())

    def test_stop_is_idempotent_and_final(self, name, ten_station_network):
        async def main():
            component, _ = _build(name, ten_station_network)
            await component.start()
            await component.stop()
            assert component.closed and not component.running
            assert await component.stop() is None
            with pytest.raises(
                component.lifecycle_error, match="cannot be restarted"
            ):
                await component.start()

        run(main())

    def test_stop_from_new_still_seals_the_component(
        self, name, ten_station_network
    ):
        async def main():
            component, _ = _build(name, ten_station_network)
            await component.stop()  # never started; teardown must not blow up
            assert component.closed

        run(main())

    def test_use_after_close_raises_the_closed_error(
        self, name, ten_station_network
    ):
        async def main():
            component, op = _build(name, ten_station_network)
            await component.start()
            await component.stop()
            with pytest.raises(CLOSED_ERRORS[name]):
                await op(component)

        run(main())

    def test_async_with_starts_and_drains(self, name, ten_station_network):
        async def main():
            component, op = _build(name, ten_station_network)
            async with component:
                assert component.running
                if name != "controller":  # emit(None) is only valid closed
                    await op(component)
            assert component.closed

        run(main())


class Recorder(Component):
    """A trivial component journaling its transitions into a shared log."""

    def __init__(self, tag: str, log: list, fail_start: bool = False) -> None:
        self.tag = tag
        self.log = log
        self.fail_start = fail_start

    async def _do_start(self) -> None:
        if self.fail_start:
            raise ComponentError(f"{self.tag} refuses to start")
        self.log.append(("start", self.tag))

    async def _do_stop(self, drain: bool) -> None:
        self.log.append(("stop", self.tag, drain))


class Sampling(Recorder):
    def metrics_sample(self):
        return {"ticks": 1.0}


class TestRuntimeComposition:
    def test_boots_in_declaration_order_and_stops_in_reverse(self):
        async def main():
            log: list = []
            runtime = Runtime()
            runtime.add("a", Recorder("a", log))
            runtime.add("b", Recorder("b", log), after=("a",))
            runtime.add("c", Recorder("c", log), after=("b",))
            assert runtime.component_names() == ("a", "b", "c")
            assert runtime.dependencies("c") == ("b",)
            async with runtime:
                assert [entry[1] for entry in log] == ["a", "b", "c"]
            stops = [entry for entry in log if entry[0] == "stop"]
            assert [entry[1] for entry in stops] == ["c", "b", "a"]
            assert all(entry[2] for entry in stops)  # clean exit drains

        run(main())

    def test_owned_hub_is_created_and_wired_from_stats_sources(self):
        async def main():
            log: list = []
            runtime = Runtime(metrics_interval=5.0)
            runtime.add("sampler", Sampling("sampler", log))
            runtime.add("mute", Recorder("mute", log))
            assert runtime.metrics is None
            await runtime.start()
            try:
                hub = runtime.metrics
                assert isinstance(hub, MetricsHub) and hub.running
                assert "sampler" in hub.source_names()
                assert "mute" not in hub.source_names()
            finally:
                await runtime.stop()
            assert runtime.metrics.closed  # stopped before the components

        run(main())

    def test_no_sources_means_no_hub(self):
        async def main():
            runtime = Runtime()
            runtime.add("mute", Recorder("mute", []))
            async with runtime:
                assert runtime.metrics is None

        run(main())

    def test_startup_failure_rolls_back_started_components(self):
        async def main():
            log: list = []
            runtime = Runtime()
            runtime.add("first", Recorder("first", log))
            runtime.add("boom", Recorder("boom", log, fail_start=True))
            runtime.add("never", Recorder("never", log))
            with pytest.raises(ComponentError, match="refuses to start"):
                await runtime.start()
            # The failed boot aborted the already-started prefix...
            assert ("stop", "first", False) in log
            # ...and never reached the component after the failure.
            assert not any(entry[1] == "never" for entry in log)
            assert not runtime.running

        run(main())

    def test_declaration_errors(self):
        runtime = Runtime()
        runtime.add("a", Recorder("a", []))
        with pytest.raises(ComponentError, match="already declared"):
            runtime.add("a", Recorder("a2", []))
        with pytest.raises(ComponentError, match="undeclared"):
            runtime.add("b", Recorder("b", []), after=("ghost",))
        with pytest.raises(ComponentError, match="not a runtime Component"):
            runtime.add("c", object())  # type: ignore[arg-type]
        with pytest.raises(ComponentError, match="no component named"):
            runtime.component("ghost")

    def test_add_after_start_is_rejected(self):
        async def main():
            runtime = Runtime()
            runtime.add("a", Recorder("a", []))
            async with runtime:
                with pytest.raises(ComponentError, match="before the runtime"):
                    runtime.add("late", Recorder("late", []))

        run(main())
