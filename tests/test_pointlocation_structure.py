"""Tests for the boundary cover, the per-zone QDS and the combined DS (Theorem 3)."""

from __future__ import annotations

import math
import random

import pytest

from repro import Point, ReceptionZone, SINRDiagram, WirelessNetwork
from repro.exceptions import PointLocationError
from repro.geometry import Grid
from repro.pointlocation import (
    BruteForceLocator,
    PointLocationStructure,
    SturmSegmentTest,
    VoronoiCandidateLocator,
    ZoneGridIndex,
    ZoneLabel,
    measured_radius_bounds,
    ray_sweep_boundary_cells,
    reconstruct_boundary_cells,
)


@pytest.fixture(scope="module")
def small_network():
    return WirelessNetwork.uniform(
        [(0.0, 0.0), (5.0, 0.0), (0.0, 6.0)], noise=0.01, beta=2.5
    )


@pytest.fixture(scope="module")
def built_structure(small_network):
    return PointLocationStructure(small_network, epsilon=0.4)


class TestBoundaryCover:
    def test_brp_cells_cover_the_boundary(self, small_network):
        zone = ReceptionZone(network=small_network, index=0)
        bounds = measured_radius_bounds(small_network, 0)
        grid = Grid(origin=zone.station_location, spacing=0.1)
        cover = reconstruct_boundary_cells(
            grid=grid,
            segment_test=SturmSegmentTest(small_network.reception_polynomial(0)),
            inside=zone.contains,
            station=zone.station_location,
            delta_lower=bounds.delta_lower,
            Delta_upper=bounds.Delta_upper,
        )
        assert cover.method == "brp"
        assert cover.segment_tests > 0
        # Every boundary point sampled along rays must fall in a covered cell.
        for k in range(72):
            boundary_point = zone.boundary_point_along_ray(2 * math.pi * k / 72)
            assert grid.cell_index_of(boundary_point) in cover.boundary_cells

    def test_ray_sweep_cells_cover_the_boundary(self, small_network):
        zone = ReceptionZone(network=small_network, index=0)
        bounds = measured_radius_bounds(small_network, 0)
        grid = Grid(origin=zone.station_location, spacing=0.1)
        cover = ray_sweep_boundary_cells(
            grid=grid,
            boundary_distance=lambda angle: zone.boundary_distance_along_ray(angle),
            station=zone.station_location,
            Delta_upper=bounds.Delta_upper,
        )
        assert cover.method == "ray_sweep"
        assert cover.boundary_probes > 0
        covered_with_neighbours = set()
        for cell in cover.boundary_cells:
            covered_with_neighbours.update(grid.nine_cell(cell))
        for k in range(72):
            boundary_point = zone.boundary_point_along_ray(2 * math.pi * k / 72)
            assert grid.cell_index_of(boundary_point) in covered_with_neighbours

    def test_brp_and_ray_sweep_agree_on_the_boundary_band(self, small_network):
        zone = ReceptionZone(network=small_network, index=0)
        bounds = measured_radius_bounds(small_network, 0)
        grid = Grid(origin=zone.station_location, spacing=0.15)
        brp = reconstruct_boundary_cells(
            grid=grid,
            segment_test=SturmSegmentTest(small_network.reception_polynomial(0)),
            inside=zone.contains,
            station=zone.station_location,
            delta_lower=bounds.delta_lower,
            Delta_upper=bounds.Delta_upper,
        )
        sweep = ray_sweep_boundary_cells(
            grid=grid,
            boundary_distance=lambda angle: zone.boundary_distance_along_ray(angle),
            station=zone.station_location,
            Delta_upper=bounds.Delta_upper,
        )
        # The sweep may skip cells the boundary merely clips at a corner, but
        # it must never find a cell the BRP missed.
        assert sweep.boundary_cells <= brp.boundary_cells


class TestZoneGridIndex:
    def build_index(self, network, index=0, epsilon=0.4, cover_method="brp"):
        zone = ReceptionZone(network=network, index=index)
        bounds = measured_radius_bounds(network, index)
        return (
            zone,
            ZoneGridIndex(
                inside=zone.contains,
                station=zone.station_location,
                delta_lower=bounds.delta_lower,
                Delta_upper=bounds.Delta_upper,
                epsilon=epsilon,
                segment_test=SturmSegmentTest(network.reception_polynomial(index)),
                boundary_distance=lambda angle: zone.boundary_distance_along_ray(angle),
                cover_method=cover_method,
            ),
        )

    def test_epsilon_validation(self, small_network):
        zone = ReceptionZone(network=small_network, index=0)
        with pytest.raises(PointLocationError):
            ZoneGridIndex(
                inside=zone.contains,
                station=zone.station_location,
                delta_lower=1.0,
                Delta_upper=2.0,
                epsilon=1.5,
                segment_test=SturmSegmentTest(small_network.reception_polynomial(0)),
            )

    def test_classification_is_sound(self, small_network):
        zone, index = self.build_index(small_network)
        rng = random.Random(21)
        for _ in range(800):
            point = Point(rng.uniform(-4, 4), rng.uniform(-4, 4))
            label = index.classify(point)
            if label is ZoneLabel.INSIDE:
                assert zone.contains(point)
            elif label is ZoneLabel.OUTSIDE:
                assert not zone.contains(point)

    def test_uncertain_band_area_is_bounded(self, small_network):
        zone, index = self.build_index(small_network, epsilon=0.4)
        zone_area = zone.area_estimate(vertices=360)
        assert index.uncertain_area() <= 0.4 * zone_area
        assert index.uncertain_area() <= index.uncertain_area_bound() + 1e-9

    def test_station_cell_is_inside(self, small_network):
        zone, index = self.build_index(small_network)
        assert index.classify(zone.station_location) is ZoneLabel.INSIDE

    def test_far_away_points_are_outside(self, small_network):
        _, index = self.build_index(small_network)
        assert index.classify(Point(100.0, 100.0)) is ZoneLabel.OUTSIDE
        assert index.classify(Point(-100.0, 50.0)) is ZoneLabel.OUTSIDE

    def test_ray_sweep_cover_classification_is_sound(self, small_network):
        zone, index = self.build_index(small_network, cover_method="ray_sweep")
        rng = random.Random(33)
        for _ in range(500):
            point = Point(rng.uniform(-4, 4), rng.uniform(-4, 4))
            label = index.classify(point)
            if label is ZoneLabel.INSIDE:
                assert zone.contains(point)
            elif label is ZoneLabel.OUTSIDE:
                assert not zone.contains(point)

    def test_unknown_cover_method_rejected(self, small_network):
        zone = ReceptionZone(network=small_network, index=0)
        with pytest.raises(PointLocationError):
            ZoneGridIndex(
                inside=zone.contains,
                station=zone.station_location,
                delta_lower=1.0,
                Delta_upper=2.0,
                epsilon=0.5,
                segment_test=SturmSegmentTest(small_network.reception_polynomial(0)),
                cover_method="nonsense",
            )

    def test_smaller_epsilon_means_more_cells(self, small_network):
        _, coarse = self.build_index(small_network, epsilon=0.6)
        _, fine = self.build_index(small_network, epsilon=0.3)
        assert fine.suspect_cell_count > coarse.suspect_cell_count
        assert fine.report.gamma < coarse.report.gamma


class TestPointLocationStructure:
    def test_preconditions(self):
        low_beta = WirelessNetwork.uniform([(0, 0), (3, 0)], beta=1.0)
        with pytest.raises(PointLocationError):
            PointLocationStructure(low_beta)
        with pytest.raises(PointLocationError):
            PointLocationStructure(
                WirelessNetwork.uniform([(0, 0), (3, 0)], beta=2.0), epsilon=2.0
            )
        alpha_four = WirelessNetwork.uniform([(0, 0), (3, 0)], beta=2.0, alpha=4.0)
        with pytest.raises(PointLocationError):
            PointLocationStructure(alpha_four)

    def test_answers_are_one_sided_exact(self, small_network, built_structure):
        exact = BruteForceLocator(small_network)
        rng = random.Random(13)
        uncertain = 0
        for _ in range(1500):
            point = Point(rng.uniform(-6, 9), rng.uniform(-6, 9))
            answer = built_structure.locate_answer(point)
            truth = exact.locate(point)
            if answer.label is ZoneLabel.INSIDE:
                assert answer.is_certified_reception
                assert truth == answer.station
            elif answer.label is ZoneLabel.OUTSIDE:
                assert answer.is_certified_no_reception
                assert truth == -1
            else:
                uncertain += 1
            # The Locator-protocol surface resolves the band exactly.
            assert built_structure.locate(point) == truth
        # The uncertainty band is thin: only a small fraction of random
        # queries may fall into it.
        assert uncertain < 0.1 * 1500

    def test_reports_and_accessors(self, small_network, built_structure):
        report = built_structure.report
        assert report.station_count == len(small_network)
        assert report.total_suspect_cells == built_structure.size_estimate() > 0
        assert report.build_seconds > 0.0
        assert set(report.per_zone) == {0, 1, 2}
        assert built_structure.zone_index(0) is not None
        assert built_structure.radius_bounds(0) is not None

    def test_locate_many(self, built_structure):
        answers = built_structure.locate_many([Point(0, 0), Point(100, 100)])
        assert answers[0].label is ZoneLabel.INSIDE
        assert answers[1].label is ZoneLabel.OUTSIDE

    def test_degenerate_station_is_skipped(self):
        network = WirelessNetwork.uniform(
            [(0.0, 0.0), (0.0, 0.0), (6.0, 0.0)], noise=0.0, beta=2.0
        )
        structure = PointLocationStructure(network, epsilon=0.5)
        assert structure.zone_index(0) is None
        assert structure.zone_index(1) is None
        assert structure.zone_index(2) is not None
        # Queries near the shared location resolve to OUTSIDE (nothing heard).
        assert structure.locate_answer(Point(0.1, 0.1)).label is ZoneLabel.OUTSIDE
        assert structure.locate(Point(0.1, 0.1)) == -1
        # Exactly at the shared location the first co-located station is
        # heard; the Locator surface agrees with brute force there too.
        assert structure.locate_batch([Point(0.0, 0.0)])[0] == 0

    def test_sampling_segment_test_variant(self, small_network):
        structure = PointLocationStructure(
            small_network, epsilon=0.5, segment_test_kind="sampling"
        )
        exact = VoronoiCandidateLocator(small_network)
        rng = random.Random(2)
        for _ in range(400):
            point = Point(rng.uniform(-5, 8), rng.uniform(-5, 8))
            answer = structure.locate_answer(point)
            if answer.label is ZoneLabel.INSIDE:
                assert exact.locate(point) == answer.station
            elif answer.label is ZoneLabel.OUTSIDE:
                assert exact.locate(point) == -1

    def test_unknown_variants_rejected(self, small_network):
        with pytest.raises(PointLocationError):
            PointLocationStructure(small_network, segment_test_kind="bogus")
        with pytest.raises(PointLocationError):
            PointLocationStructure(small_network, cover_method="bogus")


class TestNaiveLocators:
    def test_brute_force_and_voronoi_agree(self, small_network):
        brute = BruteForceLocator(small_network)
        voronoi = VoronoiCandidateLocator(small_network)
        rng = random.Random(77)
        for _ in range(500):
            point = Point(rng.uniform(-6, 9), rng.uniform(-6, 9))
            assert brute.locate(point) == voronoi.locate(point)

    def test_query_costs(self, small_network):
        assert BruteForceLocator(small_network).query_cost() == 9
        assert VoronoiCandidateLocator(small_network).query_cost() == 3
