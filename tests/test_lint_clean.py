"""Tier-1 gate: reprolint runs clean over ``src/repro``.

This is the enforcement half of the linter: the rules in
:mod:`repro.lint.rules` encode real project contracts (lock discipline,
chunk-budgeted kernel entry, float32 containment, ...), and this test pins
the tree at zero live findings so a violation fails the ordinary test
suite — no extra CI leg required for the contract to hold.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import load_baseline, run_lint
from repro.lint.cli import DEFAULT_BASELINE

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _report():
    baseline = load_baseline(DEFAULT_BASELINE) if DEFAULT_BASELINE.exists() else []
    return run_lint([SRC], baseline=baseline), baseline


def test_src_tree_has_zero_live_findings():
    report, _ = _report()
    details = "\n".join(finding.render() for finding in report.findings)
    assert report.clean, f"reprolint findings in src/repro:\n{details}"
    # Sanity: the run actually covered the tree (not an empty glob).
    assert report.checked_files > 50


def test_no_stale_baseline_entries():
    """Every baseline entry still matches a real finding.

    A baseline entry whose code was since fixed (or rewritten) is dead
    weight that could silently mask a *new* finding on a similar line, so
    staleness is itself an error.
    """
    report, baseline = _report()
    for entry in baseline:
        assert any(entry.matches(finding) for finding in report.baselined), (
            f"stale baseline entry: {entry.rule} at {entry.path} "
            f"({entry.line_text!r}) no longer matches any finding — remove it"
        )


def test_every_baseline_entry_is_justified():
    _, baseline = _report()
    for entry in baseline:
        assert len(entry.justification.split()) >= 8, (
            f"baseline entry {entry.rule} at {entry.path} needs a written "
            f"justification, not a token"
        )
