"""Tests for radius bounds and the segment tests of the point-location layer."""

from __future__ import annotations

import math
import random

import pytest

from repro import Point, ReceptionZone, WirelessNetwork
from repro.exceptions import PointLocationError
from repro.geometry import Segment
from repro.pointlocation import (
    SamplingSegmentTest,
    SturmSegmentTest,
    explicit_radius_bounds,
    improved_radius_bounds,
    measured_radius_bounds,
    radius_bounds,
    RadiusBounds,
)


class TestRadiusBoundsValidation:
    def test_bounds_must_be_positive_and_ordered(self):
        with pytest.raises(PointLocationError):
            RadiusBounds(delta_lower=0.0, Delta_upper=1.0)
        with pytest.raises(PointLocationError):
            RadiusBounds(delta_lower=2.0, Delta_upper=1.0)
        assert RadiusBounds(1.0, 2.0).ratio == pytest.approx(2.0)

    def test_requires_uniform_power(self):
        from repro.model.station import Station

        network = WirelessNetwork(
            stations=(Station.at(0, 0, power=1.0), Station.at(3, 0, power=2.0)),
            beta=2.0,
        )
        with pytest.raises(PointLocationError):
            explicit_radius_bounds(network, 0)

    def test_requires_beta_above_one(self):
        network = WirelessNetwork.uniform([(0, 0), (3, 0)], beta=1.0)
        with pytest.raises(PointLocationError):
            explicit_radius_bounds(network, 0)

    def test_requires_non_degenerate_zone(self):
        network = WirelessNetwork.uniform([(0, 0), (0, 0), (3, 0)], beta=2.0)
        with pytest.raises(PointLocationError):
            explicit_radius_bounds(network, 0)

    def test_unknown_method_rejected(self, noisy_network):
        with pytest.raises(PointLocationError):
            radius_bounds(noisy_network, 0, method="magic")


class TestBoundCorrectness:
    def test_theorem_4_1_formulas(self):
        network = WirelessNetwork.uniform([(0, 0), (4, 0), (40, 0)], noise=0.0, beta=2.0)
        bounds = explicit_radius_bounds(network, 0)
        n, beta, kappa = 3, 2.0, 4.0
        assert bounds.delta_lower == pytest.approx(kappa / (math.sqrt(beta * (n - 1)) + 1))
        assert bounds.Delta_upper == pytest.approx(kappa / (math.sqrt(beta) - 1))

    def test_two_station_bounds_are_tight(self):
        network = WirelessNetwork.uniform([(0, 0), (4, 0)], noise=0.0, beta=2.0)
        bounds = explicit_radius_bounds(network, 0)
        zone = ReceptionZone(network=network, index=0)
        measurement = zone.fatness(angles=180)
        assert bounds.delta_lower == pytest.approx(measurement.delta, rel=1e-3)
        assert bounds.Delta_upper == pytest.approx(measurement.Delta, rel=1e-3)

    @pytest.mark.parametrize("method", ["explicit", "improved", "measured"])
    def test_all_methods_sandwich_the_true_radii(self, noisy_network, method):
        for index in range(len(noisy_network)):
            bounds = radius_bounds(noisy_network, index, method=method)
            zone = ReceptionZone(network=noisy_network, index=index)
            measurement = zone.fatness(angles=180)
            assert bounds.delta_lower <= measurement.delta * (1 + 1e-6)
            assert bounds.Delta_upper >= measurement.Delta * (1 - 1e-6)

    def test_measured_bounds_are_tighter_than_explicit(self, noisy_network):
        explicit = explicit_radius_bounds(noisy_network, 0)
        measured = measured_radius_bounds(noisy_network, 0)
        assert measured.ratio <= explicit.ratio + 1e-9

    def test_improved_bounds_ratio_is_constant_in_n(self):
        # The improved ratio must not grow with the number of stations.
        ratios = []
        for station_count in (3, 6, 12):
            points = [(0.0, 0.0)] + [
                (4.0 + 2.0 * k, 0.0) for k in range(station_count - 1)
            ]
            network = WirelessNetwork.uniform(points, noise=0.0, beta=2.0)
            ratios.append(improved_radius_bounds(network, 0).ratio)
        bound = (math.sqrt(2.0) + 1) / (math.sqrt(2.0) - 1)
        assert all(ratio <= bound ** 2 + 1e-6 for ratio in ratios)

    def test_measured_bounds_ray_validation(self, noisy_network):
        with pytest.raises(PointLocationError):
            measured_radius_bounds(noisy_network, 0, rays=4)


class TestSegmentTests:
    def make_polynomial(self):
        network = WirelessNetwork.uniform(
            [(0, 0), (5, 0), (0, 6)], noise=0.01, beta=2.5
        )
        return network, network.reception_polynomial(0)

    def test_sturm_test_detects_crossing(self):
        network, polynomial = self.make_polynomial()
        test = SturmSegmentTest(polynomial)
        zone = ReceptionZone(network=network, index=0)
        boundary_distance = zone.boundary_distance_along_ray(0.0)
        crossing_segment = Segment(
            Point(boundary_distance - 0.2, 0.0), Point(boundary_distance + 0.2, 0.0)
        )
        result = test.test(crossing_segment)
        assert result.crosses
        assert result.start_inside and not result.end_inside
        assert test.invocations == 1

    def test_sturm_test_rejects_far_segment(self):
        _, polynomial = self.make_polynomial()
        test = SturmSegmentTest(polynomial)
        result = test.test(Segment(Point(50, 50), Point(51, 50)))
        assert not result.crosses
        assert result.crossings == 0

    def test_sturm_test_counts_double_crossing(self):
        _, polynomial = self.make_polynomial()
        test = SturmSegmentTest(polynomial)
        # A long chord through the zone enters and leaves: two crossings.
        result = test.test(Segment(Point(-10.0, 0.3), Point(3.0, 0.3)))
        assert result.crossings == 2
        assert not result.start_inside and not result.end_inside

    def test_sampling_test_agrees_on_clear_cases(self):
        network, polynomial = self.make_polynomial()
        zone = ReceptionZone(network=network, index=0)
        sturm = SturmSegmentTest(polynomial)
        sampling = SamplingSegmentTest(zone.contains, samples=64)
        rng = random.Random(6)
        agreements = 0
        for _ in range(60):
            start = Point(rng.uniform(-4, 4), rng.uniform(-4, 4))
            end = Point(rng.uniform(-4, 4), rng.uniform(-4, 4))
            segment = Segment(start, end)
            if sturm.test(segment).crosses == sampling.test(segment).crosses:
                agreements += 1
        assert agreements >= 57  # the sampling test may miss rare tangential cases

    def test_sampling_test_validation(self):
        zone_predicate = lambda p: True  # noqa: E731 - trivial test predicate
        with pytest.raises(PointLocationError):
            SamplingSegmentTest(zone_predicate, samples=1)
