"""End-to-end integration tests spanning multiple subsystems."""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import Point, SINRDiagram, WirelessNetwork
from repro.analysis import verify_network_convexity, verify_network_fatness
from repro.diagrams import to_ascii, trace_zone_boundary
from repro.graphs import ModelComparator, QuasiUnitDiskGraph
from repro.pointlocation import (
    PointLocationStructure,
    VoronoiCandidateLocator,
    ZoneLabel,
)
from repro.workloads import scenario, uniform_random_network

EXAMPLES_DIRECTORY = Path(__file__).resolve().parent.parent / "examples"


class TestEndToEndPipeline:
    """Build a network, verify theorems, compare models and locate points."""

    def test_full_pipeline_on_a_random_deployment(self):
        network = uniform_random_network(
            6, side=14.0, minimum_separation=2.5, noise=0.005, beta=2.5, seed=31
        )
        diagram = SINRDiagram(network)

        # 1. Structural results hold on every zone.
        convexity = verify_network_convexity(network, sample_points=30, max_pairs=120)
        assert all(result.is_convex for result in convexity)
        fatness = verify_network_fatness(network, angles=72)
        assert all(result.satisfies_bound for result in fatness)

        # 2. The SINR diagram and the point-location structure agree.
        structure = PointLocationStructure(network, epsilon=0.45)
        exact = VoronoiCandidateLocator(network)
        rng = random.Random(41)
        disagreements = 0
        uncertain = 0
        for _ in range(600):
            point = Point(rng.uniform(-3, 17), rng.uniform(-3, 17))
            answer = structure.locate_answer(point)
            truth = exact.locate(point)
            if answer.label is ZoneLabel.UNCERTAIN:
                uncertain += 1
            elif answer.label is ZoneLabel.INSIDE and truth != answer.station:
                disagreements += 1
            elif answer.label is ZoneLabel.OUTSIDE and truth >= 0:
                disagreements += 1
            # The unified Locator surface is exact even in the uncertain band.
            assert structure.locate(point) == truth
        assert disagreements == 0
        assert uncertain < 60

        # 3. The graph-based baseline disagrees with the SINR model somewhere.
        comparator = ModelComparator(network, udg_radius=4.0)
        summary = comparator.summarize_grid(
            Point(0, 0), Point(14, 14), sender=0, resolution=30
        )
        assert summary.total == 900
        assert 0.0 <= summary.disagreement_fraction < 1.0

        # 4. Diagram rendering works end to end.
        raster = diagram.rasterize(*diagram.default_bounding_box(), resolution=80)
        art = to_ascii(raster, station_locations=network.locations())
        assert len(art.splitlines()) > 20

    def test_scenario_catalogue_round_trip(self):
        network = scenario("grid").network()
        diagram = SINRDiagram(network)
        zone = diagram.zone(4)  # the centre station of the 3x3 grid
        boundary = trace_zone_boundary(zone, vertices=48)
        assert len(boundary) == 49
        qudg = QuasiUnitDiskGraph.from_sinr_network(network, angles=48)
        assert qudg.inner_radius <= qudg.outer_radius

    def test_moving_and_silencing_stations_changes_reception(self):
        """The Figure 1 dynamic replayed on the library's immutable networks."""
        base = WirelessNetwork.uniform(
            [(-3.1, 1.7), (0.9, 1.3), (-3.2, 3.5)], noise=0.02, beta=1.5
        )
        receiver = Point(1.0, -1.0)
        assert SINRDiagram(base).station_heard_at(receiver) == 1

        moved = base.with_station_moved(0, Point(2.2, -2.2))
        assert SINRDiagram(moved).station_heard_at(receiver) is None

        silenced = moved.without_station(2)
        assert SINRDiagram(silenced).station_heard_at(receiver) == 0


class TestExamplesRun:
    """The shipped examples must execute successfully as scripts."""

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "udg_vs_sinr.py", "fatness_study.py"],
    )
    def test_example_script_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIRECTORY / script)],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()
