"""Regression tests for boolean knobs and benchmark persistence.

Two historical bugs are pinned here:

* ``quick_mode()`` read the quick flag as ``bool(read_knob(...))`` — any
  non-empty value, including ``REPRO_BENCH_QUICK=0`` and ``=false``,
  *enabled* quick mode.  The fix routes every flag knob through
  :func:`repro.env.read_bool_knob` with explicit false tokens.
* ``record_benchmark()`` did an unlocked read-modify-write of
  ``BENCH_engine.json`` — two concurrent recorders (pytest-xdist, parallel
  CI legs) could each read the same base state and the later ``os.replace``
  silently dropped the earlier writer's section.  The fix serialises the
  cycle under an advisory file lock; the threaded test here loses sections
  on the pre-fix code.
"""

from __future__ import annotations

import json
import os
import sys
import threading

import pytest

from repro.env import (
    BENCH_QUICK,
    METRICS_INTERVAL,
    read_bool_knob,
    read_float_knob,
)

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "benchmarks")
)

import persist  # noqa: E402  (needs the benchmarks/ dir on sys.path first)


# ----------------------------------------------------------------------
# Boolean / float knob parsing
# ----------------------------------------------------------------------
class TestReadBoolKnob:
    @pytest.mark.parametrize(
        "raw", ["", "0", "false", "False", "FALSE", "no", "No", "off", "OFF",
                " 0 ", "  false  "]
    )
    def test_false_tokens(self, monkeypatch, raw):
        monkeypatch.setenv(BENCH_QUICK, raw)
        assert read_bool_knob(BENCH_QUICK) is False

    @pytest.mark.parametrize("raw", ["1", "true", "True", "yes", "on", "2", "quick"])
    def test_true_tokens(self, monkeypatch, raw):
        monkeypatch.setenv(BENCH_QUICK, raw)
        assert read_bool_knob(BENCH_QUICK) is True

    def test_unset_is_false(self, monkeypatch):
        monkeypatch.delenv(BENCH_QUICK, raising=False)
        assert read_bool_knob(BENCH_QUICK) is False


class TestReadFloatKnob:
    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv(METRICS_INTERVAL, "0.5")
        assert read_float_knob(METRICS_INTERVAL, 0.25) == 0.5

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(METRICS_INTERVAL, raising=False)
        assert read_float_knob(METRICS_INTERVAL, 0.25) == 0.25

    @pytest.mark.parametrize("raw", ["junk", "0", "-1.5", "nan"])
    def test_invalid_or_nonpositive_warns_and_defaults(self, monkeypatch, raw):
        monkeypatch.setenv(METRICS_INTERVAL, raw)
        with pytest.warns(UserWarning, match=METRICS_INTERVAL):
            assert read_float_knob(METRICS_INTERVAL, 0.25) == 0.25


# ----------------------------------------------------------------------
# quick_mode() regression
# ----------------------------------------------------------------------
class TestQuickMode:
    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", ""])
    def test_explicitly_disabled_means_full_run(self, monkeypatch, raw):
        """REPRO_BENCH_QUICK=0 must mean FULL mode (pre-fix: quick)."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", raw)
        assert persist.quick_mode() is False

    def test_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert persist.quick_mode() is True

    def test_unset_means_full_run(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_QUICK", raising=False)
        assert persist.quick_mode() is False

    def test_record_benchmark_group_follows_quick_mode(self, monkeypatch, tmp_path):
        path = str(tmp_path / "bench.json")
        monkeypatch.setenv("REPRO_BENCH_QUICK", "0")
        persist.record_benchmark("s", {"v": 1}, path=path)
        data = json.loads(open(path).read())
        assert "full" in data and "quick" not in data


# ----------------------------------------------------------------------
# record_benchmark(): merging, SHA resets, concurrency
# ----------------------------------------------------------------------
class TestRecordBenchmark:
    def test_sections_merge_within_a_group(self, tmp_path):
        path = str(tmp_path / "bench.json")
        persist.record_benchmark("alpha", {"v": 1}, path=path, quick=False)
        persist.record_benchmark("beta", {"v": 2}, path=path, quick=False)
        data = json.loads(open(path).read())
        assert data["schema"] == 2
        assert set(data["full"]["results"]) == {"alpha", "beta"}

    def test_groups_are_independent(self, tmp_path):
        path = str(tmp_path / "bench.json")
        persist.record_benchmark("alpha", {"v": 1}, path=path, quick=False)
        persist.record_benchmark("alpha", {"v": 2}, path=path, quick=True)
        data = json.loads(open(path).read())
        assert data["full"]["results"]["alpha"] == {"v": 1}
        assert data["quick"]["results"]["alpha"] == {"v": 2}

    def test_new_sha_resets_only_its_group(self, tmp_path, monkeypatch):
        path = str(tmp_path / "bench.json")
        persist.record_benchmark("alpha", {"v": 1}, path=path, quick=False)
        persist.record_benchmark("alpha", {"v": 2}, path=path, quick=True)
        # Simulate a run at a different commit.
        monkeypatch.setattr(persist, "current_git_sha", lambda: "deadbeef")
        persist.record_benchmark("beta", {"v": 3}, path=path, quick=True)
        data = json.loads(open(path).read())
        assert data["quick"]["git_sha"] == "deadbeef"
        assert set(data["quick"]["results"]) == {"beta"}  # quick group reset
        assert set(data["full"]["results"]) == {"alpha"}  # full group kept

    def test_concurrent_recorders_lose_no_sections(self, tmp_path):
        """Threaded writers racing one file: every section must survive.

        On the pre-fix (unlocked) code several threads read the same base
        JSON, each merged only its own section, and the last os.replace
        won — silently discarding the others.
        """
        path = str(tmp_path / "bench.json")
        threads, errors = [], []
        writers = 8
        sections_per_writer = 5
        barrier = threading.Barrier(writers)

        def record(writer: int) -> None:
            try:
                barrier.wait(timeout=30)
                for index in range(sections_per_writer):
                    persist.record_benchmark(
                        f"writer{writer}_section{index}",
                        {"writer": writer, "index": index},
                        path=path,
                        quick=False,
                    )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        for writer in range(writers):
            thread = threading.Thread(target=record, args=(writer,))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        data = json.loads(open(path).read())
        recorded = set(data["full"]["results"])
        expected = {
            f"writer{w}_section{i}"
            for w in range(writers)
            for i in range(sections_per_writer)
        }
        assert recorded == expected, (
            f"lost {sorted(expected - recorded)} to the read-modify-write race"
        )
