"""Tests for the batched query engine (`repro.engine`).

Three families:

* backend equivalence — the numpy and pure-Python reference backends agree
  on randomized networks within 1e-9;
* batch-vs-scalar agreement — every locator's ``locate_batch`` and every
  batch query function reproduces the scalar code path pointwise;
* edge cases — empty and single-point batches, coincident points, and the
  zero-distance / overflow regression of the scalar-kernel contract.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Point, SINRDiagram, Station, WirelessNetwork
from repro.engine import (
    active_backend,
    as_points_array,
    energy_batch,
    get_backend,
    heard_station_batch,
    kernels,
    locate_batch,
    received_mask,
    sinr_batch,
    strongest_station_batch,
    use_backend,
)
from repro.exceptions import ReproError
from repro.model.sinr import received_energy, sinr_ratio
from repro.pointlocation import (
    BruteForceLocator,
    PointLocationStructure,
    VoronoiCandidateLocator,
)
from repro.workloads import random_query_array, uniform_random_network


def random_network(seed: int, noise: float = 0.005, beta: float = 3.0):
    return uniform_random_network(
        6, side=14.0, minimum_separation=2.0, noise=noise, beta=beta, seed=seed
    )


def queries_for(network, count: int = 200, seed: int = 1) -> np.ndarray:
    return random_query_array(
        count, Point(-3.0, -3.0), Point(17.0, 17.0), seed=seed
    )


# ----------------------------------------------------------------------
# Points coercion
# ----------------------------------------------------------------------
class TestAsPointsArray:
    def test_accepts_array_points_and_tuples(self):
        array = np.array([[0.0, 1.0], [2.0, 3.0]])
        assert as_points_array(array) is not None
        from_points = as_points_array([Point(0.0, 1.0), Point(2.0, 3.0)])
        from_tuples = as_points_array([(0.0, 1.0), (2.0, 3.0)])
        np.testing.assert_array_equal(from_points, array)
        np.testing.assert_array_equal(from_tuples, array)

    def test_single_point_and_pair(self):
        assert as_points_array(Point(1.0, 2.0)).shape == (1, 2)
        assert as_points_array((1.0, 2.0)).shape == (1, 2)
        assert as_points_array(np.array([1.0, 2.0])).shape == (1, 2)

    def test_empty_batch(self):
        assert as_points_array([]).shape == (0, 2)
        assert as_points_array(np.empty((0, 2))).shape == (0, 2)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            as_points_array(np.zeros((3, 3)))


# ----------------------------------------------------------------------
# Backend registry / selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_default_is_numpy(self):
        assert active_backend().name == "numpy"

    def test_use_backend_context_restores(self):
        with use_backend("reference") as backend:
            assert backend.name == "reference"
            assert active_backend().name == "reference"
        assert active_backend().name == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError):
            get_backend("gpu-of-the-future")

    def test_per_call_backend_override(self):
        network = random_network(seed=2)
        points = queries_for(network, count=16)
        default = sinr_batch(network, points)
        explicit = sinr_batch(network, points, backend="numpy")
        np.testing.assert_array_equal(default, explicit)


# ----------------------------------------------------------------------
# Backend equivalence (numpy vs pure-Python reference)
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sinr_matrix_agrees(self, seed):
        network = random_network(seed=seed, noise=0.01 * seed, beta=2.0 + seed)
        points = queries_for(network, count=120, seed=seed + 10)
        numpy_result = sinr_batch(network, points, backend="numpy")
        reference_result = sinr_batch(network, points, backend="reference")
        np.testing.assert_allclose(numpy_result, reference_result, rtol=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_masks_and_argmax_agree(self, seed):
        network = random_network(seed=seed)
        points = queries_for(network, count=120, seed=seed + 20)
        for index in range(len(network)):
            np.testing.assert_array_equal(
                received_mask(network, index, points, backend="numpy"),
                received_mask(network, index, points, backend="reference"),
            )
        np.testing.assert_array_equal(
            strongest_station_batch(network, points, backend="numpy"),
            strongest_station_batch(network, points, backend="reference"),
        )
        np.testing.assert_array_equal(
            heard_station_batch(network, points, backend="numpy"),
            heard_station_batch(network, points, backend="reference"),
        )

    def test_equivalence_includes_station_locations(self):
        network = random_network(seed=5)
        points = np.vstack([network.coords, queries_for(network, count=20)])
        np.testing.assert_allclose(
            sinr_batch(network, points, backend="numpy"),
            sinr_batch(network, points, backend="reference"),
            rtol=1e-9,
        )
        np.testing.assert_array_equal(
            heard_station_batch(network, points, backend="numpy"),
            heard_station_batch(network, points, backend="reference"),
        )


# ----------------------------------------------------------------------
# Batch vs scalar agreement
# ----------------------------------------------------------------------
class TestBatchMatchesScalar:
    def test_sinr_batch_matches_scalar_sinr(self):
        network = random_network(seed=3)
        points = queries_for(network, count=150)
        matrix = sinr_batch(network, points)
        for index in range(len(network)):
            scalar = [network.sinr(index, Point(x, y)) for x, y in points]
            np.testing.assert_allclose(matrix[index], scalar, rtol=1e-12)

    def test_received_mask_matches_is_received(self):
        network = random_network(seed=4)
        points = np.vstack([network.coords, queries_for(network, count=150)])
        for index in range(len(network)):
            mask = received_mask(network, index, points)
            scalar = [network.is_received(index, Point(x, y)) for x, y in points]
            np.testing.assert_array_equal(mask, scalar)

    def test_heard_station_batch_matches_diagram(self):
        network = random_network(seed=6)
        diagram = SINRDiagram(network)
        points = queries_for(network, count=150)
        labels = heard_station_batch(network, points)
        for (x, y), label in zip(points, labels):
            scalar = diagram.station_heard_at(Point(x, y))
            assert (scalar if scalar is not None else -1) == label

    def test_heard_station_batch_matches_diagram_beta_below_one(self):
        network = random_network(seed=7, beta=0.3, noise=0.05)
        diagram = SINRDiagram(network)
        points = queries_for(network, count=150)
        labels = heard_station_batch(network, points)
        for (x, y), label in zip(points, labels):
            scalar = diagram.station_heard_at(Point(x, y))
            assert (scalar if scalar is not None else -1) == label

    def test_strongest_station_matches_scalar(self):
        network = random_network(seed=8)
        points = queries_for(network, count=150)
        batch = strongest_station_batch(network, points)
        for (x, y), index in zip(points, batch):
            assert network.strongest_station(Point(x, y)) == index

    def test_interference_matrix_matches_scalar(self):
        network = random_network(seed=18)
        points = np.vstack([network.coords, queries_for(network, count=100)])
        matrix = kernels.interference_matrix(
            network.coords, network.powers_array(), points, network.alpha
        )
        for index in range(len(network)):
            scalar = [network.interference(index, Point(x, y)) for x, y in points]
            np.testing.assert_allclose(matrix[index], scalar, rtol=1e-9)


class TestLocatorBatches:
    @pytest.mark.parametrize("beta", [3.0, 0.5])
    def test_brute_force_locate_batch(self, beta):
        network = random_network(seed=9, beta=beta, noise=0.01)
        locator = BruteForceLocator(network)
        points = queries_for(network, count=200)
        labels = locator.locate_batch(points)
        for (x, y), label in zip(points, labels):
            scalar = locator.locate(Point(x, y))
            assert (scalar if scalar is not None else -1) == label

    def test_voronoi_candidate_locate_batch(self):
        network = random_network(seed=10)
        locator = VoronoiCandidateLocator(network)
        points = queries_for(network, count=200)
        labels = locator.locate_batch(points)
        for (x, y), label in zip(points, labels):
            scalar = locator.locate(Point(x, y))
            assert (scalar if scalar is not None else -1) == label

    def test_structure_locate_batch(self):
        network = random_network(seed=11)
        structure = PointLocationStructure(network, epsilon=0.4)
        points = queries_for(network, count=200)
        answers = structure.locate_batch(points)
        for (x, y), answer in zip(points, answers):
            scalar = structure.locate(Point(x, y))
            assert scalar.station == answer.station
            assert scalar.label == answer.label

    def test_generic_locate_batch_dispatch(self):
        network = random_network(seed=12)
        locator = VoronoiCandidateLocator(network)
        points = queries_for(network, count=50)
        np.testing.assert_array_equal(
            locate_batch(locator, points), locator.locate_batch(points)
        )

    def test_generic_locate_batch_fallback_loops_scalar(self):
        network = random_network(seed=13)

        class ScalarOnly:
            def locate(self, point):
                return network.heard_station(point)

        points = queries_for(network, count=30)
        fallback = locate_batch(ScalarOnly(), points)
        assert fallback == [
            network.heard_station(Point(x, y)) for x, y in points
        ]

    def test_empty_and_single_point_batches(self):
        network = random_network(seed=14)
        structure = PointLocationStructure(network, epsilon=0.4)
        voronoi = VoronoiCandidateLocator(network)
        brute = BruteForceLocator(network)

        assert structure.locate_batch([]) == []
        assert voronoi.locate_batch([]).shape == (0,)
        assert brute.locate_batch(np.empty((0, 2))).shape == (0,)
        assert sinr_batch(network, []).shape == (len(network), 0)

        single = structure.locate_batch(Point(1.0, 1.0))
        assert len(single) == 1
        assert single[0].label == structure.locate(Point(1.0, 1.0)).label
        assert voronoi.locate_batch(Point(1.0, 1.0)).shape == (1,)


# ----------------------------------------------------------------------
# Zero-distance / overflow regression (satellite of the engine PR)
# ----------------------------------------------------------------------
class TestCoincidentAndOverflowEdges:
    def network(self):
        return WirelessNetwork.uniform(
            [(0.0, 0.0), (4.0, 0.0), (1.0, 5.0)], noise=0.01, beta=2.0
        )

    def test_scalar_energy_is_inf_at_station_and_under_overflow(self):
        station = Point(0.0, 0.0)
        assert received_energy(station, 1.0, Point(0.0, 0.0)) == math.inf
        # 1e-200 ** -2 overflows the float range: saturates to inf.
        assert received_energy(station, 1.0, Point(1e-200, 0.0)) == math.inf

    def test_kernel_energy_agrees_with_scalar_at_edges(self):
        network = self.network()
        points = np.array([[0.0, 0.0], [1e-200, 0.0], [1e-160, 0.0], [0.5, 0.5]])
        matrix = energy_batch(network, points)
        for i in range(len(network)):
            for j, (x, y) in enumerate(points):
                scalar = network.energy(i, Point(x, y))
                if math.isinf(scalar):
                    # The edge contract: exact agreement on the inf cases.
                    assert matrix[i, j] == scalar
                else:
                    # Ordinary points: hypot-then-power vs squared-power may
                    # differ in the last ulp.
                    assert matrix[i, j] == pytest.approx(scalar, rel=1e-12)

    def test_scalar_sinr_ratio_no_nan_at_overflow_points(self):
        network = self.network()
        # Not a station location (so no exception), but overflow-close to s0.
        point = Point(1e-160, 0.0)
        ratio = sinr_ratio(
            network.locations(), network.powers(), 0, point, network.noise
        )
        assert ratio == math.inf
        drowned = sinr_ratio(
            network.locations(), network.powers(), 1, point, network.noise
        )
        assert drowned == 0.0

    def test_no_nan_leakage_through_batch_sinr(self):
        network = self.network()
        points = np.array(
            [[0.0, 0.0], [4.0, 0.0], [1e-200, 0.0], [1e-160, 0.0], [2.0, 1.0]]
        )
        for backend in ("numpy", "reference"):
            matrix = sinr_batch(network, points, backend=backend)
            assert not np.isnan(matrix).any()
        # The co-located station owns its point: inf for it, 0 for the rest.
        matrix = sinr_batch(network, points)
        assert matrix[0, 0] == math.inf and matrix[1, 0] == 0.0
        assert matrix[1, 1] == math.inf and matrix[0, 1] == 0.0

    def test_shared_location_heard_by_first_station_only(self):
        network = WirelessNetwork(
            stations=(
                Station.at(0.0, 0.0),
                Station.at(0.0, 0.0),
                Station.at(5.0, 0.0),
            ),
            noise=0.0,
            beta=2.0,
        )
        points = np.array([[0.0, 0.0]])
        for index in range(3):
            mask = received_mask(network, index, points)
            assert mask[0] == network.is_received(index, Point(0.0, 0.0))
        assert heard_station_batch(network, points)[0] == 0
        # The scalar diagram query uses the same first-co-located convention.
        assert SINRDiagram(network).station_heard_at(Point(0.0, 0.0)) == 0


# ----------------------------------------------------------------------
# Cached network arrays
# ----------------------------------------------------------------------
class TestCachedNetworkArrays:
    def test_coords_and_powers_are_cached_and_read_only(self):
        network = random_network(seed=15)
        assert network.coords is network.coords
        assert network.coordinates_array() is network.coords
        assert network.powers_array() is network.powers_array()
        with pytest.raises(ValueError):
            network.coords[0, 0] = 99.0
        with pytest.raises(ValueError):
            network.powers_array()[0] = 99.0

    def test_mutated_networks_get_fresh_caches(self):
        network = random_network(seed=16)
        _ = network.coords
        moved = network.with_station_moved(0, Point(100.0, 100.0))
        assert moved.coords[0, 0] == 100.0
        assert network.coords[0, 0] != 100.0
        shrunk = network.without_station(0)
        assert shrunk.coords.shape == (len(network) - 1, 2)

    def test_coords_values_match_locations(self):
        network = random_network(seed=17)
        np.testing.assert_array_equal(
            network.coords,
            np.array([[p.x, p.y] for p in network.locations()]),
        )
