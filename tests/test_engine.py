"""Tests for the batched query engine (`repro.engine`).

Four families:

* backend equivalence — every registered backend (numpy, multiprocess, and
  numba when installed) agrees with the pure-Python reference backend on
  randomized networks within 1e-9, including the coincident-point and
  overflow-close columns;
* backend selection — the ContextVar-backed registry: nesting, exception
  safety, cross-thread isolation, and re-registration taking effect while a
  name is active;
* batch-vs-scalar agreement — every locator's ``locate_batch`` and every
  batch query function reproduces the scalar code path pointwise;
* edge cases — empty and single-point batches, coincident points, and the
  zero-distance / overflow regression of the scalar-kernel contract.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro import Point, SINRDiagram, Station, WirelessNetwork
from repro.engine import (
    DEFAULT_CHUNK_BYTES,
    GPU_AVAILABLE,
    NUMBA_AVAILABLE,
    GpuBackend,
    MultiprocessBackend,
    NumbaBackend,
    active_backend,
    as_points_array,
    available_backends,
    chunk_byte_budget,
    energy_batch,
    get_backend,
    heard_station_batch,
    kernels,
    locate_batch,
    points_per_chunk,
    received_at,
    received_mask,
    register_backend,
    sinr_batch,
    strongest_station_batch,
    use_backend,
)
from repro.engine import backend as backend_module
from repro.exceptions import ReproError
from repro.model.sinr import received_energy, sinr_ratio
from repro.pointlocation import (
    BruteForceLocator,
    PointLocationStructure,
    VoronoiCandidateLocator,
)
from seeded_workloads import query_box_array, seeded_network

needs_numba = pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
needs_gpu = pytest.mark.skipif(
    not GPU_AVAILABLE, reason="cupy or a CUDA device not available"
)

#: Optional backends and the skip conditions of their CI legs.
_OPTIONAL_MARKS = {"numba": needs_numba, "gpu": needs_gpu}

#: Every backend that must agree with the "reference" ground truth.  The
#: optional entries ("numba", "gpu") are always present in the matrix and
#: skip-marked when their dependency is missing, so CI stays green either
#: way; newly registered backends (e.g. "float32-screen") join
#: automatically.
CANDIDATE_BACKENDS = [
    pytest.param(name, marks=_OPTIONAL_MARKS[name])
    if name in _OPTIONAL_MARKS
    else name
    for name in sorted(
        set(available_backends()) - {"reference"} | set(_OPTIONAL_MARKS)
    )
]


@pytest.fixture(scope="module")
def pooled_multiprocess():
    """A multiprocess backend whose pool is genuinely exercised.

    The registered default falls through to numpy below 2048 points, which
    would make the equivalence tests vacuous; this instance shards every
    batch of >= 2 points across two real worker processes.
    """
    backend = MultiprocessBackend(workers=2, min_batch_size=1)
    yield backend
    backend.close()


@pytest.fixture(params=CANDIDATE_BACKENDS)
def candidate_backend(request, pooled_multiprocess):
    if request.param == "multiprocess":
        return pooled_multiprocess
    return get_backend(request.param)


def random_network(seed: int, noise: float = 0.005, beta: float = 3.0):
    # The shared seeded construction (tests/seeded_workloads.py), at the
    # engine suite's standard 6-station scale.
    return seeded_network(6, side=14.0, seed=seed, noise=noise, beta=beta)


def queries_for(network, count: int = 200, seed: int = 1) -> np.ndarray:
    return query_box_array(network, count, seed=seed, margin=3.0)


# ----------------------------------------------------------------------
# Points coercion
# ----------------------------------------------------------------------
class TestAsPointsArray:
    def test_accepts_array_points_and_tuples(self):
        array = np.array([[0.0, 1.0], [2.0, 3.0]])
        assert as_points_array(array) is not None
        from_points = as_points_array([Point(0.0, 1.0), Point(2.0, 3.0)])
        from_tuples = as_points_array([(0.0, 1.0), (2.0, 3.0)])
        np.testing.assert_array_equal(from_points, array)
        np.testing.assert_array_equal(from_tuples, array)

    def test_single_point_and_pair(self):
        assert as_points_array(Point(1.0, 2.0)).shape == (1, 2)
        assert as_points_array((1.0, 2.0)).shape == (1, 2)
        assert as_points_array(np.array([1.0, 2.0])).shape == (1, 2)

    def test_empty_batch(self):
        assert as_points_array([]).shape == (0, 2)
        assert as_points_array(np.empty((0, 2))).shape == (0, 2)

    def test_empty_ndarray_is_empty_batch(self):
        # np.array([]) has shape (0,); it must coerce like the empty list.
        assert as_points_array(np.array([])).shape == (0, 2)
        assert as_points_array(np.zeros((0,))).shape == (0, 2)
        # Zero-size but malformed 2-d shapes stay errors: a (5, 0) array is
        # five queries whose coordinate axis was sliced away, not a batch.
        with pytest.raises(ValueError):
            as_points_array(np.zeros((5, 0)))
        with pytest.raises(ValueError):
            as_points_array(np.zeros((0, 3)))

    def test_single_point_promotions(self):
        single = as_points_array([Point(3.0, 4.0)])
        np.testing.assert_array_equal(single, [[3.0, 4.0]])
        flat = as_points_array(np.array([3.0, 4.0]))
        np.testing.assert_array_equal(flat, [[3.0, 4.0]])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            as_points_array(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            as_points_array(np.zeros((4,)))
        with pytest.raises(ValueError):
            as_points_array(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            as_points_array([1.0])  # a lone coordinate is not a point


# ----------------------------------------------------------------------
# Backend registry / selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_default_is_numpy(self):
        assert active_backend().name == "numpy"

    def test_use_backend_context_restores(self):
        with use_backend("reference") as backend:
            assert backend.name == "reference"
            assert active_backend().name == "reference"
        assert active_backend().name == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError, match="available"):
            get_backend("gpu-of-the-future")
        with pytest.raises(ReproError, match="gpu-of-the-future"):
            use_backend("gpu-of-the-future")

    def test_registered_backend_matrix(self):
        names = set(available_backends())
        assert {"numpy", "reference", "multiprocess", "float32-screen"} <= names
        assert ("numba" in names) == NUMBA_AVAILABLE
        assert ("gpu" in names) == GPU_AVAILABLE

    def test_use_backend_nesting_unwinds_in_order(self):
        with use_backend("reference"):
            assert active_backend().name == "reference"
            with use_backend("multiprocess"):
                assert active_backend().name == "multiprocess"
            assert active_backend().name == "reference"
        assert active_backend().name == "numpy"

    def test_use_backend_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend("reference"):
                assert active_backend().name == "reference"
                raise RuntimeError("boom")
        assert active_backend().name == "numpy"

    def test_use_backend_is_isolated_across_threads(self):
        barrier = threading.Barrier(2, timeout=10.0)
        seen = {}
        errors = []

        def worker(name):
            try:
                with use_backend(name):
                    barrier.wait()  # both threads hold their selection...
                    seen[name] = active_backend().name
                    barrier.wait()  # ...and observe it concurrently
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("reference", "multiprocess")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert seen == {"reference": "reference", "multiprocess": "multiprocess"}
        # The main thread's selection never saw either of them.
        assert active_backend().name == "numpy"

    def test_use_backend_accepts_backend_object(self):
        backend = MultiprocessBackend(workers=1)
        with use_backend(backend) as selected:
            assert selected is backend
            assert active_backend() is backend
        assert active_backend().name == "numpy"

    def test_reregistration_takes_effect_while_active(self):
        class First:
            name = "first"

        class Second:
            name = "second"

        try:
            register_backend("ephemeral", First())
            with use_backend("ephemeral"):
                assert active_backend().name == "first"
                register_backend("ephemeral", Second())
                # A name-based selection re-resolves: no stale object.
                assert active_backend().name == "second"
        finally:
            backend_module.BACKENDS.unregister("ephemeral")

    def test_per_call_backend_override(self):
        network = random_network(seed=2)
        points = queries_for(network, count=16)
        default = sinr_batch(network, points)
        explicit = sinr_batch(network, points, backend="numpy")
        np.testing.assert_array_equal(default, explicit)


# ----------------------------------------------------------------------
# Backend equivalence (every registered backend vs pure-Python reference)
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sinr_matrix_agrees(self, seed, candidate_backend):
        network = random_network(seed=seed, noise=0.01 * seed, beta=2.0 + seed)
        points = queries_for(network, count=120, seed=seed + 10)
        candidate_result = sinr_batch(network, points, backend=candidate_backend)
        reference_result = sinr_batch(network, points, backend="reference")
        np.testing.assert_allclose(candidate_result, reference_result, rtol=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_masks_and_argmax_agree(self, seed, candidate_backend):
        network = random_network(seed=seed)
        points = queries_for(network, count=120, seed=seed + 20)
        for index in range(len(network)):
            np.testing.assert_array_equal(
                received_mask(network, index, points, backend=candidate_backend),
                received_mask(network, index, points, backend="reference"),
            )
        np.testing.assert_array_equal(
            strongest_station_batch(network, points, backend=candidate_backend),
            strongest_station_batch(network, points, backend="reference"),
        )
        np.testing.assert_array_equal(
            heard_station_batch(network, points, backend=candidate_backend),
            heard_station_batch(network, points, backend="reference"),
        )

    def test_equivalence_includes_coincident_and_overflow_columns(
        self, candidate_backend
    ):
        network = random_network(seed=5)
        # Station locations (coincident columns), points overflow-close to a
        # station, and ordinary query points, all in one batch.
        points = np.vstack(
            [
                network.coords,
                network.coords[0] + np.array([1e-200, 0.0]),
                network.coords[1] + np.array([0.0, 1e-160]),
                queries_for(network, count=20),
            ]
        )
        candidate = sinr_batch(network, points, backend=candidate_backend)
        np.testing.assert_allclose(
            candidate,
            sinr_batch(network, points, backend="reference"),
            rtol=1e-9,
        )
        assert not np.isnan(candidate).any()
        np.testing.assert_allclose(
            energy_batch(network, points, backend=candidate_backend),
            energy_batch(network, points, backend="reference"),
            rtol=1e-9,
        )
        np.testing.assert_array_equal(
            heard_station_batch(network, points, backend=candidate_backend),
            heard_station_batch(network, points, backend="reference"),
        )


# ----------------------------------------------------------------------
# Backend-specific behaviour
# ----------------------------------------------------------------------
class TestMultiprocessBackend:
    def test_small_batches_fall_through_without_a_pool(self):
        backend = MultiprocessBackend(workers=4, min_batch_size=1_000_000)
        network = random_network(seed=30)
        points = queries_for(network, count=64)
        np.testing.assert_allclose(
            sinr_batch(network, points, backend=backend),
            sinr_batch(network, points, backend="numpy"),
            rtol=0,
        )
        assert backend._executor is None  # never paid pool start-up

    def test_large_batches_use_the_pool(self, pooled_multiprocess):
        network = random_network(seed=31)
        points = queries_for(network, count=64)
        labels = heard_station_batch(network, points, backend=pooled_multiprocess)
        assert pooled_multiprocess._executor is not None
        np.testing.assert_array_equal(
            labels, heard_station_batch(network, points, backend="numpy")
        )

    def test_single_worker_never_shards(self):
        backend = MultiprocessBackend(workers=1, min_batch_size=1)
        network = random_network(seed=32)
        points = queries_for(network, count=32)
        np.testing.assert_array_equal(
            strongest_station_batch(network, points, backend=backend),
            strongest_station_batch(network, points, backend="numpy"),
        )
        assert backend._executor is None

    def test_worker_count_validation_and_close(self):
        with pytest.raises(ValueError):
            MultiprocessBackend(workers=0)
        with MultiprocessBackend(workers=2, min_batch_size=1) as backend:
            network = random_network(seed=33)
            points = queries_for(network, count=16)
            sinr_batch(network, points, backend=backend)
        assert backend._executor is None  # context exit closed the pool

    def test_empty_batch(self, pooled_multiprocess):
        network = random_network(seed=34)
        assert sinr_batch(network, [], backend=pooled_multiprocess).shape == (
            len(network),
            0,
        )


class TestNumbaBackend:
    @needs_numba
    def test_registered_and_selectable(self):
        assert "numba" in available_backends()
        with use_backend("numba"):
            assert active_backend().name == "numba"

    @needs_numba
    def test_agrees_with_numpy_on_a_quick_workload(self):
        network = random_network(seed=40)
        points = queries_for(network, count=50)
        np.testing.assert_allclose(
            sinr_batch(network, points, backend="numba"),
            sinr_batch(network, points, backend="numpy"),
            rtol=1e-12,
        )

    def test_kernel_logic_matches_numpy_even_without_jit(self):
        # Without numba the @njit placeholder leaves the kernel definitions
        # as plain Python functions, so their loop logic is verifiable with
        # or without the optional dependency.  Coincident columns are
        # included; pow-overflow columns are not, because pure Python raises
        # OverflowError where compiled code saturates to inf (that edge is
        # covered by the equivalence tests on the [numba] CI leg).
        from repro.engine import numba_backend as nb

        network = random_network(seed=41)
        coords = np.ascontiguousarray(network.coords, dtype=np.float64)
        powers = np.ascontiguousarray(network.powers_array(), dtype=np.float64)
        points = np.ascontiguousarray(
            np.vstack([network.coords, queries_for(network, count=40)])
        )
        noise, beta, alpha = network.noise, network.beta, network.alpha

        np.testing.assert_array_equal(
            nb._energy_matrix(coords, powers, points, alpha) == np.inf,
            energy_batch(network, points) == np.inf,
        )
        np.testing.assert_allclose(
            nb._sinr_matrix(coords, powers, points, noise, alpha),
            sinr_batch(network, points, backend="numpy"),
            rtol=1e-12,
        )
        np.testing.assert_array_equal(
            nb._strongest_station(coords, powers, points, alpha),
            strongest_station_batch(network, points, backend="numpy"),
        )
        np.testing.assert_array_equal(
            nb._received_mask_matrix(coords, powers, points, noise, beta, alpha),
            get_backend("numpy").received_mask_matrix(
                coords, powers, points, noise, beta, alpha
            ),
        )
        np.testing.assert_array_equal(
            nb._heard_station(coords, powers, points, noise, beta, alpha, -1),
            heard_station_batch(network, points, backend="numpy"),
        )

    @pytest.mark.skipif(
        NUMBA_AVAILABLE, reason="error path only exists without numba"
    )
    def test_missing_dependency_raises_clear_error(self):
        assert "numba" not in available_backends()
        with pytest.raises(ReproError, match="numba"):
            NumbaBackend()
        with pytest.raises(ReproError, match="available"):
            get_backend("numba")


class TestGpuBackend:
    @pytest.mark.skipif(
        GPU_AVAILABLE, reason="error path only exists without a CUDA device"
    )
    def test_missing_dependency_skips_registration_cleanly(self):
        assert "gpu" not in available_backends()
        with pytest.raises(ReproError, match="gpu"):
            GpuBackend()
        with pytest.raises(ReproError, match="available"):
            get_backend("gpu")

    @needs_gpu
    def test_registered_and_bit_identical_to_numpy(self):
        network = random_network(seed=44)
        points = np.vstack([queries_for(network, count=300), network.coords])
        for fn in (heard_station_batch, strongest_station_batch):
            np.testing.assert_array_equal(
                fn(network, points, backend="gpu"),
                fn(network, points, backend="numpy"),
            )


# ----------------------------------------------------------------------
# Memory-bounded chunking
# ----------------------------------------------------------------------
class TestChunkedBatch:
    def test_invalid_budget_warns_and_uses_default(self, monkeypatch):
        for bogus in ("banana", "-5", "0"):
            monkeypatch.setenv("REPRO_ENGINE_CHUNK_BYTES", bogus)
            with pytest.warns(UserWarning, match="REPRO_ENGINE_CHUNK_BYTES"):
                assert chunk_byte_budget() == DEFAULT_CHUNK_BYTES
        monkeypatch.delenv("REPRO_ENGINE_CHUNK_BYTES")
        assert chunk_byte_budget() == DEFAULT_CHUNK_BYTES

    def test_points_per_chunk_never_below_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CHUNK_BYTES", "1")
        assert points_per_chunk(10_000) == 1

    @pytest.mark.parametrize("backend_name", ["numpy", "float32-screen"])
    @pytest.mark.parametrize("budget", [40_000, 300_000, 5_000_000])
    def test_results_bit_identical_across_chunk_sizes(
        self, monkeypatch, backend_name, budget
    ):
        """Chunking is invisible: every query family, three budgets apart.

        The baseline runs under the default 64 MiB budget (one single chunk
        at this scale), the comparison under budgets small enough for tens
        of chunks — results must match to the bit.
        """
        network = random_network(seed=50)
        points = np.vstack([queries_for(network, count=1500, seed=51),
                            network.coords])
        indices = np.arange(len(points)) % len(network)
        families = [
            lambda b: sinr_batch(network, points, backend=b),
            lambda b: energy_batch(network, points, backend=b),
            lambda b: strongest_station_batch(network, points, backend=b),
            lambda b: heard_station_batch(network, points, backend=b),
            lambda b: received_mask(network, 2, points, backend=b),
            lambda b: received_at(network, indices, points, backend=b),
        ]
        monkeypatch.delenv("REPRO_ENGINE_CHUNK_BYTES", raising=False)
        baselines = [fn(backend_name) for fn in families]
        monkeypatch.setenv("REPRO_ENGINE_CHUNK_BYTES", str(budget))
        for fn, expected in zip(families, baselines):
            np.testing.assert_array_equal(fn(backend_name), expected)

    def test_peak_allocation_stays_bounded(self, monkeypatch):
        """The satellite regression: temporaries obey the byte budget.

        50 stations x 60k points would materialise ~24 MB per ``(n, m)``
        float64 temporary unchunked (several of them live at once); under a
        2 MiB budget the tracemalloc peak must stay near the budget plus the
        inherent output, an order of magnitude below the unchunked run —
        with bit-identical answers.
        """
        import tracemalloc

        network = seeded_network(50, side=30.0, seed=77)
        points = query_box_array(network, 60_000, seed=78)

        def peak_of(fn):
            tracemalloc.start()
            try:
                result = fn()
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return result, peak

        budget = 2 * 2**20
        monkeypatch.setenv("REPRO_ENGINE_CHUNK_BYTES", str(budget))
        chunked, peak_chunked = peak_of(
            lambda: strongest_station_batch(network, points)
        )
        monkeypatch.setenv("REPRO_ENGINE_CHUNK_BYTES", str(1 << 34))
        unchunked, peak_unchunked = peak_of(
            lambda: strongest_station_batch(network, points)
        )
        np.testing.assert_array_equal(chunked, unchunked)
        # Budgeted temporaries + the (m,) intp output + small slack; the
        # queries array itself was allocated before tracing started.
        inherent = len(points) * np.dtype(np.intp).itemsize
        assert peak_chunked <= budget + inherent + (1 << 20)
        assert peak_unchunked > 4 * peak_chunked

    def test_raster_block_inherits_chunking(self, monkeypatch):
        """Tile rasters run through the chunked batch API, bit-identically."""
        from repro.model.diagram import raster_block

        network = random_network(seed=52)
        xs = np.linspace(-1.0, 15.0, 64)
        ys = np.linspace(-1.0, 15.0, 48)
        monkeypatch.delenv("REPRO_ENGINE_CHUNK_BYTES", raising=False)
        labels, values = raster_block(network, xs, ys)
        monkeypatch.setenv("REPRO_ENGINE_CHUNK_BYTES", "40000")
        labels_chunked, values_chunked = raster_block(network, xs, ys)
        np.testing.assert_array_equal(labels_chunked, labels)
        np.testing.assert_array_equal(values_chunked, values)


# ----------------------------------------------------------------------
# Batch vs scalar agreement
# ----------------------------------------------------------------------
class TestBatchMatchesScalar:
    def test_sinr_batch_matches_scalar_sinr(self):
        network = random_network(seed=3)
        points = queries_for(network, count=150)
        matrix = sinr_batch(network, points)
        for index in range(len(network)):
            scalar = [network.sinr(index, Point(x, y)) for x, y in points]
            np.testing.assert_allclose(matrix[index], scalar, rtol=1e-12)

    def test_received_mask_matches_is_received(self):
        network = random_network(seed=4)
        points = np.vstack([network.coords, queries_for(network, count=150)])
        for index in range(len(network)):
            mask = received_mask(network, index, points)
            scalar = [network.is_received(index, Point(x, y)) for x, y in points]
            np.testing.assert_array_equal(mask, scalar)

    def test_received_mask_row_kernel_matches_matrix_row(self):
        network = random_network(seed=5)
        # Include exactly-coincident and overflow-close columns: the row
        # kernel must reproduce every edge case of the full matrix.
        points = np.vstack(
            [
                network.coords,
                network.coords[:3] + 1e-200,
                queries_for(network, count=120),
            ]
        )
        full = kernels.received_mask_matrix(
            network.coords, network.powers_array(), points,
            network.noise, network.beta, network.alpha,
        )
        for index in range(len(network)):
            row = kernels.received_mask_row(
                network.coords, network.powers_array(), points, index,
                network.noise, network.beta, network.alpha,
            )
            np.testing.assert_array_equal(row, full[index])
        # The per-point-index gather variant must match the matrix gather.
        rng = np.random.default_rng(0)
        indices = rng.integers(0, len(network), size=len(points))
        gathered = kernels.received_mask_at(
            network.coords, network.powers_array(), points, indices,
            network.noise, network.beta, network.alpha,
        )
        np.testing.assert_array_equal(
            gathered, full[indices, np.arange(len(points))]
        )

    def test_received_mask_works_without_row_fast_path(self):
        # The reference backend has no received_mask_row; received_mask must
        # fall back to the full matrix and still agree.
        network = random_network(seed=4)
        points = queries_for(network, count=40)
        with use_backend("reference"):
            fallback = received_mask(network, 0, points)
        np.testing.assert_array_equal(fallback, received_mask(network, 0, points))

    def test_heard_station_batch_matches_diagram(self):
        network = random_network(seed=6)
        diagram = SINRDiagram(network)
        points = queries_for(network, count=150)
        labels = heard_station_batch(network, points)
        for (x, y), label in zip(points, labels):
            scalar = diagram.station_heard_at(Point(x, y))
            assert (scalar if scalar is not None else -1) == label

    def test_heard_station_batch_matches_diagram_beta_below_one(self):
        network = random_network(seed=7, beta=0.3, noise=0.05)
        diagram = SINRDiagram(network)
        points = queries_for(network, count=150)
        labels = heard_station_batch(network, points)
        for (x, y), label in zip(points, labels):
            scalar = diagram.station_heard_at(Point(x, y))
            assert (scalar if scalar is not None else -1) == label

    def test_strongest_station_matches_scalar(self):
        network = random_network(seed=8)
        points = queries_for(network, count=150)
        batch = strongest_station_batch(network, points)
        for (x, y), index in zip(points, batch):
            assert network.strongest_station(Point(x, y)) == index

    def test_interference_matrix_matches_scalar(self):
        network = random_network(seed=18)
        points = np.vstack([network.coords, queries_for(network, count=100)])
        matrix = kernels.interference_matrix(
            network.coords, network.powers_array(), points, network.alpha
        )
        for index in range(len(network)):
            scalar = [network.interference(index, Point(x, y)) for x, y in points]
            np.testing.assert_allclose(matrix[index], scalar, rtol=1e-9)


class TestLocatorBatches:
    @pytest.mark.parametrize("beta", [3.0, 0.5])
    def test_brute_force_locate_batch(self, beta):
        network = random_network(seed=9, beta=beta, noise=0.01)
        locator = BruteForceLocator(network)
        points = queries_for(network, count=200)
        labels = locator.locate_batch(points)
        assert labels.dtype == np.int64
        for (x, y), label in zip(points, labels):
            assert locator.locate(Point(x, y)) == label

    def test_voronoi_candidate_locate_batch(self):
        network = random_network(seed=10)
        locator = VoronoiCandidateLocator(network)
        points = queries_for(network, count=200)
        labels = locator.locate_batch(points)
        assert labels.dtype == np.int64
        for (x, y), label in zip(points, labels):
            assert locator.locate(Point(x, y)) == label

    def test_structure_locate_batch(self):
        network = random_network(seed=11)
        structure = PointLocationStructure(network, epsilon=0.4)
        points = queries_for(network, count=200)
        labels = structure.locate_batch(points)
        assert labels.dtype == np.int64
        for (x, y), label in zip(points, labels):
            assert structure.locate(Point(x, y)) == label

    def test_structure_locate_answers_match_answer(self):
        network = random_network(seed=11)
        structure = PointLocationStructure(network, epsilon=0.4)
        points = queries_for(network, count=100)
        answers = structure.locate_answers(points)
        for (x, y), answer in zip(points, answers):
            scalar = structure.locate_answer(Point(x, y))
            assert scalar.station == answer.station
            assert scalar.label == answer.label

    def test_generic_locate_batch_dispatch(self):
        network = random_network(seed=12)
        locator = VoronoiCandidateLocator(network)
        points = queries_for(network, count=50)
        np.testing.assert_array_equal(
            locate_batch(locator, points), locator.locate_batch(points)
        )

    def test_generic_locate_batch_fallback_loops_scalar(self):
        network = random_network(seed=13)

        class ScalarOnly:
            def locate(self, point):
                return network.heard_station(point)

        points = queries_for(network, count=30)
        fallback = locate_batch(ScalarOnly(), points)
        assert fallback == [
            network.heard_station(Point(x, y)) for x, y in points
        ]

    def test_empty_and_single_point_batches(self):
        network = random_network(seed=14)
        structure = PointLocationStructure(network, epsilon=0.4)
        voronoi = VoronoiCandidateLocator(network)
        brute = BruteForceLocator(network)

        assert structure.locate_batch([]).shape == (0,)
        assert structure.locate_answers([]) == []
        assert voronoi.locate_batch([]).shape == (0,)
        assert brute.locate_batch(np.empty((0, 2))).shape == (0,)
        assert sinr_batch(network, []).shape == (len(network), 0)

        single = structure.locate_batch(Point(1.0, 1.0))
        assert single.shape == (1,)
        assert single[0] == structure.locate(Point(1.0, 1.0))
        assert voronoi.locate_batch(Point(1.0, 1.0)).shape == (1,)


# ----------------------------------------------------------------------
# Zero-distance / overflow regression (satellite of the engine PR)
# ----------------------------------------------------------------------
class TestCoincidentAndOverflowEdges:
    def network(self):
        return WirelessNetwork.uniform(
            [(0.0, 0.0), (4.0, 0.0), (1.0, 5.0)], noise=0.01, beta=2.0
        )

    def test_scalar_energy_is_inf_at_station_and_under_overflow(self):
        station = Point(0.0, 0.0)
        assert received_energy(station, 1.0, Point(0.0, 0.0)) == math.inf
        # 1e-200 ** -2 overflows the float range: saturates to inf.
        assert received_energy(station, 1.0, Point(1e-200, 0.0)) == math.inf

    def test_kernel_energy_agrees_with_scalar_at_edges(self):
        network = self.network()
        points = np.array([[0.0, 0.0], [1e-200, 0.0], [1e-160, 0.0], [0.5, 0.5]])
        matrix = energy_batch(network, points)
        for i in range(len(network)):
            for j, (x, y) in enumerate(points):
                scalar = network.energy(i, Point(x, y))
                if math.isinf(scalar):
                    # The edge contract: exact agreement on the inf cases.
                    assert matrix[i, j] == scalar
                else:
                    # Ordinary points: hypot-then-power vs squared-power may
                    # differ in the last ulp.
                    assert matrix[i, j] == pytest.approx(scalar, rel=1e-12)

    def test_scalar_sinr_ratio_no_nan_at_overflow_points(self):
        network = self.network()
        # Not a station location (so no exception), but overflow-close to s0.
        point = Point(1e-160, 0.0)
        ratio = sinr_ratio(
            network.locations(), network.powers(), 0, point, network.noise
        )
        assert ratio == math.inf
        drowned = sinr_ratio(
            network.locations(), network.powers(), 1, point, network.noise
        )
        assert drowned == 0.0

    def test_no_nan_leakage_through_batch_sinr(self, candidate_backend):
        network = self.network()
        points = np.array(
            [[0.0, 0.0], [4.0, 0.0], [1e-200, 0.0], [1e-160, 0.0], [2.0, 1.0]]
        )
        for backend in (candidate_backend, "reference"):
            matrix = sinr_batch(network, points, backend=backend)
            assert not np.isnan(matrix).any()
        # The co-located station owns its point: inf for it, 0 for the rest.
        matrix = sinr_batch(network, points)
        assert matrix[0, 0] == math.inf and matrix[1, 0] == 0.0
        assert matrix[1, 1] == math.inf and matrix[0, 1] == 0.0

    def test_shared_location_heard_by_first_station_only(self):
        network = WirelessNetwork(
            stations=(
                Station.at(0.0, 0.0),
                Station.at(0.0, 0.0),
                Station.at(5.0, 0.0),
            ),
            noise=0.0,
            beta=2.0,
        )
        points = np.array([[0.0, 0.0]])
        for index in range(3):
            mask = received_mask(network, index, points)
            assert mask[0] == network.is_received(index, Point(0.0, 0.0))
        assert heard_station_batch(network, points)[0] == 0
        # The scalar diagram query uses the same first-co-located convention.
        assert SINRDiagram(network).station_heard_at(Point(0.0, 0.0)) == 0


# ----------------------------------------------------------------------
# Cached network arrays
# ----------------------------------------------------------------------
class TestCachedNetworkArrays:
    def test_coords_and_powers_are_cached_and_read_only(self):
        network = random_network(seed=15)
        assert network.coords is network.coords
        assert network.coordinates_array() is network.coords
        assert network.powers_array() is network.powers_array()
        with pytest.raises(ValueError):
            network.coords[0, 0] = 99.0
        with pytest.raises(ValueError):
            network.powers_array()[0] = 99.0

    def test_mutated_networks_get_fresh_caches(self):
        network = random_network(seed=16)
        _ = network.coords
        moved = network.with_station_moved(0, Point(100.0, 100.0))
        assert moved.coords[0, 0] == 100.0
        assert network.coords[0, 0] != 100.0
        shrunk = network.without_station(0)
        assert shrunk.coords.shape == (len(network) - 1, 2)

    def test_coords_values_match_locations(self):
        network = random_network(seed=17)
        np.testing.assert_array_equal(
            network.coords,
            np.array([[p.x, p.y] for p in network.locations()]),
        )

    def test_float32_views_cached_read_only_and_rounded(self):
        network = random_network(seed=18)
        assert network.coords32 is network.coords32
        assert network.powers32 is network.powers32
        assert network.coords32.dtype == np.float32
        assert network.powers32.dtype == np.float32
        assert network.coords32.flags["C_CONTIGUOUS"]
        with pytest.raises(ValueError):
            network.coords32[0, 0] = 1.0
        with pytest.raises(ValueError):
            network.powers32[0] = 1.0
        np.testing.assert_array_equal(
            network.coords32, network.coords.astype(np.float32)
        )
        np.testing.assert_array_equal(
            network.powers32, network.powers_array().astype(np.float32)
        )

    def test_float32_views_track_mutated_networks(self):
        network = random_network(seed=19)
        _ = network.coords32
        moved = network.with_station_moved(0, Point(100.0, 100.0))
        assert moved.coords32[0, 0] == np.float32(100.0)
        assert network.coords32[0, 0] != np.float32(100.0)
        assert network.subnetwork([1, 2]).coords32.shape == (2, 2)
