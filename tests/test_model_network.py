"""Tests for stations, networks and the SINR arithmetic."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import Point, Station, WirelessNetwork
from repro.exceptions import NetworkConfigurationError
from repro.geometry import SimilarityTransform
from repro.model import received_energy, sinr_map, sinr_ratio, strongest_station_map


class TestStation:
    def test_construction_and_accessors(self):
        station = Station.at(1.0, 2.0, power=2.5, name="tower")
        assert station.x == 1.0 and station.y == 2.0
        assert station.power == 2.5
        assert station.label(3) == "tower"
        assert Station.at(0, 0).label(3) == "s3"

    def test_positive_power_required(self):
        with pytest.raises(NetworkConfigurationError):
            Station.at(0, 0, power=0.0)

    def test_from_points_builds_uniform_stations(self):
        stations = Station.from_points([(0, 0), (1, 1)])
        assert len(stations) == 2
        assert all(s.power == 1.0 for s in stations)
        assert stations[1].name == "s1"

    def test_moved_to_and_with_power(self):
        station = Station.at(0, 0, name="a")
        moved = station.moved_to(Point(5, 5))
        assert moved.location == Point(5, 5) and moved.name == "a"
        assert station.with_power(3.0).power == 3.0

    def test_distance_to(self):
        assert Station.at(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)


class TestNetworkConstruction:
    def test_needs_two_stations(self):
        with pytest.raises(NetworkConfigurationError):
            WirelessNetwork.uniform([(0, 0)])

    def test_parameter_validation(self):
        with pytest.raises(NetworkConfigurationError):
            WirelessNetwork.uniform([(0, 0), (1, 1)], noise=-1.0)
        with pytest.raises(NetworkConfigurationError):
            WirelessNetwork.uniform([(0, 0), (1, 1)], beta=0.0)
        with pytest.raises(NetworkConfigurationError):
            WirelessNetwork.uniform([(0, 0), (1, 1)], alpha=-2.0)

    def test_uniform_and_trivial_detection(self, two_station_network):
        assert two_station_network.is_uniform_power()
        assert not two_station_network.is_trivial()
        trivial = WirelessNetwork.uniform([(0, 0), (1, 0)], noise=0.0, beta=1.0)
        assert trivial.is_trivial()

    def test_location_sharing_and_minimum_distance(self):
        network = WirelessNetwork.uniform([(0, 0), (0, 0), (3, 4)], beta=2.0)
        assert network.location_is_shared(0)
        assert not network.location_is_shared(2)
        assert network.minimum_distance_from(2) == pytest.approx(5.0)

    def test_arrays(self, noisy_network):
        coordinates = noisy_network.coordinates_array()
        powers = noisy_network.powers_array()
        assert coordinates.shape == (5, 2)
        assert powers.shape == (5,)
        assert np.all(powers == 1.0)

    def test_describe_mentions_power_mode(self, noisy_network):
        assert "uniform" in noisy_network.describe()


class TestSINRArithmetic:
    def test_energy_inverse_square_law(self, two_station_network):
        energy_near = two_station_network.energy(0, Point(1, 0))
        energy_far = two_station_network.energy(0, Point(2, 0))
        assert energy_near / energy_far == pytest.approx(4.0)

    def test_energy_is_infinite_at_the_station(self, two_station_network):
        assert two_station_network.energy(0, Point(0, 0)) == math.inf

    def test_sinr_definition(self, noisy_network):
        point = Point(1.0, 1.0)
        expected = noisy_network.energy(0, point) / (
            noisy_network.interference(0, point) + noisy_network.noise
        )
        assert noisy_network.sinr(0, point) == pytest.approx(expected)

    def test_sinr_undefined_at_station_locations(self, noisy_network):
        with pytest.raises(NetworkConfigurationError):
            noisy_network.sinr(0, Point(4.0, 0.0))

    def test_reception_rule(self, two_station_network):
        assert two_station_network.is_received(0, Point(0.5, 0.0))
        assert not two_station_network.is_received(0, Point(3.5, 0.0))
        # The station location itself is always part of its own zone.
        assert two_station_network.is_received(0, Point(0.0, 0.0))
        # A point occupied by another station hears only that station.
        assert not two_station_network.is_received(0, Point(4.0, 0.0))
        assert two_station_network.is_received(1, Point(4.0, 0.0))

    def test_at_most_one_station_heard_when_beta_geq_one(self, noisy_network):
        rng = random.Random(17)
        for _ in range(200):
            point = Point(rng.uniform(-5, 8), rng.uniform(-5, 8))
            received = [
                noisy_network.is_received(i, point) for i in range(len(noisy_network))
            ]
            assert sum(received) <= 1

    def test_strongest_station_is_nearest_for_uniform_power(self, noisy_network):
        rng = random.Random(3)
        for _ in range(100):
            point = Point(rng.uniform(-5, 8), rng.uniform(-5, 8))
            nearest = min(
                range(len(noisy_network)),
                key=lambda i: noisy_network.station(i).location.distance_to(point),
            )
            assert noisy_network.strongest_station(point) == nearest

    def test_heard_station(self, two_station_network):
        assert two_station_network.heard_station(Point(0.5, 0.0)) == 0
        assert two_station_network.heard_station(Point(2.0, 0.0)) is None

    def test_alpha_four_reception_differs_from_alpha_two(self):
        stations = [(0.0, 0.0), (4.0, 0.0)]
        shallow = WirelessNetwork.uniform(stations, beta=2.0, alpha=2.0)
        steep = WirelessNetwork.uniform(stations, beta=2.0, alpha=4.0)
        probe = Point(2.3, 0.0)
        # With a steeper path loss the signal/interference ratio at a point
        # closer to the interferer drops faster.
        assert steep.sinr(0, probe) < shallow.sinr(0, probe)


class TestNetworkTransformations:
    def test_lemma_2_3_invariance(self, noisy_network):
        transform = SimilarityTransform(angle=0.6, scale=2.0, offset=Point(3, -1))
        transformed = noisy_network.transformed(transform)
        rng = random.Random(1)
        for _ in range(50):
            point = Point(rng.uniform(-5, 8), rng.uniform(-5, 8))
            if any(s.location == point for s in noisy_network.stations):
                continue
            original = noisy_network.sinr(2, point)
            mapped = transformed.sinr(2, transform.apply(point))
            assert mapped == pytest.approx(original, rel=1e-9)

    def test_without_station(self, noisy_network):
        smaller = noisy_network.without_station(4)
        assert len(smaller) == 4
        # Removing an interferer can only increase the SINR of the others.
        probe = Point(1.0, 1.0)
        assert smaller.sinr(0, probe) >= noisy_network.sinr(0, probe)

    def test_with_station_and_moved(self, two_station_network):
        extended = two_station_network.with_station(Station.at(0.0, 6.0))
        assert len(extended) == 3
        moved = two_station_network.with_station_moved(1, Point(10.0, 0.0))
        assert moved.station(1).location == Point(10.0, 0.0)
        # Moving the interferer away increases SINR at a fixed probe.
        probe = Point(1.0, 0.0)
        assert moved.sinr(0, probe) > two_station_network.sinr(0, probe)

    def test_with_noise_and_beta(self, two_station_network):
        assert two_station_network.with_noise(0.5).noise == 0.5
        assert two_station_network.with_beta(4.0).beta == 4.0

    def test_noise_folded_into_station(self, noisy_network):
        folded = noisy_network.noise_folded_into_station(0)
        assert folded.noise == 0.0
        assert len(folded) == len(noisy_network) + 1
        # The substitute station has power N * kappa^2 and sits at the nearest
        # other station, so its energy at s0 itself equals the removed noise N.
        substitute = folded.stations[-1]
        kappa = noisy_network.minimum_distance_from(0)
        assert substitute.power == pytest.approx(noisy_network.noise * kappa * kappa)
        energy_at_station = folded.energy(len(folded) - 1, Point(0.0, 0.0))
        assert energy_at_station == pytest.approx(noisy_network.noise)

    def test_noise_folding_without_noise_is_identity(self, two_station_network):
        assert two_station_network.noise_folded_into_station(0) is two_station_network


class TestVectorisedSinr:
    def test_sinr_map_matches_scalar(self, noisy_network):
        xs, ys = np.meshgrid(np.linspace(-4, 7, 12), np.linspace(-4, 7, 12))
        values = sinr_map(
            noisy_network.coordinates_array(),
            noisy_network.powers_array(),
            0,
            xs,
            ys,
            noisy_network.noise,
        )
        for r in range(0, 12, 3):
            for c in range(0, 12, 3):
                point = Point(float(xs[r, c]), float(ys[r, c]))
                if any(s.location == point for s in noisy_network.stations):
                    continue
                assert values[r, c] == pytest.approx(
                    noisy_network.sinr(0, point), rel=1e-9
                )

    def test_strongest_station_map_matches_scalar(self, noisy_network):
        xs, ys = np.meshgrid(np.linspace(-4, 7, 9), np.linspace(-4, 7, 9))
        labels = strongest_station_map(
            noisy_network.coordinates_array(), noisy_network.powers_array(), xs, ys
        )
        for r in range(9):
            for c in range(9):
                point = Point(float(xs[r, c]), float(ys[r, c]))
                assert labels[r, c] == noisy_network.strongest_station(point)

    def test_received_energy_at_station_is_infinite(self):
        assert received_energy(Point(0, 0), 1.0, Point(0, 0)) == math.inf

    def test_sinr_ratio_rejects_station_points(self):
        with pytest.raises(NetworkConfigurationError):
            sinr_ratio([Point(0, 0), Point(1, 0)], [1.0, 1.0], 0, Point(1, 0), 0.0)


class TestMutationCacheRefresh:
    """Mutated copies must never inherit stale derived caches.

    Every cached derivative — ``fingerprint``, ``coords``/``coords32``,
    ``powers_array``/``powers32``, the kdtree and Voronoi diagram — is
    materialised on the parent *first*, then a mutator runs; the copy's
    values must reflect the mutation and the parent's caches must be
    untouched.  This is the contract the dynamic-network layers (deltas,
    incremental shard rebuilds, tile invalidation) key everything on.
    """

    @staticmethod
    def _materialise(network):
        return {
            "fingerprint": network.fingerprint,
            "coords": network.coords.copy(),
            "coords32": network.coords32.copy(),
            "powers": network.powers_array().copy(),
            "powers32": network.powers32.copy(),
            "kdtree": network.station_kdtree(),
            "voronoi": network.voronoi_diagram(),
        }

    @staticmethod
    def _assert_parent_untouched(network, before):
        assert network.fingerprint == before["fingerprint"]
        np.testing.assert_array_equal(network.coords, before["coords"])
        np.testing.assert_array_equal(network.coords32, before["coords32"])
        np.testing.assert_array_equal(network.powers_array(), before["powers"])
        np.testing.assert_array_equal(network.powers32, before["powers32"])
        assert network.station_kdtree() is before["kdtree"]
        assert network.voronoi_diagram() is before["voronoi"]

    @pytest.fixture
    def parent(self):
        return WirelessNetwork.uniform(
            [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0), (6.0, 6.0), (3.0, 9.0)],
            noise=0.01,
            beta=3.0,
        )

    def test_with_station_moved_refreshes_every_cache(self, parent):
        before = self._materialise(parent)
        target = Point(2.5, 2.5)
        moved = parent.with_station_moved(1, target)

        assert moved.fingerprint != parent.fingerprint
        np.testing.assert_array_equal(moved.coords[1], [2.5, 2.5])
        np.testing.assert_array_equal(
            moved.coords32, moved.coords.astype(np.float32)
        )
        np.testing.assert_array_equal(moved.powers_array(), before["powers"])
        np.testing.assert_array_equal(moved.powers32, before["powers32"])
        # The copy's spatial indexes answer for the *new* geometry.
        assert moved.station_kdtree() is not before["kdtree"]
        assert moved.station_kdtree().nearest_index(target) == 1
        assert parent.station_kdtree().nearest_index(target) == 0
        assert moved.voronoi_diagram() is not before["voronoi"]
        self._assert_parent_untouched(parent, before)

    def test_with_noise_refreshes_fingerprint_shares_geometry(self, parent):
        before = self._materialise(parent)
        quieter = parent.with_noise(0.0001)

        assert quieter.fingerprint != parent.fingerprint
        np.testing.assert_array_equal(quieter.coords, before["coords"])
        np.testing.assert_array_equal(quieter.coords32, before["coords32"])
        np.testing.assert_array_equal(quieter.powers_array(), before["powers"])
        self._assert_parent_untouched(parent, before)

    def test_with_beta_refreshes_fingerprint(self, parent):
        before = self._materialise(parent)
        stricter = parent.with_beta(5.0)
        assert stricter.fingerprint != parent.fingerprint
        np.testing.assert_array_equal(stricter.coords, before["coords"])
        self._assert_parent_untouched(parent, before)

    def test_subnetwork_refreshes_every_cache(self, parent):
        before = self._materialise(parent)
        selector = [4, 0, 2]
        sub = parent.subnetwork(selector)

        assert sub.fingerprint != parent.fingerprint
        np.testing.assert_array_equal(sub.coords, before["coords"][selector])
        np.testing.assert_array_equal(sub.coords32, sub.coords.astype(np.float32))
        np.testing.assert_array_equal(sub.powers_array(), before["powers"][selector])
        np.testing.assert_array_equal(sub.powers32, before["powers32"][selector])
        assert sub.station_kdtree() is not before["kdtree"]
        assert len(sub.station_kdtree()) == 3
        assert sub.voronoi_diagram() is not before["voronoi"]
        self._assert_parent_untouched(parent, before)

    def test_mutated_copies_never_share_writable_arrays(self, parent):
        parent.coords  # materialise the parent cache first
        for mutated in (
            parent.with_station_moved(0, Point(1.0, 1.0)),
            parent.with_noise(0.5),
            parent.subnetwork([0, 1, 2]),
        ):
            assert not mutated.coords.flags.writeable
            assert not mutated.powers_array().flags.writeable
            assert not mutated.coords32.flags.writeable
            assert not mutated.powers32.flags.writeable
