"""Concurrency and correctness contract of the async query service.

The centrepiece invariant: **every successfully submitted query is answered
exactly once, with the bit-identical answer a direct ``locate_batch`` on
the same locator would give** — no drops, no duplicates, no cross-talk
between the queries that happen to share a micro-batch.  The suite drives
the service with hundreds of concurrent submitters, mixed batch boundaries,
cancellation mid-batch, shutdown with queries in flight, backpressure
saturation, and slow/fake/failing locators, and checks the latency budget
is honoured within tolerance.

No pytest-asyncio dependency: every test drives its coroutine with
``asyncio.run`` through the :func:`run` helper (which adds a watchdog
timeout so a service deadlock fails the test instead of hanging the
suite — the multiprocess-backend regression relies on this).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.engine import MultiprocessBackend, use_backend
from repro.exceptions import ServiceClosedError, ServiceError
from repro.pointlocation import build_locator
from repro.service import (
    LocatorRouter,
    MicroBatcher,
    QueryService,
    ServiceStats,
    serve_points,
)
from repro.workloads import (
    burst_schedule,
    poisson_schedule,
    run_bursts,
    run_closed_loop,
    run_poisson,
    run_scheduled,
)

from seeded_workloads import query_box_array


def run(coro, timeout: float = 120.0):
    """Drive a coroutine from sync test code, with a deadlock watchdog."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture(scope="module")
def network(ten_station_network):
    return ten_station_network


@pytest.fixture(scope="module")
def queries(network):
    return query_box_array(network, 900, seed=77, margin=3.0)


@pytest.fixture(scope="module")
def truth(network, queries):
    return build_locator(network, "voronoi").locate_batch(queries)


# ----------------------------------------------------------------------
# Test doubles
# ----------------------------------------------------------------------
def fingerprint_answers(points) -> np.ndarray:
    """A deterministic, per-point-unique-ish answer: detects cross-talk."""
    pts = np.asarray(points, dtype=float)
    return (np.abs(pts[:, 0] * 1e6 + pts[:, 1] * 1e3).astype(np.int64)) % 100003


class FakeLocator:
    """A locator double answering with a per-point fingerprint.

    ``delay`` seconds of blocking sleep per batch model a slow engine call;
    every call is recorded (thread-safely) for batch-shape assertions.
    """

    name = "fake"

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.calls = []
        self._lock = threading.Lock()

    def locate_batch(self, points):
        if self.delay:
            time.sleep(self.delay)
        points = np.asarray(points, dtype=float)
        with self._lock:
            self.calls.append(len(points))
        return fingerprint_answers(points)


class GatedLocator(FakeLocator):
    """A fake locator that blocks until the test opens its gate."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def locate_batch(self, points):
        self.entered.set()
        if not self.gate.wait(timeout=30.0):
            raise TimeoutError("test gate never opened")
        return super().locate_batch(points)


class FlakyOnceLocator(FakeLocator):
    """Fails its first batch with ValueError, then behaves."""

    def __init__(self):
        super().__init__()
        self._failed = False

    def locate_batch(self, points):
        if not self._failed:
            self._failed = True
            raise ValueError("transient engine failure")
        return super().locate_batch(points)


# ----------------------------------------------------------------------
# Exactly-once, bit-identical delivery
# ----------------------------------------------------------------------
class TestExactness:
    def test_hundreds_of_concurrent_submitters(self, network, queries, truth,
                                               seeded_rng):
        """300 submitter tasks, jittered arrivals: every answer is the
        direct ``locate_batch`` answer for that submitter's own point."""
        jitter = seeded_rng.uniform(0.0, 0.01, size=len(queries))
        chunks = np.array_split(np.arange(len(queries)), 300)

        async def main():
            received = {}

            async def submitter(indices):
                for i in indices:
                    await asyncio.sleep(jitter[i])
                    answer = await service.locate(queries[i])
                    assert i not in received, "duplicate answer"
                    received[i] = answer

            async with QueryService(
                network, "voronoi", latency_budget=0.003, max_batch_size=97
            ) as service:
                await asyncio.gather(*(submitter(c) for c in chunks))
                snapshot = service.stats_snapshot()
            return received, snapshot

        received, snapshot = run(main())
        assert len(received) == len(queries)
        answers = np.array([received[i] for i in range(len(queries))])
        np.testing.assert_array_equal(answers, truth)
        # Exactly-once at the service level too: nothing dropped or retried.
        assert snapshot.submitted == len(queries)
        assert snapshot.completed == len(queries)
        assert snapshot.cancelled == 0 and snapshot.failed == 0
        # Micro-batching genuinely engaged (not one call per query).
        assert snapshot.batches < len(queries)
        assert snapshot.mean_batch_size > 1.0

    def test_mixed_batch_boundaries_preserve_identity(self, network, queries,
                                                      truth):
        """Odd max_batch_size: queries split across many seals at varying
        positions, yet answers stay in bijection with their queries."""

        async def main():
            async with QueryService(
                network, "voronoi", latency_budget=0.001, max_batch_size=7
            ) as service:
                answers = await service.locate_many(queries[:350])
                return answers, service.stats_snapshot()

        answers, snapshot = run(main())
        np.testing.assert_array_equal(answers, truth[:350])
        assert answers.dtype == np.int64
        assert snapshot.max_batch_size <= 7
        assert snapshot.batches >= 50  # 350 queries / max 7 per batch

    def test_no_cross_talk_between_interleaved_clients(self, network):
        """Two clients with disjoint fingerprinted points, interleaved
        submissions: each gets its own fingerprints back."""
        fake = FakeLocator()
        a_pts = query_box_array(network, 120, seed=5)
        b_pts = query_box_array(network, 120, seed=6) + 1000.0

        async def client(service, pts):
            return np.array(
                [await service.locate((x, y)) for x, y in pts], dtype=np.int64
            )

        async def main():
            async with QueryService(network, fake, latency_budget=0.002) as service:
                return await asyncio.gather(
                    client(service, a_pts), client(service, b_pts)
                )

        got_a, got_b = run(main())
        np.testing.assert_array_equal(got_a, fingerprint_answers(a_pts))
        np.testing.assert_array_equal(got_b, fingerprint_answers(b_pts))

    @pytest.mark.parametrize("locator,options", [
        ("brute-force", {}),
        ("sharded:voronoi", {"shards": 3}),
        ("theorem3", {"epsilon": 0.5, "cover_method": "ray_sweep"}),
    ])
    def test_every_registered_locator_kind_serves_exactly(self, network, queries,
                                                          truth, locator, options):
        answers = serve_points(
            network, queries[:300], locator, build_options=options,
            max_batch_size=64,
        )
        np.testing.assert_array_equal(answers, truth[:300])

    def test_acceptance_scale_network_serves_exactly(self, fifty_station_network):
        """The bench workload's 50-station network (same seed and box as
        benchmarks/bench_service.py) through the service, vs brute force."""
        pts = query_box_array(fifty_station_network, 1000, seed=17, margin=2.0)
        truth = build_locator(fifty_station_network, "brute-force").locate_batch(pts)
        for locator, options in (
            ("voronoi", {}),
            ("sharded:voronoi", {"shards": 8}),
        ):
            answers, snapshot = serve_points(
                fifty_station_network, pts, locator, build_options=options,
                max_batch_size=256, return_stats=True,
            )
            np.testing.assert_array_equal(answers, truth)
            assert snapshot.mean_batch_size > 1.0


# ----------------------------------------------------------------------
# Load shapes (the async load generator)
# ----------------------------------------------------------------------
class TestLoadShapes:
    def test_schedules_are_deterministic_and_shaped(self):
        first = poisson_schedule(64, rate=1000.0, seed=9)
        second = poisson_schedule(64, rate=1000.0, seed=9)
        np.testing.assert_array_equal(first, second)
        assert np.all(np.diff(first) >= 0.0)
        assert len(poisson_schedule(0, rate=10.0)) == 0

        bursts = burst_schedule(10, burst_size=4, gap=0.01)
        np.testing.assert_allclose(bursts, [0, 0, 0, 0, .01, .01, .01, .01, .02, .02])
        with pytest.raises(ValueError):
            poisson_schedule(4, rate=0.0)
        with pytest.raises(ValueError):
            burst_schedule(4, burst_size=0, gap=0.01)

    def test_all_load_shapes_round_trip(self, network, queries, truth):
        subset = queries[:240]

        async def main():
            async with QueryService(
                network, "voronoi", latency_budget=0.002, max_batch_size=128
            ) as service:
                poisson = await run_poisson(service, subset, rate=60_000.0, seed=4)
                burst = await run_bursts(service, subset, burst_size=48, gap=0.003)
                closed = await run_closed_loop(service, subset, clients=24)
                return poisson, burst, closed

        for answers in run(main()):
            np.testing.assert_array_equal(answers, truth[:240])

    def test_scheduled_offsets_must_match_points(self, network):
        async def main():
            async with QueryService(network, "voronoi") as service:
                with pytest.raises(ValueError):
                    await run_scheduled(service, np.zeros((3, 2)), [0.0, 0.1])

        run(main())


# ----------------------------------------------------------------------
# Latency budget
# ----------------------------------------------------------------------
class TestLatencyBudget:
    def test_deadline_respected_on_slow_locator(self, network):
        """A slow engine call must not stretch the accumulation window:
        batches keep sealing on budget while earlier calls still run."""
        fake = FakeLocator(delay=0.05)
        pts = query_box_array(network, 40, seed=8)
        offsets = np.linspace(0.0, 0.3, len(pts))
        budget = 0.05

        async def main():
            async with QueryService(
                network, fake, latency_budget=budget, max_batch_size=1024,
                dispatch_workers=4,
            ) as service:
                answers = await run_scheduled(service, pts, offsets)
                return answers, service.stats_snapshot()

        answers, snapshot = run(main())
        np.testing.assert_array_equal(answers, fingerprint_answers(pts))
        # The budget split the 0.3 s trickle into several batches...
        assert snapshot.batches >= 3
        # ... and no query waited much past the budget for its seal (the
        # tolerance absorbs event-loop scheduling noise on shared runners).
        assert snapshot.wait_p99 <= budget + 0.05

    def test_zero_budget_seals_immediately(self, network, queries, truth):
        async def main():
            async with QueryService(
                network, "voronoi", latency_budget=0.0, max_batch_size=1024
            ) as service:
                return await service.locate_many(queries[:100]), \
                    service.stats_snapshot()

        answers, snapshot = run(main())
        np.testing.assert_array_equal(answers, truth[:100])
        assert snapshot.completed == 100

    def test_full_batch_seals_before_budget(self, network):
        """When max_batch_size arrives instantly, sealing must not wait out
        a long latency budget."""
        fake = FakeLocator()
        pts = query_box_array(network, 64, seed=12)

        async def main():
            started = time.perf_counter()
            async with QueryService(
                network, fake, latency_budget=5.0, max_batch_size=16
            ) as service:
                await service.locate_many(pts)
            return time.perf_counter() - started

        elapsed = run(main())
        assert elapsed < 2.5  # nowhere near the 5 s budget
        assert max(fake.calls) <= 16


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_while_queued_spares_batch_mates(self, network):
        fake = FakeLocator()
        pts = query_box_array(network, 10, seed=3)
        expected = fingerprint_answers(pts)

        async def main():
            async with QueryService(
                network, fake, latency_budget=0.1, max_batch_size=1024
            ) as service:
                tasks = [
                    asyncio.ensure_future(service.locate((x, y))) for x, y in pts
                ]
                await asyncio.sleep(0.01)  # all queued, none sealed yet
                for task in tasks[::2]:
                    task.cancel()
                results = await asyncio.gather(*tasks, return_exceptions=True)
                return results, service.stats_snapshot()

        results, snapshot = run(main())
        for index, result in enumerate(results):
            if index % 2 == 0:
                assert isinstance(result, asyncio.CancelledError)
            else:
                assert result == expected[index]
        assert snapshot.cancelled == 5
        assert snapshot.completed == 5

    def test_cancel_mid_flight_spares_batch_mates(self, network):
        gated = GatedLocator()
        pts = query_box_array(network, 8, seed=4)
        expected = fingerprint_answers(pts)

        async def main():
            async with QueryService(
                network, gated, latency_budget=0.001, max_batch_size=1024
            ) as service:
                tasks = [
                    asyncio.ensure_future(service.locate((x, y))) for x, y in pts
                ]
                # Wait until the batch is sealed and inside the engine call,
                # then cancel half of its members mid-flight.
                await asyncio.get_running_loop().run_in_executor(
                    None, gated.entered.wait
                )
                for task in tasks[:4]:
                    task.cancel()
                gated.gate.set()
                results = await asyncio.gather(*tasks, return_exceptions=True)
                return results, service.stats_snapshot()

        try:
            results, snapshot = run(main())
        finally:
            gated.gate.set()
        for index, result in enumerate(results):
            if index < 4:
                assert isinstance(result, asyncio.CancelledError)
            else:
                assert result == expected[index]
        assert snapshot.completed == 4
        assert snapshot.cancelled == 4


# ----------------------------------------------------------------------
# Shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_drain_answers_in_flight_queries_immediately(self, network):
        """stop(drain=True) with a huge budget: queued queries are sealed
        at once (the budget no longer applies) and all answered."""
        fake = FakeLocator()
        pts = query_box_array(network, 20, seed=6)

        async def main():
            service = await QueryService(
                network, fake, latency_budget=30.0, max_batch_size=1024
            ).start()
            tasks = [
                asyncio.ensure_future(service.locate((x, y))) for x, y in pts
            ]
            await asyncio.sleep(0.01)
            started = time.perf_counter()
            await service.stop(drain=True)
            elapsed = time.perf_counter() - started
            return await asyncio.gather(*tasks), elapsed, service.stats_snapshot()

        answers, elapsed, snapshot = run(main())
        np.testing.assert_array_equal(np.array(answers), fingerprint_answers(pts))
        assert elapsed < 5.0  # nowhere near the 30 s budget
        assert snapshot.completed == len(pts)

    def test_abort_fails_queued_and_in_flight_queries(self, network):
        gated = GatedLocator()
        pts = query_box_array(network, 12, seed=7)

        async def main():
            service = await QueryService(
                network, gated, latency_budget=0.001, max_batch_size=6
            ).start()
            tasks = [
                asyncio.ensure_future(service.locate((x, y))) for x, y in pts
            ]
            await asyncio.get_running_loop().run_in_executor(
                None, gated.entered.wait
            )
            # One batch of 6 is blocked inside the gate; more are queued.
            await service.stop(drain=False)
            results = await asyncio.gather(*tasks, return_exceptions=True)
            with pytest.raises(ServiceClosedError):
                await service.locate((0.0, 0.0))
            return results

        try:
            results = run(main())
        finally:
            gated.gate.set()
        assert all(isinstance(r, ServiceClosedError) for r in results)

    def test_abort_accounts_cancelled_queued_entries(self, network):
        """Regression: a query cancelled while queued is counted as
        cancelled (not silently dropped) when the abort flushes the queue —
        submitted == completed + cancelled + failed must keep holding."""

        async def main():
            service = await QueryService(
                network, FakeLocator(), latency_budget=30.0, max_batch_size=1024
            ).start()
            first = asyncio.ensure_future(service.locate((0.0, 0.0)))
            second = asyncio.ensure_future(service.locate((1.0, 1.0)))
            await asyncio.sleep(0.01)  # both queued, far from the seal
            first.cancel()
            await asyncio.sleep(0)
            await service.stop(drain=False)
            await asyncio.gather(first, second, return_exceptions=True)
            return service.stats_snapshot()

        snapshot = run(main())
        assert snapshot.submitted == 2
        assert snapshot.cancelled == 1
        assert snapshot.failed == 1
        assert snapshot.completed == 0

    def test_submit_after_close_and_lifecycle_misuse(self, network):
        async def main():
            service = QueryService(network, "voronoi")
            with pytest.raises(ServiceClosedError):
                await service.locate((0.0, 0.0))  # not started yet
            await service.start()
            with pytest.raises(ServiceError):
                await service.start()  # double start
            assert service.running
            await service.stop()
            assert not service.running
            await service.stop()  # idempotent
            with pytest.raises(ServiceClosedError):
                await service.locate((0.0, 0.0))
            with pytest.raises(ServiceError):
                await service.start()  # no restart after stop

        run(main())

    def test_context_manager_drains_on_success(self, network, queries, truth):
        async def main():
            async with QueryService(network, "voronoi") as service:
                return await service.locate_many(queries[:50])

        np.testing.assert_array_equal(run(main()), truth[:50])


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_bounded_pending_throttles_admission(self, network):
        gated = GatedLocator()
        pts = query_box_array(network, 30, seed=9)

        async def main():
            async with QueryService(
                network, gated, latency_budget=0.001, max_batch_size=4,
                max_pending=8,
            ) as service:
                tasks = [
                    asyncio.ensure_future(service.locate((x, y))) for x, y in pts
                ]
                await asyncio.sleep(0.05)
                # With the engine gated shut, admission stops at max_pending:
                # the remaining submitters are parked on the capacity gate.
                admitted_while_gated = service.stats.submitted
                gated.gate.set()
                answers = await asyncio.gather(*tasks)
                return admitted_while_gated, answers, service.stats_snapshot()

        try:
            admitted, answers, snapshot = run(main())
        finally:
            gated.gate.set()
        assert admitted == 8
        np.testing.assert_array_equal(np.array(answers), fingerprint_answers(pts))
        assert snapshot.completed == len(pts)

    def test_invalid_configuration_rejected(self, network):
        for bad in (
            {"latency_budget": -0.1},
            {"max_batch_size": 0},
            {"max_pending": 0},
            {"dispatch_workers": 0},
        ):
            with pytest.raises(ServiceError):
                QueryService(network, "voronoi", **bad)
        with pytest.raises(ServiceError):
            QueryService(network, object())  # no locate_batch
        with pytest.raises(ServiceError):
            # build_options are meaningless with a pre-built locator.
            QueryService(network, FakeLocator(), build_options={"shards": 2})


# ----------------------------------------------------------------------
# Engine failures
# ----------------------------------------------------------------------
class TestEngineFailures:
    def test_engine_exception_reaches_every_submitter_once(self, network):
        flaky = FlakyOnceLocator()
        pts = query_box_array(network, 16, seed=10)

        async def main():
            async with QueryService(
                network, flaky, latency_budget=0.02, max_batch_size=1024
            ) as service:
                first = await asyncio.gather(
                    *(service.locate((x, y)) for x, y in pts),
                    return_exceptions=True,
                )
                # The service survives the failed batch and keeps serving.
                second = await service.locate_many(pts)
                return first, second, service.stats_snapshot()

        first, second, snapshot = run(main())
        assert all(isinstance(r, ValueError) for r in first)
        np.testing.assert_array_equal(second, fingerprint_answers(pts))
        assert snapshot.failed == len(pts)
        assert snapshot.completed == len(pts)

    def test_wrong_answer_shape_is_a_service_error(self, network):
        class Broken:
            name = "broken"

            def locate_batch(self, points):
                return np.zeros(len(points) + 1, dtype=np.int64)

        async def main():
            async with QueryService(network, Broken()) as service:
                with pytest.raises(ServiceError):
                    await service.locate((0.0, 0.0))

        run(main())


# ----------------------------------------------------------------------
# Engine backend interplay (the multiprocess regression)
# ----------------------------------------------------------------------
class TestBackendInterplay:
    def test_multiprocess_backend_round_trips(self, network, queries, truth):
        """Regression: the process-global multiprocess pool and the service
        event loop must not deadlock.  The pool's blocking future.result()
        runs on the dispatch thread, never on the loop; the watchdog in
        run() turns a deadlock into a failure."""
        backend = MultiprocessBackend(workers=2, min_batch_size=1)

        async def main():
            with use_backend(backend):
                async with QueryService(
                    network, "voronoi", latency_budget=0.002, max_batch_size=256
                ) as service:
                    return await service.locate_many(queries[:400])

        try:
            answers = run(main())
        finally:
            backend.close()
        np.testing.assert_array_equal(answers, truth[:400])

    def test_registered_multiprocess_name_round_trips(self, network, queries,
                                                      truth):
        """The registered "multiprocess" default (numpy fall-through below
        2048 points) through the sync facade."""
        with use_backend("multiprocess"):
            answers = serve_points(network, queries[:200], "voronoi")
        np.testing.assert_array_equal(answers, truth[:200])

    def test_backend_selection_propagates_to_dispatch_thread(self, network,
                                                             queries, truth):
        """use_backend() before start() governs dispatched batches even
        though they run on a worker thread (context capture)."""
        from repro.engine import NumpyBackend

        class SpyBackend:
            name = "spy"

            def __init__(self):
                self.inner = NumpyBackend()
                self.calls = 0

            def __getattr__(self, attr):
                target = getattr(self.inner, attr)
                if not callable(target):
                    return target

                def counted(*args, **kwargs):
                    self.calls += 1
                    return target(*args, **kwargs)

                return counted

        spy = SpyBackend()

        async def main():
            with use_backend(spy):
                async with QueryService(network, "voronoi") as service:
                    return await service.locate_many(queries[:64])

        answers = run(main())
        np.testing.assert_array_equal(answers, truth[:64])
        assert spy.calls > 0


# ----------------------------------------------------------------------
# Router, facade, stats
# ----------------------------------------------------------------------
class TestRouterAndFacade:
    def test_router_serves_each_name_with_own_batcher(self, network, queries,
                                                      truth):
        async def main():
            async with LocatorRouter(
                network,
                {"voronoi": {}, "sharded:voronoi": {"shards": 3}},
                latency_budget=0.002,
            ) as router:
                first = await router.locate_many("voronoi", queries[:150])
                second = await router.locate_many("sharded:voronoi", queries[:150])
                with pytest.raises(ServiceError):
                    await router.locate("theorem3", (0.0, 0.0))
                return first, second, router.stats_snapshots()

        first, second, snapshots = run(main())
        np.testing.assert_array_equal(first, truth[:150])
        np.testing.assert_array_equal(second, truth[:150])
        assert set(snapshots) == {"voronoi", "sharded:voronoi"}
        for snapshot in snapshots.values():
            assert snapshot.completed == 150

    def test_router_requires_a_name(self, network):
        with pytest.raises(ServiceError):
            LocatorRouter(network, [])

    def test_serve_points_facade_with_stats(self, network, queries, truth):
        answers, snapshot = serve_points(
            network, queries[:200], "voronoi", max_batch_size=64,
            return_stats=True,
        )
        np.testing.assert_array_equal(answers, truth[:200])
        assert snapshot.submitted == 200
        assert snapshot.completed == 200
        assert snapshot.mean_batch_size > 1.0
        assert "answered" in snapshot.describe()

    def test_stats_percentiles_and_empty_snapshot(self):
        stats = ServiceStats(reservoir_size=8)
        empty = stats.snapshot()
        assert np.isnan(empty.latency_p50) and np.isnan(empty.mean_batch_size)
        stats.record_batch(5, [0.001, 0.002, 0.003, 0.004, 0.005])
        for latency in (0.01, 0.02, 0.03, 0.04, 0.05):
            stats.record_completed(latency)
        snapshot = stats.snapshot()
        assert snapshot.wait_p50 == pytest.approx(0.003, abs=1e-9)
        assert snapshot.wait_p99 == pytest.approx(0.005, abs=1e-9)
        assert snapshot.latency_p99 == pytest.approx(0.05, abs=1e-9)
        assert snapshot.mean_batch_size == 5.0
        with pytest.raises(ServiceError):
            ServiceStats(reservoir_size=0)

    def test_percentile_is_nearest_rank_regression(self):
        """Pin the nearest-rank ``ceil(f*n)`` percentile definition.

        The earlier ``round(fraction * (n - 1))`` variant under-reported
        the tail: banker's rounding plus the ``n - 1`` scaling could pick
        the sample one rank below nearest-rank, so every assertion here
        fails on the pre-fix code (67 samples: p99 was 66.0; 4 and 8
        samples: p50 was the rank *above* the median).
        """
        stats = ServiceStats(reservoir_size=128)
        stats.record_batch(67, [float(value) for value in range(1, 68)])
        # Nearest rank: ceil(0.99 * 67) = 67th sample -> 67.0 (pre-fix 66.0).
        assert stats.wait_percentile(0.99) == 67.0
        assert stats.wait_percentile(0.50) == 34.0

        four = ServiceStats(reservoir_size=8)
        four.record_batch(4, [1.0, 2.0, 3.0, 4.0])
        # ceil(0.5 * 4) = 2nd sample -> 2.0 (pre-fix round(1.5) -> 3.0).
        assert four.wait_percentile(0.50) == 2.0

        eight = ServiceStats(reservoir_size=8)
        eight.record_batch(8, [float(value) for value in range(1, 9)])
        # ceil(0.5 * 8) = 4th sample -> 4.0 (pre-fix round(3.5) -> 5.0).
        assert eight.wait_percentile(0.50) == 4.0
        # Fraction edges stay clamped to the observed extremes.
        assert eight.wait_percentile(0.0) == 1.0
        assert eight.wait_percentile(1.0) == 8.0
        # Latencies go through the same reservoir percentile.
        for value in range(1, 5):
            eight.record_completed(float(value))
        assert eight.latency_percentile(0.50) == 2.0

    def test_micro_batcher_accepts_point_objects(self, network):
        from repro import Point

        fake = FakeLocator()

        async def main():
            batcher = MicroBatcher(fake.locate_batch, latency_budget=0.001)
            await batcher.start()
            try:
                return await batcher.submit(Point(1.5, 2.5))
            finally:
                await batcher.stop()

        answer = run(main())
        assert answer == int(fingerprint_answers(np.array([[1.5, 2.5]]))[0])


# ----------------------------------------------------------------------
# Epoch-versioned network swaps
# ----------------------------------------------------------------------
class ShiftedLocator(FakeLocator):
    """A second-epoch spy: fingerprint answers shifted out of the old range."""

    EPOCH_OFFSET = 1_000_000

    def locate_batch(self, points):
        return super().locate_batch(points) + self.EPOCH_OFFSET


class TestEpochSwap:
    """``swap_network``: zero lost queries, no mixed-epoch batch."""

    @staticmethod
    def _moved(network):
        from repro import Point
        from repro.model import move_station

        station = network.stations[0]
        return move_station(
            network, 0, Point(station.x + 0.4, station.y - 0.3)
        )

    def test_swap_under_live_traffic_loses_nothing(self, network, queries,
                                                   truth):
        """Every query submitted across the swap is answered exactly once,
        by one of the two epochs — never dropped, never cross-bred."""
        moved, delta = self._moved(network)
        new_truth = build_locator(moved, "voronoi").locate_batch(queries)
        count = 400

        async def main():
            async with QueryService(
                network, "voronoi", latency_budget=0.002, max_batch_size=64
            ) as service:

                async def submitter(i):
                    await asyncio.sleep((i % 40) * 0.001)
                    return i, await service.locate(queries[i])

                tasks = [
                    asyncio.create_task(submitter(i)) for i in range(count)
                ]
                await asyncio.sleep(0.01)
                await service.swap_network(moved, delta)
                answered = dict(await asyncio.gather(*tasks))
                post = await service.locate_many(queries[:100])
                return answered, post, service.stats_snapshot()

        answered, post, snapshot = run(main())
        assert len(answered) == count  # exactly once each, none lost
        for i, answer in answered.items():
            assert answer in (truth[i], new_truth[i])
        # Once the swap returns, only the new epoch answers.
        np.testing.assert_array_equal(post, new_truth[:100])
        assert snapshot.epoch == 1 and snapshot.swaps == 1
        assert snapshot.completed == count + 100 and snapshot.failed == 0

    def test_in_flight_batch_stays_on_old_epoch(self, network):
        """Spy locators across a forced in-flight swap: the sealed batch
        drains against the old epoch, post-flip batches use the new one,
        and no batch ever mixes the two."""
        old_spy = GatedLocator()
        new_spy = ShiftedLocator()
        pts = query_box_array(network, 16, seed=5)

        async def main():
            async with QueryService(
                network, old_spy, latency_budget=0.05, max_batch_size=8
            ) as service:
                wave_a = [
                    asyncio.create_task(service.locate(p)) for p in pts[:8]
                ]
                # The full batch seals and enters the gated locator.
                await asyncio.to_thread(old_spy.entered.wait, 10.0)

                swap = asyncio.create_task(
                    service.swap_network(network, locator=new_spy)
                )
                await asyncio.sleep(0.05)
                wave_b = [
                    asyncio.create_task(service.locate(p)) for p in pts[8:]
                ]
                await asyncio.sleep(0.05)
                # The flip already happened, but the drain must hold the
                # swap open while the old-epoch batch is still in flight.
                assert service.locator is new_spy
                assert not swap.done()

                old_spy.gate.set()
                answers_a = await asyncio.gather(*wave_a)
                await swap
                answers_b = await asyncio.gather(*wave_b)
                return answers_a, answers_b

        answers_a, answers_b = run(main())
        expected = fingerprint_answers(pts)
        # The in-flight batch was answered entirely by the old epoch...
        np.testing.assert_array_equal(answers_a, expected[:8])
        # ...post-flip queries entirely by the new one: no mixed batch.
        np.testing.assert_array_equal(
            answers_b, expected[8:] + ShiftedLocator.EPOCH_OFFSET
        )
        assert old_spy.calls == [8]
        assert new_spy.calls == [8]

    def test_swap_updates_sharded_locator_incrementally(self, network,
                                                        queries):
        from repro.pointlocation import ShardedLocator, get_locator

        moved, delta = self._moved(network)

        async def main():
            async with QueryService(
                network, "sharded:voronoi", build_options={"shards": 4}
            ) as service:
                installed = await service.swap_network(moved, delta)
                answers = await service.locate_many(queries[:200])
                return installed, answers, service.locator

        installed, answers, live = run(main())
        assert live is installed and isinstance(installed, ShardedLocator)
        report = installed.last_update
        assert report is not None and not report.full_rebuild
        assert 1 <= report.rebuilt <= 2  # one move touches at most 2 shards
        fresh = get_locator("sharded:voronoi").build(moved, shards=4)
        np.testing.assert_array_equal(
            answers, fresh.locate_batch(queries[:200])
        )

    def test_router_swaps_every_routed_service(self, network, queries):
        moved, delta = self._moved(network)
        new_truth = build_locator(moved, "voronoi").locate_batch(queries[:150])

        async def main():
            async with LocatorRouter(
                network, ["voronoi", "sharded:voronoi"]
            ) as router:
                await router.locate_many("voronoi", queries[:10])
                await router.swap_network(moved, delta)
                exact = await router.locate_many("voronoi", queries[:150])
                sharded = await router.locate_many(
                    "sharded:voronoi", queries[:150]
                )
                return exact, sharded, router.stats_snapshots(), router.network

        exact, sharded, snapshots, routed = run(main())
        np.testing.assert_array_equal(exact, new_truth)
        np.testing.assert_array_equal(sharded, new_truth)
        assert routed is moved
        assert all(s.epoch == 1 for s in snapshots.values())

    def test_swap_before_start_and_stats_line(self, network, queries):
        moved, delta = self._moved(network)
        new_truth = build_locator(moved, "voronoi").locate_batch(queries[:50])

        async def main():
            service = QueryService(network, "voronoi")
            await service.swap_network(moved, delta)  # not running yet: ok
            assert service.network is moved
            async with service:
                answers = await service.locate_many(queries[:50])
            return answers, service.stats_snapshot()

        answers, snapshot = run(main())
        np.testing.assert_array_equal(answers, new_truth)
        assert snapshot.epoch == 1
        assert "epoch 1 after 1 swaps" in snapshot.describe()

    def test_opaque_prebuilt_locator_cannot_rebuild(self, network):
        moved, delta = self._moved(network)

        async def main():
            async with QueryService(network, FakeLocator()) as service:
                with pytest.raises(ServiceError):
                    await service.swap_network(moved, delta)
                with pytest.raises(ServiceError):
                    await service.swap_network(moved, locator=object())

        run(main())
