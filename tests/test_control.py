"""Contract of the closed-loop controllers (:mod:`repro.control`).

The AIMD latency-budget law is unit-tested against synthetic metrics
records (each rule in isolation: SLO shrink beats pressure growth, growth
is additive and capped, light traffic decays the budget, everything else
holds); the actuation surfaces (``MicroBatcher.set_latency_budget``,
``TileCache.set_byte_budget``, ``repro.engine.set_chunk_byte_budget``) are
tested directly, including the live re-arm of a batch already waiting
under the old deadline.  Integration tests wire a controller through a
real service and assert the swap gate: control decisions never fire while
an epoch swap is building, flipping or draining.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.control import (
    AdaptiveLatencyBudget,
    CacheBudgetTuner,
    ChunkBytesTuner,
    Controller,
)
from repro.engine import DEFAULT_CHUNK_BYTES, chunk_byte_budget, set_chunk_byte_budget
from repro.exceptions import (
    ControlError,
    EngineError,
    RasterCacheError,
    ServiceError,
)
from repro.obs import MetricsHub, MetricsRecord
from repro.raster import TileCache
from repro.service import MicroBatcher, QueryService

from test_service import FakeLocator, GatedLocator


def run(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def service_record(sequence: int, timestamp: float, **metrics: float) -> MetricsRecord:
    return MetricsRecord(
        sequence=sequence, timestamp=timestamp, values={"service": dict(metrics)}
    )


class FakeBatcher:
    """Records every budget the controller applies."""

    def __init__(self):
        self.latency_budget = None
        self.applied = []

    def set_latency_budget(self, budget: float) -> None:
        self.latency_budget = budget
        self.applied.append(budget)


# ----------------------------------------------------------------------
# The AIMD latency-budget law
# ----------------------------------------------------------------------
class TestAdaptiveLatencyBudget:
    def make(self, **overrides):
        params = dict(
            min_budget=0.001,
            max_budget=0.02,
            target_wait_p99=0.01,
            increase=0.002,
            decrease=0.5,
            pressure_inflight=3,
            light_batch=2.0,
        )
        params.update(overrides)
        controller = AdaptiveLatencyBudget(**params)
        batcher = FakeBatcher()
        controller.bind(batcher)
        return controller, batcher

    def test_bind_applies_the_floor(self):
        controller, batcher = self.make()
        assert batcher.applied == [0.001]
        assert controller.budget == 0.001

    def test_first_record_only_seeds_the_baseline(self):
        controller, batcher = self.make()
        controller.emit(service_record(1, 100.0, submitted=50, inflight_batches=9))
        assert controller.holds == 1 and batcher.applied == [0.001]

    def test_pressure_grows_additively_up_to_the_cap(self):
        controller, batcher = self.make()
        timestamp, submitted = 100.0, 0.0
        controller.emit(service_record(1, timestamp, submitted=submitted))
        for tick in range(2, 15):
            timestamp += 0.1
            submitted += 500.0
            controller.emit(
                service_record(
                    tick, timestamp, submitted=submitted,
                    inflight_batches=5, wait_p99=0.001,
                )
            )
        # Additive steps from the floor, saturating at the cap.
        assert batcher.applied[1] == pytest.approx(0.003)
        assert batcher.applied[2] == pytest.approx(0.005)
        assert controller.budget == pytest.approx(0.02)
        assert controller.grows >= 9
        assert max(batcher.applied) <= 0.02

    def test_slo_breach_shrinks_multiplicatively_and_wins_over_pressure(self):
        controller, batcher = self.make()
        controller.emit(service_record(1, 100.0, submitted=0))
        controller.emit(
            service_record(2, 100.1, submitted=100, inflight_batches=5)
        )
        grown = controller.budget
        assert grown == pytest.approx(0.003)
        # Both signals present: the SLO rule must take precedence.
        controller.emit(
            service_record(
                3, 100.2, submitted=200, inflight_batches=9, wait_p99=0.02
            )
        )
        assert controller.budget == pytest.approx(grown * 0.5)
        assert controller.shrinks == 1

    def test_slo_shrink_clamps_at_the_floor(self):
        controller, batcher = self.make(decrease=0.01)
        controller.emit(service_record(1, 100.0, submitted=0))
        controller.emit(service_record(2, 100.1, submitted=10, inflight_batches=5))
        controller.emit(service_record(3, 100.2, submitted=20, wait_p99=0.5))
        assert controller.budget == 0.001  # floor, not 0.003 * 0.01

    def test_light_traffic_decays_the_budget(self):
        controller, batcher = self.make()
        controller.emit(service_record(1, 100.0, submitted=0))
        controller.emit(service_record(2, 100.1, submitted=10, inflight_batches=5))
        assert controller.budget == pytest.approx(0.003)
        # 10 queries over 1 s at a 3 ms budget -> expected batch 0.03 <= 2.
        controller.emit(service_record(3, 101.1, submitted=20, wait_p99=0.001))
        assert controller.budget == pytest.approx(0.0015)
        assert controller.shrinks == 1

    def test_steady_state_holds(self):
        controller, batcher = self.make()
        controller.emit(service_record(1, 100.0, submitted=0))
        # At the floor: light traffic cannot shrink further, no pressure.
        controller.emit(service_record(2, 100.1, submitted=1, wait_p99=0.0001))
        # Busy but healthy above the floor: high rate, no pressure, wait OK.
        controller.emit(
            service_record(3, 100.2, submitted=5001, inflight_batches=1,
                           wait_p99=0.0005)
        )
        assert controller.holds == 3 and batcher.applied == [0.001]

    def test_gate_skips_records_without_actuating(self):
        controller, batcher = self.make()
        controller.emit(service_record(1, 100.0, submitted=0))
        controller.set_gate(lambda: True)
        controller.emit(service_record(2, 100.1, submitted=10, inflight_batches=9))
        assert controller.skipped == 1 and controller.observed == 1
        assert batcher.applied == [0.001]
        controller.set_gate(lambda: False)
        controller.emit(service_record(3, 100.2, submitted=20, inflight_batches=9))
        assert controller.budget > 0.001

    def test_missing_source_is_counted_not_fatal(self):
        controller, batcher = self.make()
        controller.emit(
            MetricsRecord(sequence=1, timestamp=0.0, values={"other": {}})
        )
        assert controller.missing == 1 and batcher.applied == [0.001]

    def test_observe_unbound_raises(self):
        controller = AdaptiveLatencyBudget()
        with pytest.raises(ControlError, match="bind"):
            controller.observe(service_record(1, 0.0, submitted=0))

    def test_trace_records_every_applied_change(self):
        controller, batcher = self.make()
        controller.emit(service_record(1, 100.0, submitted=0))
        controller.emit(service_record(2, 100.1, submitted=10, inflight_batches=5))
        trace = controller.trace()
        assert len(trace) == 2  # bind + the growth
        assert trace[1] == (100.1, pytest.approx(0.003))

    @pytest.mark.parametrize(
        "bad",
        [
            dict(min_budget=-1.0),
            dict(min_budget=0.05, max_budget=0.02),
            dict(increase=0.0),
            dict(decrease=1.0),
            dict(decrease=0.0),
            dict(target_wait_p99=0.0),
            dict(pressure_inflight=0),
            dict(light_batch=-1.0),
            dict(trace_size=0),
        ],
    )
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ControlError):
            AdaptiveLatencyBudget(**bad)

    def test_base_controller_observe_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Controller().emit(service_record(1, 0.0))


# ----------------------------------------------------------------------
# Actuation surface: MicroBatcher.set_latency_budget
# ----------------------------------------------------------------------
class TestSetLatencyBudget:
    def test_negative_budget_rejected(self):
        batcher = MicroBatcher(FakeLocator().locate_batch, latency_budget=0.001)
        with pytest.raises(ServiceError):
            batcher.set_latency_budget(-0.001)

    def test_retune_rearms_a_waiting_batch(self):
        """A query already waiting under a huge budget seals promptly after
        the budget is retuned down — the deadline is recomputed live."""

        async def main():
            fake = FakeLocator()
            batcher = MicroBatcher(
                fake.locate_batch, latency_budget=60.0, max_batch_size=64
            )
            await batcher.start()
            try:
                loop = asyncio.get_running_loop()
                started = loop.time()
                pending = asyncio.ensure_future(batcher.submit((1.0, 2.0)))
                await asyncio.sleep(0.05)
                assert batcher.queue_depth == 1  # parked under the 60 s budget
                # Retune from a worker thread, as a controller would.
                await loop.run_in_executor(
                    None, batcher.set_latency_budget, 0.01
                )
                await asyncio.wait_for(pending, 10.0)
                assert loop.time() - started < 5.0  # not the 60 s deadline
                assert batcher.latency_budget == 0.01
            finally:
                await batcher.stop()

        run(main())

    def test_gauges_expose_queue_and_inflight(self):
        async def main():
            gated = GatedLocator()
            batcher = MicroBatcher(gated.locate_batch, latency_budget=0.001)
            await batcher.start()
            try:
                pending = asyncio.ensure_future(batcher.submit((1.0, 2.0)))
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, gated.entered.wait, 5)
                assert batcher.inflight_batches == 1  # sealed, executing
                assert batcher.queue_depth == 0
                gated.gate.set()
                await asyncio.wait_for(pending, 10.0)
                assert batcher.inflight_batches == 0
            finally:
                await batcher.stop()

        run(main())


# ----------------------------------------------------------------------
# Actuation surface: TileCache.set_byte_budget
# ----------------------------------------------------------------------
class FakeTile:
    def __init__(self, nbytes: int):
        self.nbytes = nbytes


class TestSetByteBudget:
    def fill(self, cache: TileCache, count: int, nbytes: int = 100):
        for index in range(count):
            cache.get_or_compute(("fp", index), lambda: FakeTile(nbytes))

    def test_shrink_evicts_lru_immediately(self):
        cache = TileCache(max_bytes=1000)
        self.fill(cache, 10)  # exactly at budget
        evicted = cache.set_byte_budget(500)
        assert evicted == 5
        stats = cache.stats()
        assert stats.tiles == 5 and stats.stored_bytes == 500
        assert stats.max_bytes == 500 and stats.evictions == 5
        # The survivors are the most recently used half.
        for index in range(5, 10):
            cache.get_or_compute(("fp", index), lambda: FakeTile(100))
        assert cache.stats().misses == 10  # no recomputation needed

    def test_grow_is_lazy(self):
        cache = TileCache(max_bytes=500)
        self.fill(cache, 5)
        assert cache.set_byte_budget(2000) == 0
        assert cache.stats().tiles == 5
        self.fill(cache, 15)  # now fits without evicting
        assert cache.stats().evictions == 0

    def test_invalid_budget_rejected(self):
        cache = TileCache(max_bytes=500)
        with pytest.raises(RasterCacheError):
            cache.set_byte_budget(0)


# ----------------------------------------------------------------------
# CacheBudgetTuner
# ----------------------------------------------------------------------
def cache_record(sequence: int, **metrics: float) -> MetricsRecord:
    return MetricsRecord(
        sequence=sequence, timestamp=float(sequence), values={"cache": dict(metrics)}
    )


class TestCacheBudgetTuner:
    def test_grows_on_thrashing(self):
        cache = TileCache(max_bytes=1000)
        tuner = CacheBudgetTuner(min_bytes=500, max_bytes=4000).bind(cache)
        tuner.emit(cache_record(1, hits=0, misses=0, evictions=0,
                                max_bytes=1000, stored_bytes=0))
        # Interval: 10 lookups, 2 hits, evictions happening -> thrash.
        tuner.emit(cache_record(2, hits=2, misses=8, evictions=6,
                                max_bytes=1000, stored_bytes=1000))
        assert tuner.grows == 1 and cache.max_bytes == 1500

    def test_holds_when_evictions_but_hit_rate_is_fine(self):
        cache = TileCache(max_bytes=1000)
        tuner = CacheBudgetTuner(
            min_bytes=500, max_bytes=4000, target_hit_rate=0.5
        ).bind(cache)
        tuner.emit(cache_record(1, hits=0, misses=0, evictions=0,
                                max_bytes=1000, stored_bytes=0))
        tuner.emit(cache_record(2, hits=9, misses=1, evictions=1,
                                max_bytes=1000, stored_bytes=1000))
        assert tuner.holds == 2 and cache.max_bytes == 1000

    def test_shrinks_idle_headroom_but_never_the_resident_set(self):
        cache = TileCache(max_bytes=4000)
        for index in range(3):
            cache.get_or_compute(("fp", index), lambda: FakeTile(500))
        tuner = CacheBudgetTuner(min_bytes=500, max_bytes=8000).bind(cache)
        tuner.emit(cache_record(1, hits=0, misses=3, evictions=0,
                                max_bytes=4000, stored_bytes=1500))
        # All-hit interval with the store well under budget: reclaim headroom.
        tuner.emit(cache_record(2, hits=50, misses=3, evictions=0,
                                max_bytes=4000, stored_bytes=1500))
        assert tuner.shrinks == 1
        assert cache.max_bytes == 3200  # 4000 * 0.8
        assert cache.stats().evictions == 0  # resident tiles untouched
        # Repeated shrinks floor out at the resident set, never below.
        for sequence in range(3, 10):
            tuner.emit(cache_record(sequence, hits=50 * sequence, misses=3,
                                    evictions=0, max_bytes=cache.max_bytes,
                                    stored_bytes=1500))
        assert cache.max_bytes >= 1500 and cache.stats().evictions == 0

    def test_observe_unbound_raises(self):
        with pytest.raises(ControlError, match="bind"):
            CacheBudgetTuner().observe(cache_record(1))

    @pytest.mark.parametrize(
        "bad",
        [
            dict(min_bytes=0),
            dict(min_bytes=100, max_bytes=50),
            dict(target_hit_rate=1.5),
            dict(grow_factor=1.0),
            dict(shrink_factor=1.0),
        ],
    )
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ControlError):
            CacheBudgetTuner(**bad)


# ----------------------------------------------------------------------
# ChunkBytesTuner + the engine override it actuates
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def clear_chunk_override():
    """The chunk override is process-global: never leak it across tests."""
    yield
    set_chunk_byte_budget(None)


class TestChunkOverride:
    def test_override_wins_and_clears(self):
        assert chunk_byte_budget() == DEFAULT_CHUNK_BYTES
        set_chunk_byte_budget(12_345_678)
        assert chunk_byte_budget() == 12_345_678
        set_chunk_byte_budget(None)
        assert chunk_byte_budget() == DEFAULT_CHUNK_BYTES

    def test_invalid_override_rejected(self):
        with pytest.raises(EngineError):
            set_chunk_byte_budget(0)
        with pytest.raises(EngineError):
            set_chunk_byte_budget(-4096)


class TestChunkBytesTuner:
    def test_installs_the_measured_argmin(self):
        ticks = iter(range(100))
        tuner = ChunkBytesTuner(
            candidates=(1000, 2000, 3000), repeats=1,
            timer=lambda: float(next(ticks)),
        )
        durations = {1000: 9.0, 2000: 2.0, 3000: 7.0}

        def probe():
            # Burn fake time proportional to the active candidate's score.
            active = chunk_byte_budget()
            for _ in range(int(durations[active]) - 1):
                next(ticks)

        chosen = tuner.tune(probe)
        assert chosen == 2000
        assert tuner.chosen == 2000
        assert chunk_byte_budget() == 2000  # winner left installed
        assert tuner.timings[2000] < tuner.timings[3000] < tuner.timings[1000]

    def test_min_of_repeats_scores_noise_robustly(self):
        clock = [0.0]

        def timer():
            return clock[0]

        tuner = ChunkBytesTuner(candidates=(1000, 2000), repeats=3, timer=timer)
        noisy = iter([5.0, 1.0, 5.0, 2.0, 2.0, 2.0])  # min: 1000 -> 1, 2000 -> 2

        def probe():
            clock[0] += next(noisy)

        assert tuner.tune(probe) == 1000

    def test_probe_failure_clears_the_override(self):
        set_chunk_byte_budget(999_999)
        tuner = ChunkBytesTuner(candidates=(1000,), repeats=1,
                                timer=lambda: 0.0)

        def probe():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            tuner.tune(probe)
        assert chunk_byte_budget() == DEFAULT_CHUNK_BYTES  # override cleared

    @pytest.mark.parametrize(
        "bad",
        [dict(candidates=()), dict(candidates=(0,)), dict(repeats=0)],
    )
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ControlError):
            ChunkBytesTuner(**bad)


# ----------------------------------------------------------------------
# Integration: controller wired through a live service
# ----------------------------------------------------------------------
class TestServiceIntegration:
    def test_owned_hub_drives_the_controller(self, ten_station_network, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "0.02")
        controller = AdaptiveLatencyBudget(min_budget=0.0005)

        async def main():
            async with QueryService(
                ten_station_network, "voronoi", controller=controller
            ) as service:
                assert service.metrics is not None and service.metrics.running
                assert service._batcher.latency_budget == 0.0005
                await service.locate((1.0, 1.0))
                await asyncio.sleep(0.08)
            assert not service.metrics.running
            return service

        service = run(main())
        # Periodic ticks plus the stop()-drained final record reached it.
        assert controller.observed >= 2
        assert service.metrics.records >= 2

    def test_controller_never_fires_mid_swap(self, ten_station_network):
        """The swap gate: records collected during build/flip/drain are
        skipped; actuation resumes once the swap completes."""

        async def main():
            hub = MetricsHub(interval=30.0)  # manual collects only
            controller = AdaptiveLatencyBudget(min_budget=0.0005)
            async with QueryService(
                ten_station_network, "voronoi",
                metrics=hub, controller=controller,
            ) as service:
                loop = asyncio.get_running_loop()
                hub.collect()  # baseline record, gate open
                assert controller.observed == 1

                gated = GatedLocator()
                await service.swap_network(ten_station_network, locator=gated)
                pending = asyncio.ensure_future(service.locate((1.0, 1.0)))
                await loop.run_in_executor(None, gated.entered.wait, 5)

                # Swap away while a gated batch is in flight: the drain
                # phase blocks until the gate opens.
                swap = asyncio.ensure_future(
                    service.swap_network(
                        ten_station_network, locator=FakeLocator()
                    )
                )
                await asyncio.sleep(0.05)
                assert service.swap_in_progress
                skipped_before = controller.skipped
                hub.collect()  # mid-drain tick: must not actuate
                hub.collect()
                assert controller.skipped == skipped_before + 2

                gated.gate.set()
                await asyncio.wait_for(swap, 30.0)
                await asyncio.wait_for(pending, 30.0)
                assert not service.swap_in_progress
                observed_before = controller.observed
                hub.collect()  # post-swap tick actuates again
                assert controller.observed == observed_before + 1

        run(main())
