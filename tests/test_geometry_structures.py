"""Tests for grids, k-d trees, Voronoi diagrams, fatness and convexity checkers."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import GeometryError
from repro.geometry import (
    Ball,
    Grid,
    KDTree,
    Point,
    Polygon,
    VoronoiDiagram,
    check_zone_convexity,
    check_zone_star_shape,
    fatness_of_polygon,
    fatness_of_predicate,
    is_convex_point_set,
    theoretical_fatness_bound,
)


class TestGrid:
    def test_cell_index_and_containment(self):
        grid = Grid(origin=Point(0, 0), spacing=1.0)
        assert grid.cell_index_of(Point(0.5, 0.5)) == (0, 0)
        assert grid.cell_index_of(Point(-0.5, 0.5)) == (-1, 0)
        assert grid.cell_index_of(Point(2.3, -1.7)) == (2, -2)

    def test_half_open_tie_breaking(self):
        grid = Grid(origin=Point(0, 0), spacing=1.0)
        # A point on the shared edge belongs to the cell having it as its
        # west edge (i.e. the cell to the east).
        assert grid.cell_index_of(Point(1.0, 0.5)) == (1, 0)
        assert grid.cell_index_of(Point(0.5, 1.0)) == (0, 1)
        cell = grid.cell(0, 0)
        assert cell.contains(Point(0.0, 0.0))
        assert not cell.contains(Point(1.0, 0.5))

    def test_cell_geometry(self):
        grid = Grid(origin=Point(1, 1), spacing=2.0)
        cell = grid.cell(1, -1)
        assert cell.lower_left == Point(3, -1)
        assert cell.upper_right == Point(5, 1)
        assert cell.center == Point(4, 0)
        assert len(cell.corners()) == 4
        assert len(cell.edges()) == 4
        assert all(edge.length() == pytest.approx(2.0) for edge in cell.edges())

    def test_nine_cell_and_neighbours(self):
        grid = Grid(origin=Point(0, 0), spacing=1.0)
        nine = grid.nine_cell((0, 0))
        assert len(nine) == 9 and (0, 0) in nine and (-1, -1) in nine
        assert len(grid.neighbours((0, 0), diagonal=True)) == 8
        assert len(grid.neighbours((0, 0), diagonal=False)) == 4

    def test_nine_cell_boundary_edges(self):
        grid = Grid(origin=Point(0, 0), spacing=1.0)
        edges = grid.nine_cell_boundary_edges((0, 0))
        assert len(edges) == 12
        assert all(edge.length() == pytest.approx(1.0) for edge in edges)

    def test_cells_in_box(self):
        grid = Grid(origin=Point(0, 0), spacing=1.0)
        cells = list(grid.cells_in_box(Point(0, 0), Point(3, 2)))
        assert len(cells) == 6

    def test_positive_spacing_required(self):
        with pytest.raises(GeometryError):
            Grid(origin=Point(0, 0), spacing=0.0)


class TestKDTree:
    def test_nearest_matches_brute_force(self):
        rng = random.Random(3)
        points = [Point(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(60)]
        tree = KDTree(points)
        for _ in range(100):
            query = Point(rng.uniform(-12, 12), rng.uniform(-12, 12))
            expected = min(range(len(points)), key=lambda i: points[i].distance_to(query))
            index, point, dist = tree.nearest(query)
            assert points[index].distance_to(query) == pytest.approx(
                points[expected].distance_to(query)
            )
            assert dist == pytest.approx(point.distance_to(query))

    def test_within_radius(self):
        points = [Point(0, 0), Point(1, 0), Point(5, 5)]
        tree = KDTree(points)
        assert tree.within_radius(Point(0, 0), 1.5) == [0, 1]
        assert tree.within_radius(Point(0, 0), 0.5) == [0]

    def test_empty_input_rejected(self):
        with pytest.raises(GeometryError):
            KDTree([])

    def test_len(self):
        assert len(KDTree([Point(0, 0), Point(1, 1)])) == 2


class TestVoronoi:
    def test_nearest_site_agrees_with_cells(self):
        sites = [Point(0, 0), Point(4, 0), Point(2, 3), Point(-1, 4)]
        diagram = VoronoiDiagram(sites)
        rng = random.Random(11)
        for _ in range(200):
            query = Point(rng.uniform(-3, 6), rng.uniform(-3, 6))
            nearest = min(range(len(sites)), key=lambda i: sites[i].distance_to(query))
            assert diagram.nearest_site(query) == nearest

    def test_cells_partition_and_contain_their_sites(self):
        sites = [Point(0, 0), Point(3, 1), Point(1, 4)]
        diagram = VoronoiDiagram(sites)
        for cell in diagram.cells:
            assert cell.contains(cell.site)

    def test_duplicate_sites_rejected(self):
        with pytest.raises(GeometryError):
            VoronoiDiagram([Point(0, 0), Point(0, 0)])

    def test_locate_returns_owning_cell(self):
        diagram = VoronoiDiagram([Point(0, 0), Point(10, 0)])
        assert diagram.locate(Point(1, 1)).site_index == 0
        assert diagram.locate(Point(9, 1)).site_index == 1


class TestFatness:
    def test_fatness_of_disk_polygon_is_one(self):
        disk = Polygon.regular(Point(0, 0), 2.0, 256)
        measurement = fatness_of_polygon(disk, Point(0, 0))
        assert measurement.fatness == pytest.approx(1.0, rel=1e-3)

    def test_fatness_of_rectangle(self):
        rectangle = Polygon(
            [Point(-4, -1), Point(4, -1), Point(4, 1), Point(-4, 1)]
        )
        measurement = fatness_of_polygon(rectangle, Point(0, 0))
        assert measurement.delta == pytest.approx(1.0)
        assert measurement.Delta == pytest.approx(math.sqrt(17.0))

    def test_fatness_requires_internal_point(self):
        square = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])
        with pytest.raises(GeometryError):
            fatness_of_polygon(square, Point(5, 5))

    def test_fatness_of_predicate_ball(self):
        ball = Ball(Point(1, 1), 2.0)
        measurement = fatness_of_predicate(
            ball.contains, Point(1, 1), max_radius=5.0, angles=72
        )
        assert measurement.delta == pytest.approx(2.0, rel=1e-3)
        assert measurement.Delta == pytest.approx(2.0, rel=1e-3)

    def test_theoretical_bound_decreases_with_beta(self):
        assert theoretical_fatness_bound(2.0) > theoretical_fatness_bound(6.0) > 1.0

    def test_theoretical_bound_requires_beta_above_one(self):
        with pytest.raises(GeometryError):
            theoretical_fatness_bound(1.0)


class TestConvexityCheckers:
    def test_convex_point_set(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert is_convex_point_set(square)
        concave = [Point(0, 0), Point(2, 0), Point(1, 0.2), Point(1, 2)]
        assert not is_convex_point_set(concave)

    def test_zone_convexity_check_passes_for_disk(self):
        ball = Ball(Point(0, 0), 2.0)
        points = ball.sample_boundary(16)
        points = [p * 0.95 for p in points]
        report = check_zone_convexity(ball.contains, points, samples_per_segment=20)
        assert report.is_consistent

    def test_zone_convexity_check_detects_non_convex_zone(self):
        # Union of two disjoint disks is not convex.
        left = Ball(Point(-3, 0), 1.0)
        right = Ball(Point(3, 0), 1.0)

        def inside(point: Point) -> bool:
            return left.contains(point) or right.contains(point)

        report = check_zone_convexity(
            inside, [Point(-3, 0), Point(3, 0)], samples_per_segment=33
        )
        assert not report.is_consistent
        assert report.violation is not None

    def test_star_shape_check(self):
        ball = Ball(Point(0, 0), 1.0)
        report = check_zone_star_shape(
            ball.contains, Point(0, 0), ball.sample_boundary(12)
        )
        assert report.is_consistent

    def test_star_shape_requires_center_inside(self):
        ball = Ball(Point(0, 0), 1.0)
        with pytest.raises(GeometryError):
            check_zone_star_shape(ball.contains, Point(5, 5), [Point(0, 0)])
