"""Tests for the workload generators and the scenario catalogue."""

from __future__ import annotations

import itertools

import pytest

from repro import Point, WirelessNetwork
from repro.exceptions import NetworkConfigurationError
from repro.workloads import (
    SCENARIOS,
    clustered_network,
    clustered_outliers_network,
    colinear_network,
    grid_network,
    locator_sweep_names,
    point_location_networks,
    random_query_points,
    ring_network,
    scenario,
    scenario_names,
    sharding_networks,
    theorem_verification_networks,
    two_station_network,
    uniform_random_network,
)


class TestGenerators:
    def test_uniform_random_network_properties(self):
        network = uniform_random_network(
            8, side=20.0, minimum_separation=2.0, beta=3.0, seed=1
        )
        assert len(network) == 8
        assert network.is_uniform_power()
        for a, b in itertools.combinations(network.locations(), 2):
            assert a.distance_to(b) >= 2.0
        for location in network.locations():
            assert 0.0 <= location.x <= 20.0 and 0.0 <= location.y <= 20.0

    def test_uniform_random_network_is_deterministic_per_seed(self):
        first = uniform_random_network(5, seed=42)
        second = uniform_random_network(5, seed=42)
        different = uniform_random_network(5, seed=43)
        assert first.locations() == second.locations()
        assert first.locations() != different.locations()

    def test_infeasible_density_raises(self):
        with pytest.raises(NetworkConfigurationError):
            uniform_random_network(
                50, side=1.0, minimum_separation=5.0, max_attempts=500
            )

    def test_clustered_network(self):
        network = clustered_network(3, 4, seed=7)
        assert len(network) == 12

    def test_clustered_outliers_network(self):
        network = clustered_outliers_network(
            3, 5, outlier_count=4, side=30.0, cluster_spread=1.0,
            minimum_separation=0.3, seed=9,
        )
        assert len(network) == 3 * 5 + 4
        assert network.is_uniform_power()
        for a, b in itertools.combinations(network.locations(), 2):
            assert a.distance_to(b) >= 0.3
        # Deterministic per seed, like every other generator.
        again = clustered_outliers_network(
            3, 5, outlier_count=4, side=30.0, cluster_spread=1.0,
            minimum_separation=0.3, seed=9,
        )
        assert network.locations() == again.locations()
        with pytest.raises(NetworkConfigurationError):
            clustered_outliers_network(1, 1, outlier_count=-1)
        with pytest.raises(NetworkConfigurationError):
            clustered_outliers_network(1, 1, outlier_count=0)

    def test_ring_and_grid_networks(self):
        ring = ring_network(6, radius=5.0)
        assert len(ring) == 6
        center = Point(0.0, 0.0)
        for location in ring.locations():
            assert location.distance_to(center) == pytest.approx(5.0)
        grid = grid_network(2, 3, spacing=2.0)
        assert len(grid) == 6
        assert Point(4.0, 2.0) in grid.locations()

    def test_colinear_network_is_positive_colinear(self):
        network = colinear_network(5, spacing=1.5)
        assert network.locations()[0] == Point(0.0, 0.0)
        for location in network.locations()[1:]:
            assert location.y == 0.0 and location.x > 0.0

    def test_two_station_network(self):
        network = two_station_network(separation=3.0, power_ratio=2.0, beta=2.0)
        assert len(network) == 2
        assert network.station(1).power == 2.0
        with pytest.raises(NetworkConfigurationError):
            two_station_network(separation=0.0)

    def test_random_query_points(self):
        points = random_query_points(50, Point(0, 0), Point(2, 3), seed=5)
        assert len(points) == 50
        assert all(0 <= p.x <= 2 and 0 <= p.y <= 3 for p in points)
        assert points == random_query_points(50, Point(0, 0), Point(2, 3), seed=5)

    def test_validation_of_small_inputs(self):
        with pytest.raises(NetworkConfigurationError):
            uniform_random_network(1)
        with pytest.raises(NetworkConfigurationError):
            ring_network(1)
        with pytest.raises(NetworkConfigurationError):
            colinear_network(1)
        with pytest.raises(NetworkConfigurationError):
            grid_network(1, 1)


class TestScenarioCatalogue:
    def test_every_scenario_builds_a_valid_network(self):
        for name in scenario_names():
            network = scenario(name).network()
            assert isinstance(network, WirelessNetwork)
            assert len(network) >= 2
            assert network.is_uniform_power()

    def test_scenarios_are_deterministic(self):
        first = scenario("small-random").network()
        second = scenario("small-random").network()
        assert first.locations() == second.locations()

    def test_catalogue_contents(self):
        assert "small-random" in SCENARIOS
        assert "colinear" in SCENARIOS
        assert len(scenario_names()) == len(SCENARIOS)

    def test_curated_benchmark_lists(self):
        theorem_networks = theorem_verification_networks()
        assert len(theorem_networks) >= 5
        for name, network in theorem_networks:
            assert name in SCENARIOS
            assert network.beta > 1.0
        location_networks = point_location_networks()
        assert all(network.beta > 1.0 for _, network in location_networks)

    def test_sharding_networks_are_in_the_sharded_regime(self):
        networks = sharding_networks()
        assert any(name == "clustered-outliers" for name, _ in networks)
        for name, network in networks:
            assert name in SCENARIOS
            # The regime the sharded locator requires (Theorem 4.1 routing).
            assert network.is_uniform_power()
            assert network.beta > 1.0
            assert network.alpha == 2.0

    def test_locator_sweep_names_resolve_in_the_registry(self):
        names = locator_sweep_names()
        assert "theorem3" in names
        assert any(name.startswith("sharded:") for name in names)
        # validate=True already resolved each name through get_locator.
