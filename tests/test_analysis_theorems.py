"""Tests for the numerical theorem-verification harness (Theorems 1, 2; Lemmas 2.1, 3.1)."""

from __future__ import annotations

import math

import pytest

from repro import Point, SINRDiagram, WirelessNetwork
from repro.analysis import (
    verify_lemma_2_1,
    verify_network_convexity,
    verify_network_fatness,
    verify_zone_convexity,
    verify_zone_fatness,
    verify_zone_star_shape,
)


@pytest.fixture(scope="module")
def convex_regime_diagram():
    network = WirelessNetwork.uniform(
        [(0.0, 0.0), (5.0, 0.0), (1.0, 6.0), (-4.0, 3.0)], noise=0.01, beta=2.0
    )
    return SINRDiagram(network)


@pytest.fixture(scope="module")
def figure5_diagram(sub_unit_beta_network=None):
    network = WirelessNetwork.uniform(
        [(-2.0, -1.0), (2.0, -1.0), (0.0, 2.0)], noise=0.05, beta=0.3
    )
    return SINRDiagram(network)


class TestTheorem1Convexity:
    def test_zones_are_convex_in_the_theorem_regime(self, convex_regime_diagram):
        for index in range(len(convex_regime_diagram)):
            result = verify_zone_convexity(
                convex_regime_diagram.zone(index), sample_points=50, max_pairs=400
            )
            assert result.is_convex, f"zone {index} reported non-convex: {result.violation}"
            assert result.segments_checked > 0

    def test_network_level_helper(self, convex_regime_diagram):
        results = verify_network_convexity(
            convex_regime_diagram.network, sample_points=30, max_pairs=150
        )
        assert len(results) == 4
        assert all(result.is_convex for result in results)

    def test_non_convexity_is_detected_for_beta_below_one(self, figure5_diagram):
        # Figure 5 regime: at least one zone must be flagged as non-convex.
        results = [
            verify_zone_convexity(
                figure5_diagram.zone(index), sample_points=120, max_pairs=1500, seed=3
            )
            for index in range(len(figure5_diagram))
        ]
        assert any(not result.is_convex for result in results)
        violating = next(result for result in results if not result.is_convex)
        p1, p2, witness = violating.violation
        zone = figure5_diagram.zone(violating.station)
        assert zone.contains(p1) and zone.contains(p2) and not zone.contains(witness)

    def test_degenerate_zone_is_trivially_convex(self):
        network = WirelessNetwork.uniform([(0, 0), (0, 0), (4, 0)], beta=2.0)
        result = verify_zone_convexity(SINRDiagram(network).zone(0))
        assert result.is_convex and result.segments_checked == 0


class TestLemma31StarShape:
    def test_zones_are_star_shaped(self, convex_regime_diagram):
        for index in range(len(convex_regime_diagram)):
            result = verify_zone_star_shape(
                convex_regime_diagram.zone(index), rays=36, samples_per_ray=24
            )
            assert result.is_star_shaped
            assert result.rays_checked == 36

    def test_star_shape_holds_even_for_beta_below_one(self, figure5_diagram):
        # Lemma 3.1 needs SINR >= 1 at the endpoint; with beta < 1 zones need
        # not be convex, yet every zone still contains the segment from the
        # station to any zone point with SINR >= 1.  We only check the zones
        # around their own stations, where the lemma's premise holds.
        result = verify_zone_star_shape(figure5_diagram.zone(0), rays=24)
        assert result.rays_checked == 24


class TestLemma21LineCrossings:
    def test_lines_cross_convex_boundaries_at_most_twice(self, convex_regime_diagram):
        for index in range(len(convex_regime_diagram)):
            result = verify_lemma_2_1(convex_regime_diagram.zone(index), lines=30)
            assert result.holds, f"zone {index}: {result.max_crossings} crossings"
            assert result.lines_checked == 30


class TestTheorem2Fatness:
    def test_fatness_bound_holds_across_zones(self, convex_regime_diagram):
        results = verify_network_fatness(convex_regime_diagram.network, angles=120)
        assert len(results) == 4
        for result in results:
            assert result.delta <= result.Delta
            assert result.satisfies_bound

    def test_fatness_bound_value(self, convex_regime_diagram):
        result = verify_zone_fatness(convex_regime_diagram.zone(0), angles=90)
        beta = convex_regime_diagram.network.beta
        assert result.bound == pytest.approx(
            (math.sqrt(beta) + 1) / (math.sqrt(beta) - 1)
        )

    def test_two_station_network_attains_the_bound(self):
        # Lemma 4.3: with equal powers the ratio equals (sqrt(beta)+1)/(sqrt(beta)-1).
        network = WirelessNetwork.uniform([(0, 0), (4, 0)], noise=0.0, beta=2.0)
        result = verify_zone_fatness(SINRDiagram(network).zone(0), angles=360)
        assert result.fatness == pytest.approx(result.bound, rel=1e-3)

    def test_degenerate_zones_are_skipped(self):
        network = WirelessNetwork.uniform([(0, 0), (0, 0), (4, 0)], beta=2.0)
        results = verify_network_fatness(network, angles=60)
        assert len(results) == 1  # only the non-degenerate station
