"""Shared fixtures and seeded-workload helpers for the test suite.

Networks used across many test modules are defined once here.  They are kept
deliberately small so that the whole suite runs in a couple of minutes; the
larger sweeps live in the benchmark harness.

Besides the small hand-crafted fixtures, the *seeded random workload*
construction shared by the engine, locator-registry, sharding and service
test modules lives in :mod:`seeded_workloads` (:func:`seeded_network`, a
deterministic ``uniform_random_network`` in the suite's standard regime,
and :func:`query_box_array`, a seeded query batch over a network's bounding
box plus margin) and is wrapped here as the ``query_box`` fixture plus the
standard 10- and 50-station network fixtures.  Test modules that build
networks inside parametrised test bodies (where fixtures cannot reach)
import the helpers from ``seeded_workloads`` directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Point, SINRDiagram, WirelessNetwork

from seeded_workloads import query_box_array, seeded_network


@pytest.fixture(scope="session")
def query_box():
    """The :func:`query_box_array` factory, as a fixture."""
    return query_box_array


@pytest.fixture(scope="session")
def seeded_rng() -> np.random.Generator:
    """A session-stable numpy RNG for tests that need ad-hoc randomness."""
    return np.random.default_rng(20090810)  # PODC'09 vintage


@pytest.fixture(scope="session")
def ten_station_network() -> WirelessNetwork:
    """The standard 10-station network of the locator/registry/service tests."""
    return seeded_network(10, side=16.0, seed=3)


@pytest.fixture(scope="session")
def fifty_station_network() -> WirelessNetwork:
    """The standard 50-station network at the service acceptance scale.

    Parameter-identical to the workload of ``benchmarks/bench_service.py``
    and ``examples/point_location_service.py`` (50 stations, seed 23, side
    ``4 * sqrt(50)``), so tests built on it cross-check the same network
    the gated benchmark serves.
    """
    return seeded_network(
        50, side=4.0 * 50 ** 0.5, seed=23, minimum_separation=1.5, noise=0.002
    )


@pytest.fixture
def two_station_network() -> WirelessNetwork:
    """The smallest non-trivial uniform power network (beta > 1, no noise)."""
    return WirelessNetwork.uniform([(0.0, 0.0), (4.0, 0.0)], noise=0.0, beta=2.0)


@pytest.fixture
def three_station_network() -> WirelessNetwork:
    """Three stations, no noise, beta = 1 (the Section 3.2 setting)."""
    return WirelessNetwork.uniform(
        [(0.0, 0.0), (4.0, 1.0), (1.0, 5.0)], noise=0.0, beta=1.0
    )


@pytest.fixture
def noisy_network() -> WirelessNetwork:
    """Five stations with background noise and beta > 1 (general Theorem 1 regime)."""
    return WirelessNetwork.uniform(
        [(0.0, 0.0), (4.0, 0.0), (0.0, 5.0), (6.0, 6.0), (-3.0, 2.0)],
        noise=0.01,
        beta=3.0,
    )


@pytest.fixture
def noisy_diagram(noisy_network) -> SINRDiagram:
    return SINRDiagram(noisy_network)


@pytest.fixture
def sub_unit_beta_network() -> WirelessNetwork:
    """The Figure 5 regime (beta < 1), where convexity genuinely fails."""
    return WirelessNetwork.uniform(
        [(-2.0, -1.0), (2.0, -1.0), (0.0, 2.0)], noise=0.05, beta=0.3
    )


@pytest.fixture
def origin() -> Point:
    return Point(0.0, 0.0)
