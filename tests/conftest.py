"""Shared fixtures for the test suite.

Networks used across many test modules are defined once here.  They are kept
deliberately small so that the whole suite runs in a couple of minutes; the
larger sweeps live in the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro import Point, SINRDiagram, WirelessNetwork


@pytest.fixture
def two_station_network() -> WirelessNetwork:
    """The smallest non-trivial uniform power network (beta > 1, no noise)."""
    return WirelessNetwork.uniform([(0.0, 0.0), (4.0, 0.0)], noise=0.0, beta=2.0)


@pytest.fixture
def three_station_network() -> WirelessNetwork:
    """Three stations, no noise, beta = 1 (the Section 3.2 setting)."""
    return WirelessNetwork.uniform(
        [(0.0, 0.0), (4.0, 1.0), (1.0, 5.0)], noise=0.0, beta=1.0
    )


@pytest.fixture
def noisy_network() -> WirelessNetwork:
    """Five stations with background noise and beta > 1 (general Theorem 1 regime)."""
    return WirelessNetwork.uniform(
        [(0.0, 0.0), (4.0, 0.0), (0.0, 5.0), (6.0, 6.0), (-3.0, 2.0)],
        noise=0.01,
        beta=3.0,
    )


@pytest.fixture
def noisy_diagram(noisy_network) -> SINRDiagram:
    return SINRDiagram(noisy_network)


@pytest.fixture
def sub_unit_beta_network() -> WirelessNetwork:
    """The Figure 5 regime (beta < 1), where convexity genuinely fails."""
    return WirelessNetwork.uniform(
        [(-2.0, -1.0), (2.0, -1.0), (0.0, 2.0)], noise=0.05, beta=0.3
    )


@pytest.fixture
def origin() -> Point:
    return Point(0.0, 0.0)
