"""Tests for polygons, convex hulls and half-plane clipping."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import GeometryError
from repro.geometry import Line, Point, Polygon, convex_hull


def unit_square() -> Polygon:
    return Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])


class TestPolygonBasics:
    def test_needs_at_least_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_area_perimeter_centroid_of_square(self):
        square = unit_square()
        assert square.area() == pytest.approx(1.0)
        assert square.perimeter() == pytest.approx(4.0)
        assert square.centroid().is_close(Point(0.5, 0.5))

    def test_signed_area_orientation(self):
        counter_clockwise = unit_square()
        clockwise = Polygon(list(reversed(counter_clockwise.vertices)))
        assert counter_clockwise.signed_area() > 0
        assert clockwise.signed_area() < 0
        assert clockwise.area() == pytest.approx(counter_clockwise.area())

    def test_bounding_box(self):
        lower, upper = unit_square().bounding_box()
        assert lower == Point(0, 0) and upper == Point(1, 1)

    def test_edges_count(self):
        assert len(unit_square().edges()) == 4


class TestContainmentAndConvexity:
    def test_contains_interior_boundary_and_exterior(self):
        square = unit_square()
        assert square.contains(Point(0.5, 0.5))
        assert square.contains(Point(0.0, 0.5))  # boundary counts as inside
        assert not square.contains(Point(1.5, 0.5))

    def test_convexity_detection(self):
        assert unit_square().is_convex()
        concave = Polygon(
            [Point(0, 0), Point(2, 0), Point(2, 2), Point(1, 0.5), Point(0, 2)]
        )
        assert not concave.is_convex()

    def test_regular_polygon_approximates_ball(self):
        polygon = Polygon.regular(Point(0, 0), 1.0, 64)
        assert polygon.is_convex()
        assert polygon.area() == pytest.approx(math.pi, rel=5e-3)
        assert polygon.perimeter() == pytest.approx(2 * math.pi, rel=5e-3)

    def test_regular_polygon_needs_three_sides(self):
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), 1.0, 2)


class TestClipping:
    def test_clip_square_in_half(self):
        square = unit_square()
        vertical = Line.vertical(0.5)
        left = square.clip_to_half_plane(vertical, keep_side=vertical.side(Point(0, 0)))
        assert left is not None
        assert left.area() == pytest.approx(0.5)

    def test_clip_away_everything_returns_none(self):
        square = unit_square()
        line = Line.vertical(5.0)
        side_away_from_square = line.side(Point(10, 0))
        assert square.clip_to_half_plane(line, keep_side=side_away_from_square) is None

    def test_clip_that_keeps_everything(self):
        square = unit_square()
        line = Line.vertical(5.0)
        side_of_square = line.side(Point(0, 0))
        clipped = square.clip_to_half_plane(line, keep_side=side_of_square)
        assert clipped is not None
        assert clipped.area() == pytest.approx(1.0)

    def test_invalid_keep_side_rejected(self):
        with pytest.raises(GeometryError):
            unit_square().clip_to_half_plane(Line.vertical(0.5), keep_side=0)

    def test_axis_aligned_box_validation(self):
        with pytest.raises(GeometryError):
            Polygon.axis_aligned_box(Point(1, 1), Point(0, 0))


class TestConvexHull:
    def test_hull_of_square_with_interior_points(self):
        points = [
            Point(0, 0),
            Point(1, 0),
            Point(1, 1),
            Point(0, 1),
            Point(0.5, 0.5),
            Point(0.25, 0.75),
        ]
        hull = convex_hull(points)
        assert len(hull) == 4
        assert set((p.x, p.y) for p in hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_hull_of_collinear_points(self):
        hull = convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])
        assert len(hull) == 2

    def test_hull_of_two_points(self):
        assert len(convex_hull([Point(0, 0), Point(1, 0)])) == 2

    def test_hull_is_counter_clockwise(self):
        hull = convex_hull([Point(0, 0), Point(2, 0), Point(1, 2), Point(1, 0.5)])
        polygon = Polygon(hull)
        assert polygon.signed_area() > 0
