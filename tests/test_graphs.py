"""Tests for the graph-based baseline models (UDG, Q-UDG, interference graphs)."""

from __future__ import annotations

import pytest

from repro import Point, WirelessNetwork
from repro.exceptions import NetworkConfigurationError
from repro.graphs import (
    InterferenceGraphModel,
    ModelComparator,
    QuasiUnitDiskGraph,
    ReceptionOutcome,
    UnitDiskGraph,
    two_hop_augmentation,
)


def line_locations():
    return [Point(0, 0), Point(1, 0), Point(2, 0), Point(5, 0)]


class TestUnitDiskGraph:
    def test_adjacency(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        assert udg.are_adjacent(0, 1)
        assert udg.are_adjacent(1, 2)
        assert not udg.are_adjacent(0, 2)
        assert not udg.are_adjacent(0, 0)
        assert udg.neighbours(1) == [0, 2]
        assert udg.degree(1) == 2

    def test_graph_connectivity(self):
        assert not UnitDiskGraph(line_locations(), radius=1.0).is_connected()
        assert UnitDiskGraph(line_locations(), radius=3.0).is_connected()

    def test_validation(self):
        with pytest.raises(NetworkConfigurationError):
            UnitDiskGraph([], radius=1.0)
        with pytest.raises(NetworkConfigurationError):
            UnitDiskGraph([Point(0, 0)], radius=0.0)

    def test_station_reception_rule(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        # Station 0 hears station 1 when only station 1 transmits...
        assert udg.station_receives(0, 1, transmitters={1})
        # ...but not when station 2 (a neighbour of... station 1 only) also
        # transmits: 2 is not adjacent to 0, so reception still succeeds.
        assert udg.station_receives(0, 1, transmitters={1, 2})
        # Station 1 cannot hear station 0 if station 2 transmits (collision).
        assert not udg.station_receives(1, 0, transmitters={0, 2})
        # A non-transmitting sender is never received.
        assert not udg.station_receives(0, 1, transmitters={2})

    def test_point_reception_rule(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        probe = Point(0.5, 0.0)  # covered by stations 0 and 1
        assert udg.point_receives(probe, 0, transmitters={0})
        assert not udg.point_receives(probe, 0, transmitters={0, 1})
        assert not udg.point_receives(Point(10.0, 0.0), 0, transmitters={0})

    def test_station_heard_at(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        assert udg.station_heard_at(Point(5.0, 0.5)) == 3
        assert udg.station_heard_at(Point(0.5, 0.0)) is None  # collision
        assert udg.station_heard_at(Point(20.0, 0.0)) is None  # out of range

    def test_independent_transmitters(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        assert udg.independent_transmitters({0, 2})
        assert not udg.independent_transmitters({0, 1})

    def test_from_network(self, noisy_network):
        udg = UnitDiskGraph.from_network(noisy_network, radius=5.0)
        assert len(udg) == len(noisy_network)


class TestQuasiUnitDiskGraph:
    def test_radius_validation(self):
        with pytest.raises(NetworkConfigurationError):
            QuasiUnitDiskGraph(line_locations(), inner_radius=2.0, outer_radius=1.0)
        with pytest.raises(NetworkConfigurationError):
            QuasiUnitDiskGraph(line_locations(), inner_radius=0.0, outer_radius=1.0)

    def test_connectivity_and_interference_graphs(self):
        qudg = QuasiUnitDiskGraph(line_locations(), inner_radius=1.0, outer_radius=2.0)
        assert qudg.connectivity_graph.has_edge(0, 1)
        assert not qudg.connectivity_graph.has_edge(0, 2)
        assert qudg.interference_graph.has_edge(0, 2)
        assert qudg.radius_ratio == pytest.approx(2.0)

    def test_point_reception_tri_valued(self):
        qudg = QuasiUnitDiskGraph(line_locations(), inner_radius=1.0, outer_radius=2.0)
        # Close to station 3 with nobody else around: certain reception.
        assert qudg.point_reception(Point(5.2, 0.0), 3, transmitters={3}) == "received"
        # Beyond the outer radius: certainly not received.
        assert qudg.point_reception(Point(8.0, 0.0), 3, transmitters={3}) == "not_received"
        # Between the radii: uncertain.
        assert qudg.point_reception(Point(6.5, 0.0), 3, transmitters={3}) == "uncertain"
        # A competing transmitter within its inner radius kills reception.
        assert (
            qudg.point_reception(Point(0.5, 0.0), 0, transmitters={0, 1})
            == "not_received"
        )

    def test_station_reception_tri_valued(self):
        qudg = QuasiUnitDiskGraph(line_locations(), inner_radius=1.0, outer_radius=2.5)
        assert qudg.station_receives(0, 1, transmitters={1}) == "received"
        assert qudg.station_receives(3, 0, transmitters={0}) == "not_received"
        assert qudg.station_receives(0, 2, transmitters={2}) == "uncertain"

    def test_derived_from_sinr_network(self):
        network = WirelessNetwork.uniform(
            [(0, 0), (6, 0), (0, 6), (6, 6)], noise=0.0, beta=2.0
        )
        qudg = QuasiUnitDiskGraph.from_sinr_network(network, angles=60)
        assert 0.0 < qudg.inner_radius <= qudg.outer_radius
        # By Theorem 2 the ratio is bounded by the fatness constant.
        bound = (2.0 ** 0.5 + 1) / (2.0 ** 0.5 - 1)
        assert qudg.radius_ratio <= bound * 1.5  # slack for heterogeneous spacing


class TestInterferenceGraphModel:
    def test_two_hop_augmentation(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        augmented = two_hop_augmentation(udg.graph)
        assert augmented.has_edge(0, 2)
        assert not augmented.has_edge(0, 3)

    def test_from_udg_reception(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        model = InterferenceGraphModel.from_udg(udg)
        assert model.station_receives(0, 1, transmitters={1})
        assert not model.station_receives(1, 0, transmitters={0, 2})

    def test_two_hop_interference_is_more_conservative(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        plain = InterferenceGraphModel.from_udg(udg)
        two_hop = InterferenceGraphModel.from_udg_with_two_hop_interference(udg)
        # Station 0 hears 1 while 2 transmits under the plain model, but not
        # under 2-hop interference (2 is a 2-hop neighbour of 0).
        assert plain.station_receives(0, 1, transmitters={1, 2})
        assert not two_hop.station_receives(0, 1, transmitters={1, 2})

    def test_node_set_validation(self):
        import networkx as nx

        bad = nx.Graph()
        bad.add_nodes_from([10, 11])
        with pytest.raises(NetworkConfigurationError):
            InterferenceGraphModel(line_locations(), bad, bad)

    def test_feasible_links_and_greedy_round(self):
        udg = UnitDiskGraph(line_locations(), radius=1.0)
        model = InterferenceGraphModel.from_udg(udg)
        links = model.feasible_links(transmitters={1, 3})
        assert (3, 2) not in links  # 3 is too far from everyone
        assert all(sender in (1, 3) for sender, _ in links)
        round_ = model.maximum_independent_transmission_round()
        assert model.locations and round_
        assert InterferenceGraphModel.from_qudg(
            QuasiUnitDiskGraph(line_locations(), 1.0, 2.0)
        ).station_receives(0, 1, transmitters={1})


class TestModelComparator:
    def test_figure2_false_positive(self):
        network = WirelessNetwork.uniform(
            [(-4, 0), (2, 5), (2, -5), (6, 0)], noise=0.0, beta=3.0
        )
        comparator = ModelComparator(network, udg_radius=5.0)
        probe = Point(-1.5, 0.0)
        comparison = comparator.compare_at(probe, 0)
        assert comparison.outcome is ReceptionOutcome.FALSE_POSITIVE
        assert comparator.heard_station_udg(probe) == 0
        assert comparator.heard_station_sinr(probe) is None

    def test_false_negative_two_transmitters(self):
        network = WirelessNetwork.uniform([(0.4, 3.0), (-0.7, 4.0)], noise=0.0, beta=2.0)
        comparator = ModelComparator(network, udg_radius=3.0)
        probe = Point(0.6, 1.5)
        comparison = comparator.compare_at(probe, 0)
        assert comparison.outcome is ReceptionOutcome.FALSE_NEGATIVE

    def test_silent_stations_are_excluded_from_sinr(self):
        network = WirelessNetwork.uniform(
            [(0, 0), (1.5, 0), (10, 10)], noise=0.0, beta=2.0
        )
        # With everyone transmitting, the probe next to s0 fails (s1 too close);
        # with s1 silent it succeeds.
        everyone = ModelComparator(network, udg_radius=2.0)
        without_s1 = ModelComparator(network, udg_radius=2.0, transmitters=[0, 2])
        probe = Point(0.7, 0.0)
        assert not everyone.sinr_receives(probe, 0)
        assert without_s1.sinr_receives(probe, 0)
        # A silent station is never received.
        assert not without_s1.sinr_receives(probe, 1)

    def test_single_transmitter_with_noise(self):
        network = WirelessNetwork.uniform([(0, 0), (8, 0)], noise=0.1, beta=2.0)
        comparator = ModelComparator(network, udg_radius=3.0, transmitters=[0])
        # Close to the station the SNR beats beta, far away it does not.
        assert comparator.sinr_receives(Point(1.0, 0.0), 0)
        assert not comparator.sinr_receives(Point(6.0, 0.0), 0)

    def test_summaries(self):
        network = WirelessNetwork.uniform(
            [(-4, 0), (2, 5), (2, -5), (6, 0)], noise=0.0, beta=3.0
        )
        comparator = ModelComparator(network, udg_radius=5.0)
        summary = comparator.summarize_grid(
            Point(-10, -10), Point(10, 10), sender=0, resolution=25
        )
        assert summary.total == 625
        as_dict = summary.as_dict()
        assert as_dict["total"] == 625
        assert 0.0 <= summary.disagreement_fraction <= 1.0
        assert summary.counts[ReceptionOutcome.FALSE_POSITIVE] > 0
