"""Property tests for incremental dynamic-network updates.

The headline invariant: for *any* mutation sequence — stations joining,
leaving and moving, including shard-boundary crossings and shards emptied
outright — ``ShardedLocator.updated(new_network, delta)`` answers
bit-identically to a from-scratch ``build()`` on the mutated network (and
hence to brute force), while rebuilding exactly the shard subset the delta
touches.  The expected subset is predicted independently through the public
placement rule (:meth:`ShardedLocator.nearest_shard`) and checked against
the ``last_update`` rebuild ledger.

Also covers the :class:`NetworkDelta` algebra itself (mutator helpers,
``diff_networks`` recovery, the surviving-index map) and the mobility
scenario generators that emit delta sequences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Point, Station
from repro.exceptions import NetworkConfigurationError, PointLocationError
from repro.model import (
    NetworkDelta,
    add_station,
    diff_networks,
    move_station,
    remove_station,
)
from repro.pointlocation import BruteForceLocator, ShardedLocator, station_reaches
from repro.workloads import (
    MobilityStep,
    churn_schedule,
    random_waypoint_walk,
    uniform_random_network,
)

from seeded_workloads import query_box_array


# ----------------------------------------------------------------------
# NetworkDelta algebra
# ----------------------------------------------------------------------
class TestNetworkDelta:
    def test_count_consistency_is_validated(self):
        with pytest.raises(NetworkConfigurationError):
            NetworkDelta(added=(3,), old_count=5, new_count=5)
        with pytest.raises(NetworkConfigurationError):
            NetworkDelta(removed=(0,), old_count=5, new_count=5)
        # A move keeps the count; an add/remove pair shifts it by one each.
        NetworkDelta(moved=((2, 2),), old_count=5, new_count=5)
        NetworkDelta(added=(5,), old_count=5, new_count=6)

    def test_classification_properties(self):
        identity = NetworkDelta(old_count=4, new_count=4)
        assert identity.is_identity and identity.index_preserving
        move = NetworkDelta(moved=((1, 1), (3, 3)), old_count=4, new_count=4)
        assert not move.is_identity and move.index_preserving
        assert move.touched_old == (1, 3) and move.touched_new == (1, 3)
        churn = NetworkDelta(added=(3,), removed=(0,), old_count=4, new_count=4)
        assert not churn.index_preserving
        params = NetworkDelta(old_count=4, new_count=4, params_changed=True)
        assert not params.is_identity

    def test_surviving_map_shifts_around_churn(self):
        # Old stations 0..4; station 1 removed, station 3 moved, new index 2
        # arrived: survivors 0, 2, 4 land at new indices 0, 1, 4.
        delta = NetworkDelta(
            added=(2,), removed=(1,), moved=((3, 3),), old_count=5, new_count=5
        )
        np.testing.assert_array_equal(
            delta.surviving_map(), np.array([0, -1, 1, -1, 4])
        )

    def test_mutators_carry_exact_deltas(self):
        network = uniform_random_network(
            8, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=21
        )
        moved, delta = move_station(network, 3, Point(1.0, 2.0))
        assert delta.moved == ((3, 3),) and delta.index_preserving
        assert moved.stations[3].location == Point(1.0, 2.0)
        assert diff_networks(network, moved) == delta

        grown, delta = add_station(network, Station(Point(20.0, 20.0)))
        assert delta.added == (8,) and len(grown) == 9
        assert diff_networks(network, grown) == delta

        shrunk, delta = remove_station(network, 0)
        assert delta.removed == (0,) and len(shrunk) == 7
        assert diff_networks(network, shrunk) == delta

    def test_noop_move_is_identity_on_a_fresh_copy(self):
        network = uniform_random_network(5, side=10.0, seed=2, beta=3.0)
        same, delta = move_station(network, 1, network.stations[1].location)
        assert delta.is_identity
        assert same is not network
        assert same.fingerprint == network.fingerprint

    def test_mutator_range_checks(self):
        network = uniform_random_network(5, side=10.0, seed=2, beta=3.0)
        with pytest.raises(NetworkConfigurationError):
            move_station(network, 5, Point(0.0, 0.0))
        with pytest.raises(NetworkConfigurationError):
            remove_station(network, -1)

    def test_diff_detects_parameter_changes(self):
        network = uniform_random_network(5, side=10.0, seed=2, beta=3.0)
        delta = diff_networks(network, network.with_noise(0.3))
        assert delta.params_changed and not delta.moved


# ----------------------------------------------------------------------
# Shard-selective rebuild
# ----------------------------------------------------------------------
def predict_update(locator: ShardedLocator, new_network, delta):
    """Predict (rebuilt, reused, retired) positions through the public rule.

    Mirrors the documented placement contract: survivors stay put (indices
    remapped), every arriving/relocated station joins the nearest surviving
    bounding box (which grows as placements land), a shard is rebuilt iff
    its station set changed and retired iff it emptied.
    """
    mapping = delta.surviving_map()
    new_coords = new_network.coords
    groups, boxes, changed = [], [], []
    for shard in locator.shards:
        mapped = mapping[shard.indices]
        kept = mapped[mapped >= 0]
        groups.append(kept.tolist())
        changed.append(kept.size != len(shard))
        if kept.size:
            pts = new_coords[kept]
            boxes.append(
                (float(pts[:, 0].min()), float(pts[:, 1].min()),
                 float(pts[:, 0].max()), float(pts[:, 1].max()))
            )
        else:
            boxes.append(None)
    for new_index in delta.touched_new:
        x, y = float(new_coords[new_index, 0]), float(new_coords[new_index, 1])
        position = ShardedLocator.nearest_shard(boxes, x, y)
        groups[position].append(new_index)
        changed[position] = True
        box = boxes[position]
        boxes[position] = (
            min(box[0], x), min(box[1], y), max(box[2], x), max(box[3], y)
        )
    rebuilt = tuple(
        p for p, (c, g) in enumerate(zip(changed, groups)) if g and c
    )
    reused = tuple(
        p for p, (c, g) in enumerate(zip(changed, groups)) if g and not c
    )
    retired = tuple(p for p, g in enumerate(groups) if not g)
    return rebuilt, reused, retired


def assert_update_exact(locator, new_network, delta, seed):
    """``updated()`` == fresh ``build()`` == brute force, ledger as predicted."""
    expected = predict_update(locator, new_network, delta)
    incremental = locator.updated(new_network, delta)
    report = incremental.last_update
    assert report is not None and not report.full_rebuild
    assert (
        report.rebuilt_positions,
        report.reused_positions,
        report.retired_positions,
    ) == expected

    pts = query_box_array(new_network, 500, seed=seed)
    truth = BruteForceLocator(new_network).locate_batch(pts)
    fresh = ShardedLocator(
        new_network,
        inner=locator.inner_name,
        shards=locator._requested_shards,
        partitioner=locator._partitioner_spec,
    )
    np.testing.assert_array_equal(fresh.locate_batch(pts), truth)
    np.testing.assert_array_equal(incremental.locate_batch(pts), truth)
    return incremental


class TestShardSelectiveRebuild:
    @pytest.mark.parametrize("partitioner", ["kd", "uniform"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_mutation_sequences_stay_exact(self, partitioner, seed):
        """The acceptance property: any add/remove/move sequence, any step —
        incremental answers bit-identical, rebuild ledger exactly predicted."""
        rng = np.random.default_rng(1000 + seed)
        network = uniform_random_network(
            14, side=16.0, minimum_separation=1.2, noise=0.002, beta=3.0,
            seed=50 + seed,
        )
        locator = ShardedLocator(
            network, inner="voronoi", shards=5, partitioner=partitioner
        )
        for step in range(10):
            op = rng.choice(["move", "move", "add", "remove"])
            if op == "remove" and len(network) <= 4:
                op = "add"
            if op == "add" and len(network) >= 24:
                op = "remove"
            if op == "move":
                index = int(rng.integers(len(network)))
                if rng.random() < 0.4:
                    # A long hop: crosses shard boundaries almost surely.
                    target = Point(*rng.uniform(-2.0, 18.0, size=2))
                else:
                    station = network.stations[index]
                    target = Point(
                        station.x + rng.uniform(-1.0, 1.0),
                        station.y + rng.uniform(-1.0, 1.0),
                    )
                mutated, delta = move_station(network, index, target)
            elif op == "add":
                mutated, delta = add_station(
                    network, Station(Point(*rng.uniform(-2.0, 18.0, size=2)))
                )
            else:
                mutated, delta = remove_station(
                    network, int(rng.integers(len(network)))
                )
            locator = assert_update_exact(locator, mutated, delta, seed=step)
            network = mutated

    def test_boundary_crossing_move_rebuilds_source_and_destination(self):
        network = uniform_random_network(
            16, side=20.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=8
        )
        locator = ShardedLocator(network, inner="voronoi", shards=4)
        # Move a station from its shard into the farthest shard's midst.
        source_position = 0
        mover = int(locator.shards[source_position].indices[0])
        landing = locator.shards[-1].indices
        target = Point(*network.coords[landing].mean(axis=0))
        mutated, delta = move_station(network, mover, target)

        updated = assert_update_exact(locator, mutated, delta, seed=3)
        report = updated.last_update
        assert source_position in report.rebuilt_positions
        assert len(report.rebuilt_positions) == 2  # source + destination
        assert report.reused == len(locator.shards) - 2

    def test_identity_delta_reuses_every_shard(self):
        network = uniform_random_network(
            12, side=14.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=4
        )
        locator = ShardedLocator(network, inner="voronoi", shards=4)
        same, delta = move_station(network, 2, network.stations[2].location)
        assert delta.is_identity
        updated = assert_update_exact(locator, same, delta, seed=1)
        assert updated.last_update.rebuilt == 0
        assert updated.last_update.reused == len(locator.shards)
        # Reuse means the same inner locator object, not an equal rebuild.
        for old, new in zip(locator.shards, updated.shards):
            assert new.locator is old.locator

    def test_emptied_singleton_shard_is_retired(self):
        network = uniform_random_network(
            5, side=10.0, minimum_separation=2.0, noise=0.002, beta=3.0, seed=7
        )
        locator = ShardedLocator(network, inner="voronoi", shards=5)
        assert locator.shard_sizes() == [1] * 5  # all singletons
        retired_position = 2
        victim = int(locator.shards[retired_position].indices[0])
        mutated, delta = remove_station(network, victim)
        updated = assert_update_exact(locator, mutated, delta, seed=5)
        assert updated.last_update.retired_positions == (retired_position,)
        assert len(updated.shards) == 4

    def test_parameter_change_falls_back_to_full_rebuild(self):
        network = uniform_random_network(
            10, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=6
        )
        locator = ShardedLocator(network, inner="voronoi", shards=3)
        quieter = network.with_noise(0.0005)
        updated = locator.updated(quieter, diff_networks(network, quieter))
        assert updated.last_update.full_rebuild
        pts = query_box_array(quieter, 400, seed=9)
        np.testing.assert_array_equal(
            updated.locate_batch(pts), BruteForceLocator(quieter).locate_batch(pts)
        )

    def test_recovers_delta_when_not_given(self):
        network = uniform_random_network(
            10, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=6
        )
        locator = ShardedLocator(network, inner="voronoi", shards=3)
        mutated, _ = move_station(network, 4, Point(0.5, 0.5))
        updated = locator.updated(mutated)  # delta via diff_networks
        assert updated.last_update.delta.moved == ((4, 4),)
        pts = query_box_array(mutated, 400, seed=2)
        np.testing.assert_array_equal(
            updated.locate_batch(pts), BruteForceLocator(mutated).locate_batch(pts)
        )

    def test_mismatched_delta_is_rejected(self):
        network = uniform_random_network(
            10, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=6
        )
        locator = ShardedLocator(network, inner="voronoi", shards=3)
        mutated, _ = remove_station(network, 0)
        with pytest.raises(PointLocationError):
            locator.updated(mutated, NetworkDelta(old_count=10, new_count=10))

    def test_update_leaves_the_previous_locator_untouched(self):
        network = uniform_random_network(
            10, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=3
        )
        locator = ShardedLocator(network, inner="voronoi", shards=3)
        before = [shard.indices.copy() for shard in locator.shards]
        pts = query_box_array(network, 300, seed=7)
        answers = locator.locate_batch(pts).copy()
        mutated, delta = move_station(network, 1, Point(9.0, 9.0))
        locator.updated(mutated, delta)
        assert locator.network is network
        assert locator.last_update is None
        for shard, indices in zip(locator.shards, before):
            np.testing.assert_array_equal(shard.indices, indices)
        np.testing.assert_array_equal(locator.locate_batch(pts), answers)

    def test_routing_boxes_are_refreshed_for_reused_shards(self):
        """A reused shard's box must track the *new* network's reaches: the
        Theorem 4.1 bound is not monotone under noise, so stale boxes would
        not be conservative."""
        network = uniform_random_network(
            12, side=14.0, minimum_separation=1.5, noise=0.01, beta=3.0, seed=13
        )
        locator = ShardedLocator(network, inner="voronoi", shards=4)
        mutated, delta = move_station(network, 0, Point(7.0, 7.0))
        updated = locator.updated(mutated, delta)
        reaches = station_reaches(mutated)
        coords = mutated.coords
        for shard in updated.shards:
            pts = coords[shard.indices]
            reach = float(reaches[shard.indices].max())
            assert shard.query_box == (
                float(pts[:, 0].min() - reach),
                float(pts[:, 1].min() - reach),
                float(pts[:, 0].max() + reach),
                float(pts[:, 1].max() + reach),
            )


# ----------------------------------------------------------------------
# Mobility generators
# ----------------------------------------------------------------------
class TestMobilityGenerators:
    def test_waypoint_walk_is_seed_deterministic(self):
        network = uniform_random_network(
            10, side=14.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=9
        )
        first = list(random_waypoint_walk(network, 6, speed=0.7, movers=2, seed=5))
        second = list(random_waypoint_walk(network, 6, speed=0.7, movers=2, seed=5))
        other = list(random_waypoint_walk(network, 6, speed=0.7, movers=2, seed=6))
        assert [s.network.fingerprint for s in first] == [
            s.network.fingerprint for s in second
        ]
        assert [s.delta for s in first] == [s.delta for s in second]
        assert [s.network.fingerprint for s in first] != [
            s.network.fingerprint for s in other
        ]

    def test_waypoint_deltas_are_exact_index_preserving_moves(self):
        network = uniform_random_network(
            10, side=14.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=9
        )
        previous = network
        for step in random_waypoint_walk(network, 8, speed=0.8, movers=3, seed=1):
            assert isinstance(step, MobilityStep)
            assert step.delta.index_preserving
            assert 0 < len(step.delta.moved) <= 3
            recovered = diff_networks(previous, step.network)
            assert set(recovered.moved) == set(step.delta.moved)
            assert len(step.network) == len(network)
            previous = step.network

    def test_waypoint_steps_respect_the_speed_cap(self):
        network = uniform_random_network(
            8, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=3
        )
        speed = 0.5
        previous = network
        for step in random_waypoint_walk(network, 10, speed=speed, movers=2, seed=2):
            hops = np.linalg.norm(step.network.coords - previous.coords, axis=1)
            assert float(hops.max()) <= speed + 1e-12
            previous = step.network

    def test_churn_is_deterministic_and_respects_the_floor(self):
        network = uniform_random_network(
            8, side=12.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=3
        )
        first = list(
            churn_schedule(network, 25, join_probability=0.3,
                           minimum_stations=4, seed=11)
        )
        second = list(
            churn_schedule(network, 25, join_probability=0.3,
                           minimum_stations=4, seed=11)
        )
        assert [s.network.fingerprint for s in first] == [
            s.network.fingerprint for s in second
        ]
        assert min(len(s.network) for s in first) >= 4
        assert all(s.network.is_uniform_power() for s in first)

    def test_churn_probability_extremes(self):
        network = uniform_random_network(
            6, side=10.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=4
        )
        joins = list(churn_schedule(network, 5, join_probability=1.0, seed=1))
        assert [len(s.network) for s in joins] == [7, 8, 9, 10, 11]
        assert all(s.delta.added for s in joins)
        leaves = list(
            churn_schedule(network, 5, join_probability=0.0,
                           minimum_stations=3, seed=1)
        )
        # Shrinks to the floor, then blocked leaves become joins.
        assert [len(s.network) for s in leaves] == [5, 4, 3, 4, 3]

    def test_churn_sequences_drive_incremental_updates(self):
        network = uniform_random_network(
            10, side=14.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=9
        )
        locator = ShardedLocator(network, inner="voronoi", shards=4)
        for step in churn_schedule(network, 8, join_probability=0.5,
                                   minimum_stations=3, seed=8):
            locator = locator.updated(step.network, step.delta)
            pts = query_box_array(step.network, 300, seed=4)
            np.testing.assert_array_equal(
                locator.locate_batch(pts),
                BruteForceLocator(step.network).locate_batch(pts),
            )

    def test_generator_validation(self):
        network = uniform_random_network(
            6, side=10.0, minimum_separation=1.5, noise=0.002, beta=3.0, seed=4
        )
        with pytest.raises(NetworkConfigurationError):
            next(random_waypoint_walk(network, 1, speed=0.0))
        with pytest.raises(NetworkConfigurationError):
            next(random_waypoint_walk(network, 1, movers=7))
        with pytest.raises(NetworkConfigurationError):
            next(churn_schedule(network, 1, join_probability=1.5))
        with pytest.raises(NetworkConfigurationError):
            next(churn_schedule(network, 1, minimum_stations=0))
        with pytest.raises(NetworkConfigurationError):
            next(churn_schedule(network, 1, minimum_stations=9))
