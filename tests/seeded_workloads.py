"""The one home of the suite's seeded random-workload construction.

The engine, locator-registry, sharding and service test modules all need
the same two building blocks: a deterministic uniform-random network in the
suite's standard regime, and a seeded query batch over a network's bounding
box.  They live here (rather than in ``conftest.py``) so that test modules
can import them for use *inside* parametrised test bodies, where fixtures
cannot reach; ``conftest.py`` wraps the same helpers as fixtures
(``query_box`` and the standard ``ten_station_network`` /
``fifty_station_network``) for everything fixture-shaped.
"""

from __future__ import annotations

import numpy as np

from repro import Point, WirelessNetwork
from repro.workloads import random_query_array, uniform_random_network

__all__ = ["seeded_network", "query_box_array"]


def seeded_network(
    stations: int,
    *,
    side: float,
    seed: int,
    minimum_separation: float = 2.0,
    noise: float = 0.005,
    beta: float = 3.0,
) -> WirelessNetwork:
    """A deterministic uniform-random network in the suite's standard regime.

    The paper's ``beta > 1`` setting with a little background noise — the
    regime where every locator is exact — with rejection-sampled minimum
    separation so zones are non-degenerate.  All randomised test networks
    are built through here so seeds and parameters stay in one place.
    """
    return uniform_random_network(
        stations,
        side=side,
        minimum_separation=minimum_separation,
        noise=noise,
        beta=beta,
        seed=seed,
    )


def query_box_array(network, count: int, seed: int, margin: float = 4.0) -> np.ndarray:
    """A seeded ``(count, 2)`` query batch over the network's bbox + margin.

    Queries straddle the station bounding box by ``margin`` on every side,
    so both reception zones and the silent exterior are exercised.
    """
    coords = network.coords
    return random_query_array(
        count,
        Point(coords[:, 0].min() - margin, coords[:, 1].min() - margin),
        Point(coords[:, 0].max() + margin, coords[:, 1].max() + margin),
        seed=seed,
    )
