"""Tests for repro.geometry.point."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import GeometryError
from repro.geometry import (
    ORIGIN,
    Point,
    as_point,
    centroid,
    collinear,
    cross,
    distance,
    dot,
    midpoint,
    orientation,
    squared_distance,
)


class TestPointArithmetic:
    def test_addition_and_subtraction(self):
        assert Point(1, 2) + Point(3, -1) == Point(4, 1)
        assert Point(1, 2) - Point(3, -1) == Point(-2, 3)

    def test_scalar_multiplication_is_commutative(self):
        assert Point(1.5, -2.0) * 2.0 == 2.0 * Point(1.5, -2.0) == Point(3.0, -4.0)

    def test_division_and_negation(self):
        assert Point(4, -2) / 2 == Point(2, -1)
        assert -Point(4, -2) == Point(-4, 2)

    def test_iteration_indexing_and_length(self):
        p = Point(3.0, 7.0)
        assert list(p) == [3.0, 7.0]
        assert p[0] == 3.0 and p[1] == 7.0
        assert len(p) == 2

    def test_points_are_hashable_value_types(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestNormsAndDistances:
    def test_norm_matches_hypot(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)
        assert Point(3, 4).squared_norm() == pytest.approx(25.0)

    def test_distance_is_symmetric(self):
        p, q = Point(1, 1), Point(4, 5)
        assert p.distance_to(q) == pytest.approx(q.distance_to(p)) == pytest.approx(5.0)
        assert p.squared_distance_to(q) == pytest.approx(25.0)

    def test_module_level_distance_accepts_tuples(self):
        assert distance((0, 0), (0, 3)) == pytest.approx(3.0)
        assert squared_distance((1, 1), (2, 2)) == pytest.approx(2.0)

    def test_normalized_has_unit_length(self):
        assert Point(5, 0).normalized() == Point(1, 0)
        assert Point(3, 4).normalized().norm() == pytest.approx(1.0)

    def test_normalizing_zero_vector_raises(self):
        with pytest.raises(ZeroDivisionError):
            ORIGIN.normalized()


class TestDirections:
    def test_perpendicular_rotates_by_90_degrees(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)
        assert dot(Point(2, 3), Point(2, 3).perpendicular()) == pytest.approx(0.0)

    def test_rotation_about_origin(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.is_close(Point(0, 1))

    def test_rotation_about_arbitrary_pivot(self):
        rotated = Point(2, 0).rotated(math.pi, about=Point(1, 0))
        assert rotated.is_close(Point(0, 0))

    def test_angle(self):
        assert Point(0, 2).angle() == pytest.approx(math.pi / 2)
        assert Point(-1, 0).angle() == pytest.approx(math.pi)


class TestHelpers:
    def test_as_point_passthrough_and_coercion(self):
        p = Point(1, 2)
        assert as_point(p) is p
        assert as_point((3, 4)) == Point(3.0, 4.0)

    def test_midpoint_and_centroid(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)
        assert centroid([Point(0, 0), Point(2, 0), Point(1, 3)]) == Point(1, 1)

    def test_centroid_of_empty_collection_raises(self):
        with pytest.raises(GeometryError):
            centroid([])

    def test_cross_and_orientation_signs(self):
        assert cross(Point(1, 0), Point(0, 1)) == pytest.approx(1.0)
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) > 0
        assert orientation(Point(0, 0), Point(1, 0), Point(1, -1)) < 0

    def test_collinear_detection(self):
        assert collinear(Point(0, 0), Point(1, 1), Point(3, 3))
        assert not collinear(Point(0, 0), Point(1, 1), Point(3, 3.5))

    def test_is_close_with_tolerance(self):
        assert Point(1, 1).is_close(Point(1 + 1e-12, 1 - 1e-12))
        assert not Point(1, 1).is_close(Point(1.1, 1))

    def test_as_tuple(self):
        assert Point(2.5, -1.0).as_tuple() == (2.5, -1.0)
