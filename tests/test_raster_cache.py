"""The raster tile cache: bit-identity, budgets, stats, fingerprints, serving.

The subsystem's one non-negotiable contract is that caching never changes a
bit of output: every test that rasterises through a cache compares
``labels`` *and* ``sinr_values`` against the monolithic path with exact
array equality, across random boxes, resolutions, tile sizes, evicting
budgets and concurrent threads.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Point, SINRDiagram, TileCache, WirelessNetwork
from repro.exceptions import RasterCacheError, ServiceError
from repro.model.diagram import RasterLattice
from repro.raster import default_cache
from repro.service import RasterService


@pytest.fixture
def diagram(noisy_network) -> SINRDiagram:
    return SINRDiagram(noisy_network)


def assert_rasters_identical(expected, actual):
    """Bitwise equality of every payload array plus the lattice metadata."""
    np.testing.assert_array_equal(expected.labels, actual.labels)
    np.testing.assert_array_equal(expected.sinr_values, actual.sinr_values)
    np.testing.assert_array_equal(expected.xs, actual.xs)
    np.testing.assert_array_equal(expected.ys, actual.ys)
    assert expected.labels.dtype == actual.labels.dtype
    assert expected.pitch == actual.pitch


# ----------------------------------------------------------------------
# The lattice
# ----------------------------------------------------------------------
class TestRasterLattice:
    def test_aligned_origin_snaps_to_world_lattice(self):
        lattice = RasterLattice.build(-8.0, 16.0, 128)
        assert lattice.phase == 0.0
        assert lattice.start == -64
        assert lattice.count == 128
        assert lattice.pitch == 0.125

    def test_unaligned_origin_keeps_phase_remainder(self):
        lattice = RasterLattice.build(-8.3, 16.0, 128)
        assert 0.0 < lattice.phase < lattice.pitch
        centres = lattice.centers()
        assert centres[0] == pytest.approx(-8.3 + lattice.pitch / 2, rel=1e-12)

    def test_tile_coordinates_are_slices_of_request_coordinates(self):
        """The heart of bit-identity: same formula, any sub-range."""
        for origin in (-8.0, -8.3, 3.7, 1e6):
            lattice = RasterLattice.build(origin, 16.0, 96)
            full = lattice.centers()
            for start, count in [(0, 96), (10, 20), (95, 1)]:
                part = lattice.centers_at(lattice.start + start, count)
                np.testing.assert_array_equal(full[start : start + count], part)

    def test_overlapping_aligned_boxes_share_global_indices(self):
        base = RasterLattice.build(-8.0, 16.0, 128)
        zoom = RasterLattice.build(-4.0, 8.0, 64)
        assert zoom.pitch == base.pitch and zoom.phase == base.phase
        np.testing.assert_array_equal(
            base.centers()[32:96], zoom.centers()
        )


# ----------------------------------------------------------------------
# Bit-identity of the tiled path
# ----------------------------------------------------------------------
class TestTiledBitIdentity:
    @pytest.mark.parametrize("tile_size", [7, 16, 64])
    def test_random_boxes_and_resolutions(self, diagram, seeded_rng, tile_size):
        cache = TileCache(tile_size=tile_size)
        for _ in range(6):
            x0, y0 = seeded_rng.uniform(-9.0, 3.0, size=2)
            width, height = seeded_rng.uniform(1.0, 12.0, size=2)
            resolution = int(seeded_rng.integers(2, 48))
            lower_left, upper_right = Point(x0, y0), Point(x0 + width, y0 + height)
            direct = diagram.rasterize(lower_left, upper_right, resolution)
            cached = diagram.rasterize(
                lower_left, upper_right, resolution, cache=cache
            )
            assert_rasters_identical(direct, cached)
            # And again, now served (at least partly) from the store.
            again = diagram.rasterize(
                lower_left, upper_right, resolution, cache=cache
            )
            assert_rasters_identical(direct, again)
        assert cache.stats().hits > 0

    def test_eviction_under_a_tiny_budget_stays_identical(self, diagram):
        box = (Point(-6.0, -6.0), Point(6.0, 6.0))
        probe = TileCache(tile_size=16)
        direct = diagram.rasterize(*box, 64)
        diagram.rasterize(*box, 64, cache=probe)
        tile_bytes = probe.stats().stored_bytes // probe.stats().tiles

        cache = TileCache(max_bytes=3 * tile_bytes, tile_size=16)
        for _ in range(3):
            cached = diagram.rasterize(*box, 64, cache=cache)
            assert_rasters_identical(direct, cached)
        stats = cache.stats()
        assert stats.evictions > 0
        assert stats.tiles <= 3
        assert stats.stored_bytes <= cache.max_bytes

    def test_oversized_tiles_are_rejected_not_stored(self, diagram):
        cache = TileCache(max_bytes=64, tile_size=16)
        direct = diagram.rasterize(Point(-4, -4), Point(4, 4), 32)
        cached = diagram.rasterize(Point(-4, -4), Point(4, 4), 32, cache=cache)
        assert_rasters_identical(direct, cached)
        stats = cache.stats()
        assert stats.rejected == stats.misses > 0
        assert stats.tiles == 0 and stats.stored_bytes == 0

    def test_unaligned_box_caches_against_repeats_of_itself(self, diagram):
        cache = TileCache(tile_size=16)
        box = (Point(-5.37, -4.91), Point(6.13, 7.03))
        direct = diagram.rasterize(*box, 48)
        diagram.rasterize(*box, 48, cache=cache)
        misses = cache.stats().misses
        again = diagram.rasterize(*box, 48, cache=cache)
        assert_rasters_identical(direct, again)
        stats = cache.stats()
        assert stats.misses == misses
        assert stats.hits == misses

    def test_summary_through_cache_matches_uncached(self, diagram):
        cache = TileCache(tile_size=32)
        uncached = diagram.summary(resolution=60)
        cached = diagram.summary(resolution=60, cache=cache)
        assert cached["zone_areas"] == uncached["zone_areas"]
        assert cached["coverage_fraction"] == uncached["coverage_fraction"]
        assert cache.stats().misses > 0
        # A repeated summary recomputes no tiles at all.
        misses = cache.stats().misses
        diagram.summary(resolution=60, cache=cache)
        assert cache.stats().misses == misses


# ----------------------------------------------------------------------
# Cache bookkeeping
# ----------------------------------------------------------------------
class TestCacheStats:
    def test_cold_pass_misses_then_warm_pass_hits(self, diagram):
        cache = TileCache(tile_size=32)
        box = (Point(-8.0, -8.0), Point(8.0, 8.0))
        diagram.rasterize(*box, 128, cache=cache)
        cold = cache.stats()
        # 128 px at pitch 0.125 spanning [-64, 64) -> a 4x4 block of tiles.
        assert cold.misses == 16 and cold.hits == 0
        assert cold.tiles == 16 and cold.stored_bytes > 0
        diagram.rasterize(*box, 128, cache=cache)
        warm = cache.stats()
        assert warm.misses == 16 and warm.hits == 16
        assert warm.hit_rate == 0.5
        assert warm.requests == 32

    def test_overlapping_zoom_and_pan_reuse_tiles(self, diagram):
        cache = TileCache(tile_size=32)
        diagram.rasterize(Point(-8, -8), Point(8, 8), 128, cache=cache)
        misses = cache.stats().misses
        # Zoom and pan boxes sit on the same world lattice: all hits.
        diagram.rasterize(Point(-4, -4), Point(4, 4), 64, cache=cache)
        diagram.rasterize(Point(0, -8), Point(8, 0), 64, cache=cache)
        stats = cache.stats()
        assert stats.misses == misses
        assert stats.hits == 4 + 4

    def test_clear_drops_tiles_but_not_counters(self, diagram):
        cache = TileCache(tile_size=32)
        diagram.rasterize(Point(-4, -4), Point(4, 4), 64, cache=cache)
        assert cache.stats().tiles > 0
        cache.clear()
        stats = cache.stats()
        assert stats.tiles == 0 and stats.stored_bytes == 0
        assert stats.misses > 0

    def test_validation(self):
        with pytest.raises(RasterCacheError):
            TileCache(max_bytes=0)
        with pytest.raises(RasterCacheError):
            TileCache(tile_size=0)

    def test_cache_argument_validation(self, diagram):
        with pytest.raises(RasterCacheError):
            diagram.rasterize(Point(-4, -4), Point(4, 4), 32, cache=123)

    def test_cache_true_uses_the_process_default(self, diagram):
        default_cache().clear()
        try:
            first = diagram.rasterize(Point(-4, -4), Point(4, 4), 64, cache=True)
            before = default_cache().stats()
            again = diagram.rasterize(Point(-4, -4), Point(4, 4), 64, cache=True)
            assert_rasters_identical(first, again)
            assert default_cache().stats().hits >= before.hits + before.tiles
        finally:
            default_cache().clear()


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestNetworkFingerprint:
    def test_content_identical_networks_share_a_fingerprint(self):
        first = WirelessNetwork.uniform([(0, 0), (4, 0)], noise=0.01, beta=2.0)
        second = WirelessNetwork.uniform([(0, 0), (4, 0)], noise=0.01, beta=2.0)
        assert first is not second
        assert first.fingerprint == second.fingerprint

    def test_every_reception_parameter_changes_it(self, noisy_network):
        base = noisy_network.fingerprint
        assert noisy_network.with_noise(0.02).fingerprint != base
        assert noisy_network.with_beta(2.5).fingerprint != base
        assert noisy_network.with_station_moved(0, Point(0.1, 0.0)).fingerprint != base
        assert noisy_network.without_station(1).fingerprint != base

    def test_backend_switch_never_serves_another_backends_tiles(
        self, noisy_network
    ):
        """Backends agree only to float tolerance: tiles must not cross them."""
        from repro.engine import use_backend

        diagram = SINRDiagram(noisy_network)
        cache = TileCache(tile_size=8)
        box = (Point(-2.0, -2.0), Point(2.0, 2.0))
        diagram.rasterize(*box, 16, cache=cache)
        numpy_misses = cache.stats().misses

        with use_backend("reference"):
            direct = diagram.rasterize(*box, 16)
            cached = diagram.rasterize(*box, 16, cache=cache)
        assert_rasters_identical(direct, cached)
        stats = cache.stats()
        # The reference-backend request computed its own tiles from scratch.
        assert stats.misses == 2 * numpy_misses
        assert stats.hits == 0

    def test_one_request_is_computed_under_one_pinned_backend(
        self, noisy_network
    ):
        """No seams: a request started under a backend finishes under it."""
        from repro.engine import use_backend
        from repro.engine.backend import get_backend, register_backend

        class CountingBackend:
            name = "counting"

            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def __getattr__(self, attribute):
                return getattr(self._inner, attribute)

            def sinr_matrix(self, *args, **kwargs):
                self.calls += 1
                return self._inner.sinr_matrix(*args, **kwargs)

        counting = CountingBackend(get_backend("numpy"))
        register_backend("counting", counting)
        diagram = SINRDiagram(noisy_network)
        cache = TileCache(tile_size=8)
        with use_backend("counting"):
            raster = diagram.rasterize(Point(-2, -2), Point(2, 2), 16, cache=cache)
        assert counting.calls == cache.stats().misses > 0
        direct = diagram.rasterize(Point(-2, -2), Point(2, 2), 16)
        assert_rasters_identical(direct, raster)

    def test_mutated_network_is_a_cache_miss(self, noisy_network):
        cache = TileCache(tile_size=32)
        box = (Point(-4.0, -4.0), Point(4.0, 4.0))
        SINRDiagram(noisy_network).rasterize(*box, 64, cache=cache)
        cold = cache.stats()
        assert cold.hits == 0

        moved = noisy_network.with_station_moved(0, Point(0.5, 0.5))
        direct = SINRDiagram(moved).rasterize(*box, 64)
        cached = SINRDiagram(moved).rasterize(*box, 64, cache=cache)
        assert_rasters_identical(direct, cached)
        stats = cache.stats()
        # Same box, same lattice — but not one stale tile was served.
        assert stats.hits == 0
        assert stats.misses == 2 * cold.misses


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_threaded_overlapping_requests_are_identical(self, ten_station_network):
        diagram = SINRDiagram(ten_station_network)
        cache = TileCache(tile_size=32)
        boxes = [
            (Point(-8.0, -8.0), Point(8.0, 8.0), 128),
            (Point(-4.0, -4.0), Point(4.0, 4.0), 64),
            (Point(0.0, 0.0), Point(8.0, 8.0), 64),
            (Point(-8.0, 0.0), Point(0.0, 8.0), 64),
        ]
        expected = {
            id(box): diagram.rasterize(box[0], box[1], box[2]) for box in boxes
        }

        def serve(box):
            return id(box), diagram.rasterize(box[0], box[1], box[2], cache=cache)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(serve, boxes * 6))
        for key, raster in results:
            assert_rasters_identical(expected[key], raster)

        stats = cache.stats()
        # 24 requests, but only the base box's 16 distinct tiles computed
        # (single-flight keeps concurrent duplicate misses from recomputing).
        assert stats.misses >= 16
        assert stats.hits + stats.misses == sum(
            16 if box[2] == 128 else 4 for box in boxes
        ) * 6

    def test_threaded_eviction_churn_stays_identical(self, diagram):
        box = (Point(-6.0, -6.0), Point(6.0, 6.0))
        probe = TileCache(tile_size=16)
        direct = diagram.rasterize(*box, 64)
        diagram.rasterize(*box, 64, cache=probe)
        tile_bytes = probe.stats().stored_bytes // probe.stats().tiles
        cache = TileCache(max_bytes=2 * tile_bytes, tile_size=16)

        def serve(_):
            return diagram.rasterize(*box, 64, cache=cache)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(serve, range(12)))
        for raster in results:
            assert_rasters_identical(direct, raster)
        assert cache.stats().evictions > 0
        assert cache.stats().stored_bytes <= cache.max_bytes


# ----------------------------------------------------------------------
# The service raster endpoint
# ----------------------------------------------------------------------
class TestRasterService:
    def test_concurrent_zoom_pan_traffic(self, ten_station_network):
        service = RasterService(ten_station_network, tile_size=32)
        diagram = SINRDiagram(ten_station_network)
        boxes = [
            (Point(-8.0, -8.0), Point(8.0, 8.0), 128),
            (Point(-4.0, -4.0), Point(4.0, 4.0), 64),
            (Point(0.0, -8.0), Point(8.0, 0.0), 64),
        ]

        async def drive():
            return await asyncio.gather(
                *(service.rasterize(a, b, res) for a, b, res in boxes * 4)
            )

        rasters = asyncio.run(drive())
        for (a, b, res), raster in zip(boxes * 4, rasters):
            assert_rasters_identical(diagram.rasterize(a, b, res), raster)
        stats = service.cache_stats()
        # Twelve requests over the base box's 16 tiles: everything beyond
        # the first computation of each tile was served from the cache.
        assert stats.misses == 16
        assert stats.hits == 4 * (16 + 4 + 4) - 16

    def test_summary_endpoint_matches_direct(self, ten_station_network):
        service = RasterService(ten_station_network, tile_size=32)
        summary = asyncio.run(service.summary(resolution=60))
        direct = SINRDiagram(ten_station_network).summary(resolution=60)
        assert summary["zone_areas"] == direct["zone_areas"]
        assert service.cache_stats().misses > 0

    def test_shared_cache_and_bounded_concurrency(self, ten_station_network):
        shared = TileCache(tile_size=32)
        service = RasterService(
            ten_station_network, cache=shared, max_concurrency=2
        )
        box = (Point(-4.0, -4.0), Point(4.0, 4.0), 64)

        async def drive():
            return await asyncio.gather(
                *(service.rasterize(*box) for _ in range(8))
            )

        rasters = asyncio.run(drive())
        direct = SINRDiagram(ten_station_network).rasterize(*box)
        for raster in rasters:
            assert_rasters_identical(direct, raster)
        assert shared.stats().misses == 4

    def test_bounded_service_survives_multiple_event_loops(
        self, ten_station_network
    ):
        """The concurrency semaphore must bind per loop, not per service."""
        service = RasterService(
            ten_station_network, tile_size=32, max_concurrency=1
        )
        box = (Point(-4.0, -4.0), Point(4.0, 4.0), 64)

        async def drive():
            rasters = await asyncio.gather(
                *(service.rasterize(*box) for _ in range(3))
            )
            summary = await service.summary(resolution=40)
            return rasters, summary

        first, _ = asyncio.run(drive())
        second, summary = asyncio.run(drive())  # a fresh event loop
        direct = SINRDiagram(ten_station_network).rasterize(*box)
        for raster in (*first, *second):
            assert_rasters_identical(direct, raster)
        assert "zone_areas" in summary

    def test_configuration_validation(self, ten_station_network):
        with pytest.raises(ServiceError):
            RasterService(
                ten_station_network, cache=TileCache(), max_bytes=1024
            )
        with pytest.raises(ServiceError):
            RasterService(ten_station_network, max_concurrency=0)


# ----------------------------------------------------------------------
# The experiment harness entry
# ----------------------------------------------------------------------
def test_raster_cache_experiment_reproduces():
    from repro.analysis import run_raster_cache

    result = run_raster_cache(resolution=64)
    assert result.reproduced, result.measured
    assert result.details["identical"]
    assert result.details["hits"] > 0


# ----------------------------------------------------------------------
# Tile-granular invalidation (dynamic networks)
# ----------------------------------------------------------------------
class TestDeltaInvalidation:
    """``invalidate_region`` / ``invalidate_for_delta`` contracts.

    A station move drops only the tiles inside the moved station's
    certified-reach boxes and re-keys the rest to the new fingerprint;
    anything re-keying cannot justify (churn, parameter changes) falls
    back to the full old-fingerprint flush.
    """

    BOX = (Point(-8.0, -8.0), Point(8.0, 8.0))

    def _warm(self, network, resolution=64, tile_size=8):
        # 2-world-unit tiles: the moved station's certified reach (~4.3
        # units in ``noisy_network``) covers the centre of the 8x8 grid
        # but leaves the border tiles untouched, so both the re-key and
        # the drop paths are exercised.
        cache = TileCache(tile_size=tile_size)
        SINRDiagram(network).rasterize(*self.BOX, resolution, cache=cache)
        return cache

    def test_invalidate_region_requires_distinct_fingerprints(self, noisy_network):
        cache = self._warm(noisy_network)
        with pytest.raises(RasterCacheError):
            cache.invalidate_region(
                noisy_network.fingerprint, noisy_network.fingerprint, None
            )

    def test_full_flush_spares_other_fingerprints(
        self, noisy_network, ten_station_network
    ):
        cache = TileCache(tile_size=16)
        SINRDiagram(noisy_network).rasterize(*self.BOX, 64, cache=cache)
        first = cache.stats().tiles
        SINRDiagram(ten_station_network).rasterize(*self.BOX, 64, cache=cache)
        total = cache.stats().tiles

        moved = noisy_network.with_station_moved(0, Point(0.5, 0.5))
        rekeyed, dropped = cache.invalidate_region(
            noisy_network.fingerprint, moved.fingerprint, None
        )
        assert (rekeyed, dropped) == (0, first)
        stats = cache.stats()
        assert stats.tiles == total - first
        assert stats.invalidated == first and stats.rekeyed == 0
        # The surviving tiles still answer for the untouched network.
        before = stats.misses
        SINRDiagram(ten_station_network).rasterize(*self.BOX, 64, cache=cache)
        assert cache.stats().misses == before

    def test_move_rekeys_far_tiles_and_drops_near_ones(self, noisy_network):
        from repro.model import move_station
        from repro.raster import affected_boxes, invalidate_for_delta

        cache = self._warm(noisy_network)
        warm_tiles = cache.stats().tiles
        moved, delta = move_station(noisy_network, 0, Point(0.3, 0.2))
        boxes = affected_boxes(noisy_network, moved, delta)
        assert len(boxes) == 2  # the station's reach, before and after

        rekeyed, dropped = invalidate_for_delta(cache, noisy_network, moved, delta)
        assert rekeyed > 0 and dropped > 0
        assert rekeyed + dropped == warm_tiles
        stats = cache.stats()
        assert stats.rekeyed == rekeyed and stats.invalidated == dropped

        # Re-serving the same box against the new network hits every
        # re-keyed tile and recomputes exactly the dropped ones.
        hits_before, misses_before = stats.hits, stats.misses
        SINRDiagram(moved).rasterize(*self.BOX, 64, cache=cache)
        stats = cache.stats()
        assert stats.hits - hits_before == rekeyed
        assert stats.misses - misses_before == dropped

    def test_tiny_move_labels_stay_exact(self, noisy_network):
        """Far from the margin the re-keyed labels are the true labels: a
        microscopic move shifts interference by less than any pixel's
        reception margin in this deterministic fixture."""
        from repro.model import move_station
        from repro.raster import invalidate_for_delta

        cache = self._warm(noisy_network)
        station = noisy_network.stations[0]
        moved, delta = move_station(
            noisy_network, 0, Point(station.x + 1e-4, station.y)
        )
        invalidate_for_delta(cache, noisy_network, moved, delta)
        served = SINRDiagram(moved).rasterize(*self.BOX, 64, cache=cache)
        direct = SINRDiagram(moved).rasterize(*self.BOX, 64)
        np.testing.assert_array_equal(served.labels, direct.labels)

    def test_churn_falls_back_to_full_drop(self, noisy_network):
        from repro.model import remove_station
        from repro.raster import invalidate_for_delta

        cache = self._warm(noisy_network)
        warm_tiles = cache.stats().tiles
        shrunk, delta = remove_station(noisy_network, 2)
        assert not delta.index_preserving
        rekeyed, dropped = invalidate_for_delta(cache, noisy_network, shrunk, delta)
        assert (rekeyed, dropped) == (0, warm_tiles)
        # The recomputed tiles carry the new label space and row count.
        served = SINRDiagram(shrunk).rasterize(*self.BOX, 64, cache=cache)
        direct = SINRDiagram(shrunk).rasterize(*self.BOX, 64)
        assert_rasters_identical(direct, served)

    def test_parameter_change_falls_back_to_full_drop(self, noisy_network):
        from repro.raster import invalidate_for_delta

        cache = self._warm(noisy_network)
        warm_tiles = cache.stats().tiles
        louder = noisy_network.with_noise(0.05)
        rekeyed, dropped = invalidate_for_delta(cache, noisy_network, louder)
        assert (rekeyed, dropped) == (0, warm_tiles)

    def test_unchanged_network_is_a_noop(self, noisy_network):
        from repro.raster import invalidate_for_delta

        cache = self._warm(noisy_network)
        twin = WirelessNetwork.uniform(
            [(s.x, s.y) for s in noisy_network.stations],
            noise=noisy_network.noise,
            beta=noisy_network.beta,
        )
        assert invalidate_for_delta(cache, noisy_network, twin) == (0, 0)
        assert cache.stats().rekeyed == 0 and cache.stats().invalidated == 0

    def test_raster_service_swap_network(self, noisy_network):
        from repro.model import move_station

        service = RasterService(noisy_network, tile_size=8)
        box = (*self.BOX, 64)
        asyncio.run(service.rasterize(*box))
        moved, delta = move_station(noisy_network, 0, Point(0.3, 0.2))

        rekeyed, dropped = service.swap_network(moved, delta)
        assert rekeyed > 0 and dropped > 0
        assert service.network is moved

        served = asyncio.run(service.rasterize(*box))
        direct = SINRDiagram(moved).rasterize(*box)
        # Labels agree away from the reception margin; dropped tiles were
        # recomputed, so the moved station's neighbourhood is exact.
        agreement = np.mean(served.labels == direct.labels)
        assert agreement > 0.99
