"""Tests for the univariate polynomial type."""

from __future__ import annotations

import pytest

from repro.algebra import Polynomial
from repro.exceptions import AlgebraError


class TestConstruction:
    def test_trailing_zero_coefficients_are_trimmed(self):
        assert Polynomial([1.0, 2.0, 0.0, 0.0]).degree() == 1

    def test_zero_and_constant(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.constant(3.0)(10.0) == 3.0

    def test_monomial_and_linear(self):
        assert Polynomial.monomial(3, 2.0)(2.0) == pytest.approx(16.0)
        assert Polynomial.linear(1.0, 2.0)(3.0) == pytest.approx(7.0)

    def test_monomial_negative_degree_rejected(self):
        with pytest.raises(AlgebraError):
            Polynomial.monomial(-1)

    def test_from_roots(self):
        polynomial = Polynomial.from_roots([1.0, -2.0], leading=3.0)
        assert polynomial(1.0) == pytest.approx(0.0)
        assert polynomial(-2.0) == pytest.approx(0.0)
        assert polynomial.leading_coefficient() == pytest.approx(3.0)

    def test_getitem_out_of_range_is_zero(self):
        assert Polynomial([1.0, 2.0])[5] == 0.0


class TestEvaluationAndSigns:
    def test_horner_evaluation(self):
        polynomial = Polynomial([1.0, -3.0, 2.0])  # 2x^2 - 3x + 1
        assert polynomial(0.0) == pytest.approx(1.0)
        assert polynomial(1.0) == pytest.approx(0.0)
        assert polynomial(2.0) == pytest.approx(3.0)

    def test_sign_at(self):
        polynomial = Polynomial([-1.0, 0.0, 1.0])  # x^2 - 1
        assert polynomial.sign_at(2.0) == 1
        assert polynomial.sign_at(0.0) == -1
        assert polynomial.sign_at(1.0) == 0

    def test_signs_at_infinity(self):
        even = Polynomial([0.0, 0.0, 1.0])  # x^2
        odd = Polynomial([0.0, 1.0])  # x
        assert even.sign_at_plus_infinity() == even.sign_at_minus_infinity() == 1
        assert odd.sign_at_plus_infinity() == 1
        assert odd.sign_at_minus_infinity() == -1
        negative_cubic = Polynomial([0.0, 0.0, 0.0, -2.0])
        assert negative_cubic.sign_at_plus_infinity() == -1
        assert negative_cubic.sign_at_minus_infinity() == 1


class TestArithmetic:
    def test_addition_and_subtraction(self):
        a = Polynomial([1.0, 2.0])
        b = Polynomial([3.0, -2.0, 1.0])
        assert (a + b).coefficients == (4.0, 0.0, 1.0)
        assert (b - a).coefficients == (2.0, -4.0, 1.0)
        assert (a + 1.0)(0.0) == pytest.approx(2.0)

    def test_multiplication(self):
        a = Polynomial([1.0, 1.0])  # 1 + x
        b = Polynomial([-1.0, 1.0])  # -1 + x
        assert (a * b).coefficients == (-1.0, 0.0, 1.0)
        assert (a * 2.0).coefficients == (2.0, 2.0)

    def test_power(self):
        squared = Polynomial([1.0, 1.0]) ** 2
        assert squared.coefficients == (1.0, 2.0, 1.0)
        assert (Polynomial([2.0]) ** 0).coefficients == (1.0,)
        with pytest.raises(AlgebraError):
            Polynomial([1.0]) ** -1

    def test_division_with_remainder(self):
        dividend = Polynomial([-1.0, 0.0, 0.0, 1.0])  # x^3 - 1
        divisor = Polynomial([-1.0, 1.0])  # x - 1
        quotient, remainder = dividend.divmod(divisor)
        assert remainder.is_zero(tolerance=1e-12)
        assert quotient.coefficients == pytest.approx((1.0, 1.0, 1.0))

    def test_division_identity(self):
        dividend = Polynomial([3.0, -2.0, 5.0, 1.0])
        divisor = Polynomial([1.0, 1.0, 2.0])
        quotient, remainder = divmod(dividend, divisor)
        reconstructed = quotient * divisor + remainder
        for x in (-2.0, -0.5, 0.0, 1.3, 4.0):
            assert reconstructed(x) == pytest.approx(dividend(x))

    def test_division_by_zero_raises(self):
        with pytest.raises(AlgebraError):
            Polynomial([1.0, 1.0]).divmod(Polynomial.zero())

    def test_mod_and_floordiv_operators(self):
        dividend = Polynomial([1.0, 0.0, 1.0])
        divisor = Polynomial([1.0, 1.0])
        assert (dividend % divisor).degree() == 0
        assert (dividend // divisor).degree() == 1


class TestCalculusAndComposition:
    def test_derivative(self):
        polynomial = Polynomial([5.0, 3.0, 2.0])  # 2x^2 + 3x + 5
        assert polynomial.derivative().coefficients == (3.0, 4.0)
        assert Polynomial.constant(7.0).derivative().is_zero()

    def test_compose(self):
        outer = Polynomial([0.0, 0.0, 1.0])  # x^2
        inner = Polynomial([1.0, 1.0])  # x + 1
        composed = outer.compose(inner)
        assert composed(2.0) == pytest.approx(9.0)

    def test_shifted(self):
        polynomial = Polynomial([0.0, 0.0, 1.0])  # x^2
        shifted = polynomial.shifted(3.0)  # (x + 3)^2
        assert shifted(0.0) == pytest.approx(9.0)
        assert shifted(-3.0) == pytest.approx(0.0)

    def test_normalized_preserves_roots_and_signs(self):
        polynomial = Polynomial([2000.0, -4000.0, 2000.0])
        normalized = polynomial.normalized()
        assert max(abs(c) for c in normalized.coefficients) == pytest.approx(1.0)
        assert normalized(1.0) == pytest.approx(0.0)
        assert normalized.sign_at(5.0) == polynomial.sign_at(5.0)

    def test_cauchy_root_bound(self):
        polynomial = Polynomial.from_roots([1.0, -3.0, 0.5])
        bound = polynomial.cauchy_root_bound()
        assert bound >= 3.0
