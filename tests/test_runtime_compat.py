"""Back-compat: every pre-refactor public surface behaves identically.

The runtime unification rehosted the engine-backend registry, the locator
registry, and six hand-rolled lifecycles onto :mod:`repro.runtime`.  This
module pins the historical entry points — import paths, call signatures,
return types, error types, and exact error wording where callers match on
it — so downstream code written against any earlier PR keeps working
unchanged.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import (
    ObservabilityError,
    PointLocationError,
    ReproError,
    ServiceClosedError,
)


def run(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestBackendSurface:
    """`repro.engine.backend`: the PR-2 API, now a Registry instantiation."""

    def test_imports_and_signatures(self):
        from repro.engine.backend import (  # noqa: F401
            NumpyBackend,
            QueryBackend,
            ReferenceBackend,
            active_backend,
            available_backends,
            get_backend,
            register_backend,
            use_backend,
        )

    def test_available_backends_returns_name_to_instance_mapping(self):
        from repro.engine.backend import QueryBackend, available_backends

        backends = available_backends()
        assert {"numpy", "reference"} <= set(backends)
        for backend in backends.values():
            assert isinstance(backend, QueryBackend)

    def test_get_backend_and_active_backend(self):
        from repro.engine.backend import active_backend, get_backend

        assert type(get_backend("reference")).__name__ == "ReferenceBackend"
        assert type(active_backend()).__name__ == "NumpyBackend"  # default

    def test_use_backend_selection_exposes_dot_backend(self):
        from repro.engine.backend import get_backend, use_backend

        selection = use_backend("reference")
        try:
            assert selection.backend is get_backend("reference")
        finally:
            selection.__exit__(None, None, None)

    def test_use_backend_as_context_manager_restores(self):
        from repro.engine.backend import active_backend, use_backend

        before = active_backend()
        with use_backend("reference") as backend:
            assert backend is active_backend()
        assert active_backend() is before

    def test_unknown_backend_is_reproerror_listing_available(self):
        from repro.engine.backend import get_backend

        with pytest.raises(ReproError, match="available"):
            get_backend("antigravity")

    def test_register_backend_round_trip(self):
        from repro.engine import backend as backend_module

        marker = backend_module.NumpyBackend()
        backend_module.register_backend("compat-scratch", marker)
        try:
            assert backend_module.get_backend("compat-scratch") is marker
            assert "compat-scratch" in backend_module.available_backends()
        finally:
            backend_module.BACKENDS.unregister("compat-scratch")


class TestLocatorSurface:
    """`repro.pointlocation.registry`: the PR-3 API with composed names."""

    def test_imports_and_defaults(self):
        from repro.pointlocation.registry import (  # noqa: F401
            Locator,
            LocatorFactory,
            active_locator,
            available_locators,
            build_locator,
            get_locator,
            register_locator,
            use_locator,
        )

        assert "voronoi" in available_locators()

    def test_use_locator_selection_exposes_dot_factory(self):
        from repro.pointlocation.registry import get_locator, use_locator

        selection = use_locator("voronoi")
        try:
            assert selection.factory is get_locator("voronoi")
        finally:
            selection.__exit__(None, None, None)

    def test_composed_name_resolves_without_registration(self):
        from repro.pointlocation.registry import (
            available_locators,
            get_locator,
        )

        assert "sharded:voronoi" not in available_locators()
        factory = get_locator("sharded:voronoi")
        assert type(factory).__name__ == "_ComposedFactory"

    def test_registering_a_composed_spelling_keeps_exact_wording(self):
        from repro.pointlocation.registry import register_locator

        with pytest.raises(
            PointLocationError,
            match=(
                r"locator names must not contain ':'; composed names like "
                r"'sharded:voronoi' are derived, not registered"
            ),
        ):
            register_locator("bad:name", object())

    def test_unknown_locator_mentions_composed_spellings(self):
        from repro.pointlocation.registry import get_locator

        with pytest.raises(PointLocationError, match="sharded:<inner>"):
            get_locator("antigravity")

    def test_build_locator_unchanged(self, ten_station_network):
        from repro.pointlocation.registry import build_locator

        locator = build_locator(ten_station_network, "voronoi")
        answers = locator.locate_batch(np.array([[1.0, 1.0]]))
        assert answers.shape == (1,)


class TestServiceSurface:
    """Service lifecycle verbs kept their names, awaitability and errors."""

    def test_batcher_start_stop_submit(self):
        from repro.service import MicroBatcher

        async def main():
            batcher = MicroBatcher(
                lambda pts: np.zeros(len(pts), dtype=np.int64),
                latency_budget=0.005,
            )
            await batcher.start()
            assert await batcher.submit((1.0, 2.0)) == 0
            await batcher.stop()
            with pytest.raises(ServiceClosedError):
                await batcher.submit((1.0, 2.0))

        run(main())

    def test_query_service_async_with_and_snapshots(self, ten_station_network):
        from repro.service import QueryService

        async def main():
            async with QueryService(
                ten_station_network, "voronoi", latency_budget=0.005
            ) as service:
                await service.locate((1.0, 2.0))
                snapshot = service.stats_snapshot()
                assert snapshot.submitted == 1
                assert not service.swap_in_progress

        run(main())

    def test_unstarted_service_still_rejects_queries(self, ten_station_network):
        from repro.service import QueryService

        async def main():
            service = QueryService(ten_station_network, "voronoi")
            with pytest.raises(ServiceClosedError):
                await service.locate((1.0, 2.0))

        run(main())


class TestObsSurface:
    def test_hub_double_start_wording(self):
        from repro.obs import MetricsHub

        async def main():
            hub = MetricsHub(interval=1.0)
            await hub.start()
            try:
                with pytest.raises(ObservabilityError, match="already running"):
                    await hub.start()
            finally:
                await hub.stop()

        run(main())

    def test_source_factories_importable_and_shaped(self):
        from repro.obs import (
            batcher_depth_source,
            cache_stats_source,
            screen_stats_source,
            service_stats_source,
            stats_source,
        )
        from repro.raster import TileCache
        from repro.service import ServiceStats

        assert service_stats_source(ServiceStats())()["submitted"] == 0.0
        cache_sample = cache_stats_source(TileCache(max_bytes=1 << 20))()
        assert {"hits", "requests", "hit_rate"} <= set(cache_sample)
        # Key-wise comparison: untouched percentile fields are nan, and
        # nan != nan rules out whole-dict equality.
        assert set(stats_source(ServiceStats())()) == set(
            service_stats_source(ServiceStats())()
        )
        assert callable(batcher_depth_source) and callable(screen_stats_source)
