"""Tests for bivariate polynomials, root helpers and the reception polynomial."""

from __future__ import annotations

import math
import random

import pytest

from repro import Point, WirelessNetwork
from repro.algebra import (
    BivariatePolynomial,
    Polynomial,
    ReceptionPolynomial,
    cubic_discriminant,
    cubic_has_single_real_root,
    numeric_real_roots,
    quartic_depressed_form,
    real_roots_of_quadratic,
    squared_distance_polynomial,
)
from repro.exceptions import AlgebraError


class TestRootHelpers:
    def test_quadratic_roots(self):
        assert real_roots_of_quadratic(2.0, -3.0, 1.0) == pytest.approx([1.0, 2.0])
        assert real_roots_of_quadratic(1.0, 0.0, 1.0) == []
        assert real_roots_of_quadratic(1.0, -2.0, 1.0) == pytest.approx([1.0])
        # Degenerates to linear.
        assert real_roots_of_quadratic(-4.0, 2.0, 0.0) == pytest.approx([2.0])

    def test_cubic_discriminant_sign(self):
        # x^3 - x has three real roots -> positive discriminant.
        assert cubic_discriminant(0.0, -1.0, 0.0, 1.0) > 0
        # x^3 + x has one real root -> negative discriminant.
        assert cubic_discriminant(0.0, 1.0, 0.0, 1.0) < 0
        assert cubic_has_single_real_root(0.0, 1.0, 0.0, 1.0)
        assert not cubic_has_single_real_root(0.0, -1.0, 0.0, 1.0)

    def test_cubic_helper_requires_cubic(self):
        with pytest.raises(AlgebraError):
            cubic_has_single_real_root(1.0, 1.0, 1.0, 0.0)

    def test_quartic_depression_removes_cubic_term(self):
        shift, p, q, r = quartic_depressed_form(1.0, -2.0, 3.0, -4.0, 1.0)
        original = Polynomial([1.0, -2.0, 3.0, -4.0, 1.0])
        depressed = Polynomial([r, q, p, 0.0, 1.0])
        for z in (-2.0, -0.5, 0.0, 1.0, 2.5):
            assert depressed(z) == pytest.approx(original(z + shift), rel=1e-9, abs=1e-9)

    def test_numeric_real_roots(self):
        polynomial = Polynomial.from_roots([-1.0, 2.0, 2.0])
        roots = numeric_real_roots(polynomial)
        assert min(roots) == pytest.approx(-1.0, abs=1e-6)
        assert max(roots) == pytest.approx(2.0, abs=1e-4)


class TestBivariatePolynomial:
    def test_evaluation_and_arithmetic(self):
        x = BivariatePolynomial.x()
        y = BivariatePolynomial.y()
        q = x * x + y * y - 1.0
        assert q(1.0, 0.0) == pytest.approx(0.0)
        assert q(0.0, 0.0) == pytest.approx(-1.0)
        assert (q + 1.0)(0.0, 0.0) == pytest.approx(0.0)
        assert (2.0 * q)(2.0, 0.0) == pytest.approx(6.0)

    def test_total_degree_and_coefficients(self):
        q = BivariatePolynomial({(2, 1): 3.0, (0, 0): -1.0})
        assert q.total_degree() == 3
        assert q.coefficient(2, 1) == 3.0
        assert q.coefficient(5, 5) == 0.0

    def test_partial_derivatives_and_gradient(self):
        q = BivariatePolynomial.x() ** 2 + BivariatePolynomial.y() ** 3
        assert q.partial_x()(2.0, 1.0) == pytest.approx(4.0)
        assert q.partial_y()(2.0, 1.0) == pytest.approx(3.0)
        gradient = q.gradient(1.0, 2.0)
        assert gradient.x == pytest.approx(2.0)
        assert gradient.y == pytest.approx(12.0)

    def test_restriction_to_segment_matches_direct_evaluation(self):
        q = squared_distance_polynomial(Point(1.0, 2.0))
        start, end = Point(-1.0, 0.0), Point(3.0, 4.0)
        restriction = q.restrict_to_segment(start, end)
        for t in (0.0, 0.3, 0.7, 1.0):
            point = Point(start.x + t * (end.x - start.x), start.y + t * (end.y - start.y))
            assert restriction(t) == pytest.approx(q.evaluate_at_point(point))

    def test_squared_distance_polynomial(self):
        q = squared_distance_polynomial(Point(2.0, -1.0))
        assert q(2.0, -1.0) == pytest.approx(0.0)
        assert q(5.0, 3.0) == pytest.approx(25.0)

    def test_power_and_negative_exponent(self):
        q = BivariatePolynomial.x() + 1.0
        assert (q ** 2)(1.0, 0.0) == pytest.approx(4.0)
        with pytest.raises(AlgebraError):
            q ** -1


class TestReceptionPolynomial:
    def build(self, noise=0.01, beta=3.0):
        return ReceptionPolynomial(
            target_index=0,
            stations=[Point(0, 0), Point(4, 0), Point(0, 5)],
            powers=[1.0, 1.0, 1.0],
            noise=noise,
            beta=beta,
        )

    def test_validation(self):
        with pytest.raises(AlgebraError):
            ReceptionPolynomial(0, [Point(0, 0)], [1.0], 0.0, 1.0)
        with pytest.raises(AlgebraError):
            ReceptionPolynomial(5, [Point(0, 0), Point(1, 1)], [1.0, 1.0], 0.0, 1.0)
        with pytest.raises(AlgebraError):
            ReceptionPolynomial(0, [Point(0, 0), Point(1, 1)], [1.0], 0.0, 1.0)
        with pytest.raises(AlgebraError):
            ReceptionPolynomial(0, [Point(0, 0), Point(1, 1)], [1.0, 1.0], -1.0, 1.0)
        with pytest.raises(AlgebraError):
            ReceptionPolynomial(0, [Point(0, 0), Point(1, 1)], [1.0, 1.0], 0.0, 0.0)

    def test_degree(self):
        assert self.build(noise=0.01).degree() == 6
        assert self.build(noise=0.0).degree() == 4

    def test_sign_agrees_with_sinr_rule(self):
        network = WirelessNetwork.uniform(
            [(0, 0), (4, 0), (0, 5)], noise=0.01, beta=3.0
        )
        polynomial = network.reception_polynomial(0)
        rng = random.Random(5)
        for _ in range(300):
            point = Point(rng.uniform(-6, 8), rng.uniform(-6, 8))
            assert polynomial.is_received(point) == network.is_received(0, point)

    def test_negative_inside_positive_outside(self):
        polynomial = self.build()
        assert polynomial(0.3, 0.1) < 0.0
        assert polynomial(3.0, 3.0) > 0.0

    def test_restriction_matches_evaluation(self):
        polynomial = self.build()
        start, end = Point(-2.0, -1.0), Point(5.0, 4.0)
        restriction = polynomial.restrict_to_segment(start, end)
        for t in (0.0, 0.2, 0.5, 0.8, 1.0):
            point = Point(
                start.x + t * (end.x - start.x), start.y + t * (end.y - start.y)
            )
            expected = polynomial.evaluate_at_point(point)
            assert restriction(t) == pytest.approx(expected, rel=1e-9, abs=1e-6)

    def test_restriction_degree(self):
        polynomial = self.build(noise=0.01)
        restriction = polynomial.restrict_to_segment(Point(-1, -1), Point(2, 3))
        assert restriction.degree() == 6

    def test_horizontal_restriction(self):
        polynomial = self.build()
        restriction = polynomial.restrict_to_horizontal_line(1.0)
        assert restriction(0.5) == pytest.approx(polynomial(0.5, 1.0), rel=1e-9)

    def test_count_boundary_crossings_on_a_diameter(self):
        # A segment passing straight through the zone crosses the boundary twice.
        network = WirelessNetwork.uniform([(0, 0), (6, 0)], noise=0.0, beta=2.0)
        polynomial = network.reception_polynomial(0)
        # The zone of s0 is the Apollonius disk (x+6)^2 + y^2 <= 72, so a
        # horizontal chord from x = -20 (outside) to x = 5.5 (outside) crosses
        # its boundary exactly twice.
        assert polynomial.count_boundary_crossings(Point(-20, 0.3), Point(5.5, 0.3)) == 2
        # A segment far away never crosses.
        assert polynomial.count_boundary_crossings(Point(-10, 50), Point(10, 50)) == 0

    def test_convexity_implies_at_most_two_crossings(self):
        network = WirelessNetwork.uniform(
            [(0, 0), (4, 0), (0, 5), (6, 6)], noise=0.01, beta=2.0
        )
        polynomial = network.reception_polynomial(0)
        rng = random.Random(9)
        for _ in range(50):
            angle = rng.uniform(0, math.pi)
            offset = rng.uniform(-3, 3)
            direction = Point(math.cos(angle), math.sin(angle))
            normal = direction.perpendicular()
            anchor = Point(0, 0) + normal * offset - direction * 20.0
            end = Point(0, 0) + normal * offset + direction * 20.0
            assert polynomial.count_boundary_crossings(anchor, end) <= 2

    def test_expanded_form_matches_factored_form(self):
        polynomial = self.build()
        expanded = polynomial.expanded()
        rng = random.Random(2)
        for _ in range(50):
            x, y = rng.uniform(-5, 5), rng.uniform(-5, 5)
            assert expanded(x, y) == pytest.approx(polynomial(x, y), rel=1e-9, abs=1e-6)

    def test_station_location_is_received(self):
        polynomial = self.build()
        assert polynomial.is_received(Point(0, 0))
        assert not polynomial.is_received(Point(4, 0))
