"""Setuptools entry point (also usable in fully offline environments).

Kept as an executable ``setup.py`` (rather than PEP 621 metadata only) so
that ``pip install -e .`` / ``python setup.py develop`` work without the
``wheel`` package, which PEP 660 editable installs would require.
"""

from setuptools import find_packages, setup

setup(
    name="repro-sinr-diagrams",
    version="1.0.0",
    description=(
        "Reproduction of 'SINR Diagrams: Towards Algorithmically Usable "
        "SINR Models of Wireless Networks' (PODC 2009) with a batched "
        "query engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # Ship the PEP 561 typing marker and the linter's committed baseline so
    # installed copies type-check and `python -m repro.lint` behaves exactly
    # like an in-tree run.
    package_data={"repro": ["py.typed", "lint/baseline.json"]},
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
        ],
        # Static-analysis toolchain (the reprolint linter itself is
        # pure-stdlib and needs nothing).
        "dev": [
            "mypy>=1.0",
            "ruff>=0.4",
        ],
        # Optional JIT engine backend; without it `repro.engine` simply does
        # not register the "numba" backend.
        "numba": [
            "numba>=0.57",
        ],
        # Optional CUDA engine backend; without it (or without a visible
        # device) `repro.engine` simply does not register the "gpu" backend.
        "gpu": [
            "cupy-cuda12x",
        ],
    },
)
