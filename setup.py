"""Setup shim for environments without the ``wheel`` package.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` / ``python setup.py develop`` work in
fully offline environments where PEP 660 editable installs (which require the
``wheel`` package) are unavailable.
"""

from setuptools import setup

setup()
