#!/usr/bin/env python3
"""Quickstart: build an SINR diagram, inspect reception zones, locate points.

This example walks through the library's core objects:

1. build a uniform power network (the setting of the paper's theorems),
2. ask reception questions at individual points,
3. rasterise the SINR diagram and render it as ASCII art,
4. verify the structural properties the paper proves (convexity, fatness),
5. build the approximate point-location structure of Theorem 3 and query it.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Point, SINRDiagram, WirelessNetwork
from repro.analysis import verify_zone_convexity, verify_zone_fatness
from repro.diagrams import to_ascii
from repro.pointlocation import PointLocationStructure, VoronoiCandidateLocator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A uniform power network: all stations transmit with power 1.
    #    beta is the reception threshold, noise the background noise N.
    # ------------------------------------------------------------------
    network = WirelessNetwork.uniform(
        [(0.0, 0.0), (6.0, 0.0), (3.0, 5.0), (-4.0, 4.0)],
        noise=0.01,
        beta=2.5,
    )
    print(network.describe())

    # ------------------------------------------------------------------
    # 2. Point-wise reception questions.
    # ------------------------------------------------------------------
    diagram = SINRDiagram(network)
    for probe in [Point(1.0, 0.5), Point(3.0, 2.5), Point(10.0, 10.0)]:
        heard = diagram.station_heard_at(probe)
        sinr_values = [round(network.sinr(i, probe), 3) for i in range(len(network))]
        label = f"s{heard}" if heard is not None else "nothing"
        print(f"at {probe.as_tuple()}: hears {label}; per-station SINR {sinr_values}")

    # ------------------------------------------------------------------
    # 3. The SINR diagram as a reception map (ASCII rendering).
    # ------------------------------------------------------------------
    lower_left, upper_right = diagram.default_bounding_box(margin=0.8)
    raster = diagram.rasterize(lower_left, upper_right, resolution=140)
    print("\nSINR diagram (digits = station zones, '.' = no reception):")
    print(to_ascii(raster, station_locations=network.locations(), max_width=90))

    # ------------------------------------------------------------------
    # 4. The structural properties of the zones (Theorems 1 and 2).
    # ------------------------------------------------------------------
    print("\nper-zone structure:")
    for index in range(len(network)):
        zone = diagram.zone(index)
        convexity = verify_zone_convexity(zone, sample_points=40, max_pairs=300)
        fatness = verify_zone_fatness(zone, angles=120)
        print(
            f"  zone {index}: convex={convexity.is_convex}, "
            f"delta={fatness.delta:.3f}, Delta={fatness.Delta:.3f}, "
            f"fatness={fatness.fatness:.3f} (bound {fatness.bound:.3f})"
        )

    # ------------------------------------------------------------------
    # 5. Approximate point location (Theorem 3).
    # ------------------------------------------------------------------
    structure = PointLocationStructure(network, epsilon=0.3)
    exact = VoronoiCandidateLocator(network)
    print(
        f"\npoint-location structure: {structure.size_estimate()} stored cells, "
        f"{structure.report.total_segment_tests} segment tests, "
        f"built in {structure.report.build_seconds:.2f}s"
    )
    for probe in [Point(0.5, 0.5), Point(3.0, 2.5), Point(2.0, 2.0), Point(12.0, -3.0)]:
        answer = structure.locate_answer(probe)
        truth = exact.locate(probe)
        print(
            f"  query {probe.as_tuple()}: {answer.label.value} "
            f"(candidate station s{answer.station}); exact answer: "
            f"{'s' + str(truth) if truth >= 0 else 'nothing'}"
        )


if __name__ == "__main__":
    main()
