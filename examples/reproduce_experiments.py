#!/usr/bin/env python3
"""Run every reproduced experiment and print a paper-vs-measured report.

This drives the programmatic experiment harness
(:mod:`repro.analysis.experiments`), which regenerates each figure and theorem
of the paper and checks its qualitative claim.  The same data, with timings,
is produced by ``pytest benchmarks/ --benchmark-only`` and summarised in
EXPERIMENTS.md.

Run with:  python examples/reproduce_experiments.py
"""

from __future__ import annotations

import time

from repro.analysis import format_report, run_all


def main() -> None:
    started = time.perf_counter()
    results = run_all(epsilon=0.3)
    elapsed = time.perf_counter() - started

    print(format_report(results))
    print()
    reproduced = sum(1 for result in results if result.reproduced)
    print(f"{reproduced} / {len(results)} experiments reproduced "
          f"(total runtime {elapsed:.1f}s)")

    failures = [result for result in results if not result.reproduced]
    if failures:
        print("\nNot reproduced:")
        for result in failures:
            print(f"  - {result.experiment}: measured {result.measured}")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
