#!/usr/bin/env python3
"""UDG versus SINR: false positives and false negatives (Figures 1-4).

The paper motivates SINR diagrams by showing where graph-based models misjudge
reception.  This example replays the paper's scenarios:

* Figure 1 — reception at a fixed receiver flips as one station moves and
  another goes silent;
* Figure 2 — cumulative interference produces a UDG *false positive*;
* Figures 3-4 — adding transmitters one at a time produces UDG *false
  negatives*;
* finally, a disagreement heat-map over a whole region quantifies how often
  the two models differ.

Run with:  python examples/udg_vs_sinr.py
"""

from __future__ import annotations

from repro import Point, SINRDiagram
from repro.diagrams import figure1_panels, figure2_scenario, figure3_4_steps, to_ascii
from repro.graphs import ModelComparator, ReceptionOutcome


def outcome_name(index) -> str:
    return f"s{index + 1}" if index is not None else "nothing"


def replay_figure1() -> None:
    print("=" * 70)
    print("Figure 1: reception depends on the locations/activity of other stations")
    print("=" * 70)
    for panel in figure1_panels():
        heard = panel.sinr_outcome()
        print(f"  panel {panel.name}: {panel.description}")
        print(
            f"    receiver at {panel.receiver.as_tuple()} hears "
            f"{outcome_name(heard)} (expected {outcome_name(panel.expected_sinr)})"
        )


def replay_figure2() -> None:
    print("\n" + "=" * 70)
    print("Figure 2: cumulative interference (UDG false positive)")
    print("=" * 70)
    panel = figure2_scenario()
    print(f"  {panel.description}")
    print(f"    UDG outcome : receiver hears {outcome_name(panel.udg_outcome())}")
    print(f"    SINR outcome: receiver hears {outcome_name(panel.sinr_outcome())}")


def replay_figures_3_4() -> None:
    print("\n" + "=" * 70)
    print("Figures 3-4: adding transmitters one at a time (UDG false negatives)")
    print("=" * 70)
    for panel in figure3_4_steps():
        print(
            f"  {panel.name}: UDG hears {outcome_name(panel.udg_outcome()):>8}, "
            f"SINR hears {outcome_name(panel.sinr_outcome()):>8}   ({panel.description})"
        )


def disagreement_heatmap() -> None:
    print("\n" + "=" * 70)
    print("Model disagreement over a region (sender = s1 of the Figure 2 layout)")
    print("=" * 70)
    panel = figure2_scenario()
    comparator = ModelComparator(panel.network, udg_radius=panel.udg_radius)
    summary = comparator.summarize_grid(
        Point(-10.0, -10.0), Point(10.0, 10.0), sender=0, resolution=80
    )
    for outcome in ReceptionOutcome:
        print(f"  {outcome.value:25s}: {summary.fraction(outcome) * 100.0:6.2f} %")
    print(f"  total disagreement       : {summary.disagreement_fraction * 100.0:6.2f} %")

    print("\n  SINR diagram of the Figure 2 network:")
    diagram = SINRDiagram(panel.network)
    raster = diagram.rasterize(Point(-10, -10), Point(10, 10), resolution=110)
    print(to_ascii(raster, station_locations=panel.network.locations(), max_width=80))


def main() -> None:
    replay_figure1()
    replay_figure2()
    replay_figures_3_4()
    disagreement_heatmap()


if __name__ == "__main__":
    main()
