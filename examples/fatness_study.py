#!/usr/bin/env python3
"""Fatness study: Theorems 2 / 4.1 / 4.2 and the Quasi-UDG connection.

The paper shows that reception zones, besides being convex, cannot be
arbitrarily skewed: the ratio between the enclosing and inscribed radii
(centred at the station) is at most ``(sqrt(beta)+1)/(sqrt(beta)-1)``.  This
example:

1. measures the fatness of zones across network families and betas and
   compares against both the O(sqrt(n)) bound of Theorem 4.1 and the O(1)
   bound of Theorem 4.2;
2. demonstrates the worst-case colinear configurations of Section 4.2;
3. derives a Quasi-UDG from the measured radii, quantifying the paper's remark
   that Theorem 2 "lends support" to the Q-UDG model.

Run with:  python examples/fatness_study.py
"""

from __future__ import annotations

import math

from repro import SINRDiagram
from repro.analysis import verify_zone_fatness
from repro.geometry import theoretical_fatness_bound
from repro.graphs import QuasiUnitDiskGraph
from repro.pointlocation import explicit_radius_bounds
from repro.workloads import colinear_network, ring_network, uniform_random_network


def sweep_beta() -> None:
    print("fatness of zone 0 as the reception threshold beta grows")
    print(f"{'beta':>6} {'delta':>8} {'Delta':>8} {'measured':>9} {'bound 4.2':>10}")
    for beta in (1.5, 2.0, 3.0, 6.0, 10.0):
        network = uniform_random_network(
            6, side=12.0, minimum_separation=2.0, noise=0.01, beta=beta, seed=8
        )
        zone = SINRDiagram(network).zone(0)
        result = verify_zone_fatness(zone, angles=180)
        print(
            f"{beta:>6.1f} {result.delta:>8.3f} {result.Delta:>8.3f} "
            f"{result.fatness:>9.3f} {result.bound:>10.3f}"
        )


def worst_case_colinear() -> None:
    print("\nworst-case colinear networks (Section 4.2.2), beta = 2")
    bound = theoretical_fatness_bound(2.0)
    print(f"{'stations':>9} {'measured fatness':>17} {'Thm 4.1 (O(sqrt n))':>20} "
          f"{'Thm 4.2 (O(1)) = %.3f' % bound:>22}")
    for station_count in (2, 4, 8, 16):
        network = colinear_network(station_count, spacing=2.0, beta=2.0)
        zone = SINRDiagram(network).zone(0)
        result = verify_zone_fatness(zone, angles=180)
        explicit = explicit_radius_bounds(network, 0)
        print(
            f"{station_count:>9d} {result.fatness:>17.3f} "
            f"{explicit.ratio:>20.3f} {'holds' if result.satisfies_bound else 'VIOLATED':>22}"
        )


def quasi_udg_connection() -> None:
    print("\nQuasi-UDG derived from measured zone radii (ring of 8 stations, beta = 2)")
    network = ring_network(8, radius=6.0, beta=2.0)
    qudg = QuasiUnitDiskGraph.from_sinr_network(network, angles=120)
    bound = theoretical_fatness_bound(network.beta)
    print(f"  inner (certain reception) radius : {qudg.inner_radius:.3f}")
    print(f"  outer (possible reception) radius: {qudg.outer_radius:.3f}")
    print(f"  radius ratio                     : {qudg.radius_ratio:.3f}")
    print(f"  Theorem 4.2 fatness bound        : {bound:.3f}")
    print(
        "  the ratio of the two Q-UDG radii is controlled by the fatness "
        "bound, which is exactly the sense in which Theorem 2 supports the "
        "Quasi-UDG model of Kuhn et al."
    )


def main() -> None:
    sweep_beta()
    worst_case_colinear()
    quasi_udg_connection()


if __name__ == "__main__":
    main()
