#!/usr/bin/env python3
"""A point-location "service": Theorem 3 in action, at sharded scale.

A base-station planner wants to answer, for millions of candidate handset
positions, "which access point (if any) will this position hear?"  The naive
answer costs O(n) per query; the paper's data structure answers in O(log n)
after a one-off preprocessing pass; and once the deployment outgrows a single
flat station set, the sharded locator partitions it spatially while keeping
every answer bit-identical to brute force.

This example builds every registered locator *by name* through the locator
registry, shows the epsilon sweep of the Theorem 3 structure, and compares
batched throughput across the whole locator matrix (including the
``sharded:<inner>`` compositions) and across the engine backends.

Run with:  python examples/point_location_service.py
"""

from __future__ import annotations

import time

from repro import Point
from repro.engine import locate_batch
from repro.pointlocation import ZoneLabel, get_locator
from repro.workloads import (
    locator_sweep_names,
    random_query_array,
    uniform_random_network,
)


def main() -> None:
    network = uniform_random_network(
        8, side=16.0, minimum_separation=2.5, noise=0.005, beta=3.0, seed=4
    )
    print(network.describe())

    query_array = random_query_array(
        4000, Point(-4.0, -4.0), Point(20.0, 20.0), seed=99
    )
    queries = [Point(x, y) for x, y in query_array.tolist()]

    # ------------------------------------------------------------------
    # The approximate structure, for a sweep of epsilon values.
    # ------------------------------------------------------------------
    exact_labels = get_locator("voronoi").build(network).locate_batch(query_array)
    print(f"\n{'epsilon':>8} {'build s':>9} {'cells':>8} {'query us':>9} "
          f"{'uncertain %':>12} {'wrong':>6}")
    for epsilon in (0.5, 0.3, 0.15):
        start = time.perf_counter()
        structure = get_locator("theorem3").build(network, epsilon=epsilon)
        build_seconds = time.perf_counter() - start

        start = time.perf_counter()
        answers = structure.locate_answers(query_array)
        query_seconds = time.perf_counter() - start

        uncertain = sum(1 for a in answers if a.label is ZoneLabel.UNCERTAIN)
        wrong = 0
        for answer, exact in zip(answers, exact_labels.tolist()):
            if answer.label is ZoneLabel.INSIDE and exact != answer.station:
                wrong += 1
            if answer.label is ZoneLabel.OUTSIDE and exact >= 0:
                wrong += 1
        print(
            f"{epsilon:>8.2f} {build_seconds:>9.2f} {structure.size_estimate():>8d} "
            f"{query_seconds / len(queries) * 1e6:>9.2f} "
            f"{uncertain / len(queries) * 100.0:>11.2f}% {wrong:>6d}"
        )

    # ------------------------------------------------------------------
    # The locator matrix, swept by registry name: scalar vs batched
    # throughput, and agreement with the exact baseline.
    # ------------------------------------------------------------------
    print(f"\nlocator sweep over {len(queries)} queries "
          f"(every locator built via get_locator(name)):")
    print(f"{'locator':>20} {'build s':>8} {'scalar q/s':>11} {'batch q/s':>11} "
          f"{'speedup':>8} {'mismatches':>11}")
    build_options = {
        "theorem3": {"epsilon": 0.3},
        "sharded:voronoi": {"shards": 4},
        "sharded:theorem3": {"shards": 4, "inner_options": {"epsilon": 0.3}},
    }
    for name in locator_sweep_names():
        start = time.perf_counter()
        locator = get_locator(name).build(network, **build_options.get(name, {}))
        build_seconds = time.perf_counter() - start

        scalar_sample = queries if name != "brute-force" else queries[:500]
        start = time.perf_counter()
        for query in scalar_sample:
            locator.locate(query)
        scalar_seconds = (time.perf_counter() - start) / len(scalar_sample)

        start = time.perf_counter()
        batch_answers = locate_batch(locator, query_array)
        batch_seconds = (time.perf_counter() - start) / len(queries)

        mismatches = int((batch_answers != exact_labels).sum())
        print(
            f"{name:>20} {build_seconds:>8.2f} {1.0 / scalar_seconds:>11.0f} "
            f"{1.0 / batch_seconds:>11.0f} {scalar_seconds / batch_seconds:>7.1f}x "
            f"{mismatches:>11d}"
        )

    # ------------------------------------------------------------------
    # Engine backends: the same bulk query through each registered backend
    # (numpy, multiprocess, numba when installed, and the pure-Python
    # reference ground truth, timed on a subsample because it is ~100x
    # slower by design).
    # ------------------------------------------------------------------
    from repro.engine import available_backends, heard_station_batch

    print(f"\nheard-station throughput per engine backend "
          f"({len(query_array)} queries):")
    for name in sorted(available_backends()):
        sample = query_array[:250] if name == "reference" else query_array
        # Untimed warm-up: numba pays JIT compilation on its first call and
        # multiprocess pays worker-pool start-up; steady state is the story.
        heard_station_batch(network, sample, backend=name)
        start = time.perf_counter()
        heard_station_batch(network, sample, backend=name)
        seconds_per_query = (time.perf_counter() - start) / len(sample)
        print(f"{name:>24} {1.0 / seconds_per_query:>12.0f} q/s")

    print(
        "\nevery locator in the sweep answers the uniform int64 contract "
        "(station index, -1 for silence); the sharded compositions stay "
        "bit-identical to brute force because interference is always summed "
        "over the full station set."
    )


if __name__ == "__main__":
    main()
