#!/usr/bin/env python3
"""The async point-location service: micro-batching live query traffic.

A deployed SINR model answers "which access point (if any) does this handset
position hear?" for streams of concurrent clients.  Answering each query
alone wastes the engine's vectorisation; the :mod:`repro.service` layer
accumulates concurrent queries for a small latency budget and answers each
group as one ``locate_batch`` call — bit-identically to asking the locator
directly.

This demo builds a 50-station deployment, then:

1. serves Poisson, burst and closed-loop traffic through one
   :class:`QueryService` and prints what the batcher did to each shape;
2. sweeps the latency budget to show the batch-size / latency trade-off;
3. compares per-query asyncio serving (no batching) with the micro-batched
   service and the direct engine call;
4. routes two locators side by side through a :class:`LocatorRouter`.

Run with:  python examples/point_location_service.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro import Point
from repro.pointlocation import build_locator
from repro.service import LocatorRouter, QueryService, serve_points
from repro.workloads import (
    random_query_array,
    run_bursts,
    run_closed_loop,
    run_poisson,
    uniform_random_network,
)

STATIONS = 50
QUERIES = 4000


def build_workload():
    side = 4.0 * STATIONS ** 0.5
    network = uniform_random_network(
        STATIONS, side=side, minimum_separation=1.5, noise=0.002, beta=3.0,
        seed=23,
    )
    queries = random_query_array(
        QUERIES, Point(-2.0, -2.0), Point(side + 2.0, side + 2.0), seed=17
    )
    return network, queries


async def traffic_shapes(network, queries, truth) -> None:
    print("\n-- one service, three traffic shapes "
          "(every answer checked against the direct batch) --")
    shapes = [
        ("poisson 30k q/s", lambda s: run_poisson(s, queries, rate=30_000.0, seed=7)),
        ("bursts of 256", lambda s: run_bursts(s, queries, burst_size=256, gap=0.004)),
        ("closed loop x64", lambda s: run_closed_loop(s, queries, clients=64)),
    ]
    for label, drive in shapes:
        async with QueryService(
            network, "voronoi", latency_budget=0.002, max_batch_size=1024,
            max_pending=QUERIES,
        ) as service:
            answers = await drive(service)
            assert np.array_equal(answers, truth)
            print(f"{label:>18}: {service.stats_snapshot().describe()}")


async def budget_sweep(network, queries, truth) -> None:
    print("\n-- latency budget vs batch shape (poisson 30k q/s) --")
    print(f"{'budget ms':>10} {'batches':>8} {'mean batch':>11} "
          f"{'latency p99 ms':>15}")
    for budget in (0.0005, 0.002, 0.005):
        async with QueryService(
            network, "voronoi", latency_budget=budget, max_batch_size=4096,
            max_pending=QUERIES,
        ) as service:
            answers = await run_poisson(service, queries, rate=30_000.0, seed=9)
            assert np.array_equal(answers, truth)
            stats = service.stats_snapshot()
            print(f"{budget * 1e3:>10.1f} {stats.batches:>8d} "
                  f"{stats.mean_batch_size:>11.1f} "
                  f"{stats.latency_p99 * 1e3:>15.2f}")


def serving_comparison(network, queries, truth) -> None:
    print("\n-- per-query asyncio vs micro-batched vs direct --")
    locator = build_locator(network, "voronoi")

    start = time.perf_counter()
    direct = locator.locate_batch(queries)
    direct_seconds = time.perf_counter() - start

    start = time.perf_counter()
    per_query = serve_points(
        network, queries, locator, latency_budget=0.0, max_batch_size=1,
        max_pending=QUERIES,
    )
    per_query_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched, stats = serve_points(
        network, queries, locator, latency_budget=0.002, max_batch_size=1024,
        max_pending=QUERIES, return_stats=True,
    )
    batched_seconds = time.perf_counter() - start

    assert np.array_equal(direct, truth)
    assert np.array_equal(per_query, truth)
    assert np.array_equal(batched, truth)
    for label, seconds in (
        ("direct locate_batch", direct_seconds),
        ("per-query service", per_query_seconds),
        ("micro-batched service", batched_seconds),
    ):
        print(f"{label:>24}: {QUERIES / seconds:>10,.0f} q/s "
              f"({seconds / QUERIES * 1e6:.1f} us/query)")
    print(f"micro-batching amortised {QUERIES} queries into {stats.batches} "
          f"engine calls ({per_query_seconds / batched_seconds:.1f}x over "
          f"per-query serving)")


async def router_demo(network, queries, truth) -> None:
    print("\n-- LocatorRouter: two locators, one front --")
    async with LocatorRouter(
        network,
        {"voronoi": {}, "sharded:voronoi": {"shards": 8}},
        latency_budget=0.002,
        max_pending=QUERIES,
    ) as router:
        for name in router.locator_names:
            answers = await router.locate_many(name, queries[:1000])
            assert np.array_equal(answers, truth[:1000])
            print(f"{name:>18}: {router.stats_snapshots()[name].describe()}")


def main() -> None:
    network, queries = build_workload()
    print(network.describe())
    truth = build_locator(network, "voronoi").locate_batch(queries)

    asyncio.run(traffic_shapes(network, queries, truth))
    asyncio.run(budget_sweep(network, queries, truth))
    serving_comparison(network, queries, truth)
    asyncio.run(router_demo(network, queries, truth))

    print(
        "\nevery served answer above was bit-identical to the direct "
        "locate_batch call: micro-batching regroups queries across "
        "concurrent clients, it never changes their answers."
    )


if __name__ == "__main__":
    main()
