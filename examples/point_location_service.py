#!/usr/bin/env python3
"""A point-location "service": Theorem 3 in action.

A base-station planner wants to answer, for millions of candidate handset
positions, "which access point (if any) will this position hear?"  The naive
answer costs O(n) per query; the paper's data structure answers in O(log n)
after a one-off preprocessing pass, at the price of an uncertainty band of
controllable area (the parameter epsilon).

This example builds the structure for a mid-sized random deployment, compares
its answers and throughput against the exact baselines, and shows how the
uncertainty band shrinks as epsilon decreases.

Run with:  python examples/point_location_service.py
"""

from __future__ import annotations

import time

from repro import Point
from repro.engine import locate_batch
from repro.pointlocation import (
    BruteForceLocator,
    PointLocationStructure,
    VoronoiCandidateLocator,
    ZoneLabel,
)
from repro.workloads import (
    random_query_array,
    random_query_points,
    uniform_random_network,
)


def main() -> None:
    network = uniform_random_network(
        8, side=16.0, minimum_separation=2.5, noise=0.005, beta=3.0, seed=4
    )
    print(network.describe())

    queries = random_query_points(
        4000, Point(-4.0, -4.0), Point(20.0, 20.0), seed=99
    )

    # ------------------------------------------------------------------
    # Exact baselines.
    # ------------------------------------------------------------------
    brute = BruteForceLocator(network)
    voronoi = VoronoiCandidateLocator(network)

    start = time.perf_counter()
    exact_answers = [voronoi.locate(query) for query in queries]
    voronoi_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for query in queries[:500]:
        brute.locate(query)
    brute_seconds = (time.perf_counter() - start) * (len(queries) / 500)

    # ------------------------------------------------------------------
    # The approximate structure, for a sweep of epsilon values.
    # ------------------------------------------------------------------
    print(f"\n{'epsilon':>8} {'build s':>9} {'cells':>8} {'query us':>9} "
          f"{'uncertain %':>12} {'wrong':>6}")
    batch_structure = None
    for epsilon in (0.5, 0.3, 0.15):
        start = time.perf_counter()
        structure = PointLocationStructure(network, epsilon=epsilon)
        build_seconds = time.perf_counter() - start
        if epsilon == 0.3:
            # Reused below for the batched-throughput comparison.
            batch_structure = structure

        start = time.perf_counter()
        answers = structure.locate_many(queries)
        query_seconds = time.perf_counter() - start

        uncertain = sum(1 for a in answers if a.label is ZoneLabel.UNCERTAIN)
        wrong = 0
        for answer, exact in zip(answers, exact_answers):
            if answer.label is ZoneLabel.INSIDE and exact != answer.station:
                wrong += 1
            if answer.label is ZoneLabel.OUTSIDE and exact is not None:
                wrong += 1
        print(
            f"{epsilon:>8.2f} {build_seconds:>9.2f} {structure.size_estimate():>8d} "
            f"{query_seconds / len(queries) * 1e6:>9.2f} "
            f"{uncertain / len(queries) * 100.0:>11.2f}% {wrong:>6d}"
        )

    # ------------------------------------------------------------------
    # Throughput comparison.
    # ------------------------------------------------------------------
    print("\nper-query time of the exact baselines:")
    print(f"  Voronoi-candidate (O(n)) : {voronoi_seconds / len(queries) * 1e6:8.2f} us")
    print(f"  brute force (O(n^2))     : {brute_seconds / len(queries) * 1e6:8.2f} us")

    # ------------------------------------------------------------------
    # Batched queries: the same workload as one coordinate array through
    # the engine's locate_batch fast paths.
    # ------------------------------------------------------------------
    query_array = random_query_array(
        len(queries), Point(-4.0, -4.0), Point(20.0, 20.0), seed=99
    )

    print(f"\nbatched vs scalar throughput over {len(queries)} queries:")
    print(f"{'locator':>24} {'scalar q/s':>12} {'batch q/s':>12} {'speedup':>8}")
    for name, locator, scalar_seconds in (
        ("Voronoi-candidate", voronoi, voronoi_seconds),
        ("grid structure (DS)", batch_structure, None),
    ):
        if scalar_seconds is None:
            start = time.perf_counter()
            for query in queries:
                locator.locate(query)
            scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        batch_answers = locate_batch(locator, query_array)
        batch_seconds = time.perf_counter() - start
        print(
            f"{name:>24} {len(queries) / scalar_seconds:>12.0f} "
            f"{len(queries) / batch_seconds:>12.0f} "
            f"{scalar_seconds / batch_seconds:>7.1f}x"
        )

    # ------------------------------------------------------------------
    # Engine backends: the same bulk query through each registered backend
    # (numpy, multiprocess, numba when installed, and the pure-Python
    # reference ground truth, timed on a subsample because it is ~100x
    # slower by design).
    # ------------------------------------------------------------------
    from repro.engine import available_backends, heard_station_batch

    print(f"\nheard-station throughput per engine backend "
          f"({len(query_array)} queries):")
    for name in sorted(available_backends()):
        sample = query_array[:250] if name == "reference" else query_array
        # Untimed warm-up: numba pays JIT compilation on its first call and
        # multiprocess pays worker-pool start-up; steady state is the story.
        heard_station_batch(network, sample, backend=name)
        start = time.perf_counter()
        heard_station_batch(network, sample, backend=name)
        seconds_per_query = (time.perf_counter() - start) / len(sample)
        print(f"{name:>24} {1.0 / seconds_per_query:>12.0f} q/s")

    print(
        "\nthe certified answers (inside/outside) of the grid structure are "
        "always consistent with the exact locator; only the thin uncertainty "
        "band is left undecided, and it shrinks linearly with epsilon."
    )


if __name__ == "__main__":
    main()
