#!/usr/bin/env python3
"""Regenerate every figure of the paper as text/PGM/CSV artefacts.

For each figure the script prints the qualitative outcome the paper describes
and writes the rasterised diagrams to ``examples/output/`` so they can be
inspected with any image viewer (PGM) or plotted externally (CSV).

Run with:  python examples/figures_reproduction.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Point, SINRDiagram, TileCache
from repro.analysis import verify_zone_convexity, verify_zone_fatness
from repro.diagrams import (
    figure1_panels,
    figure2_scenario,
    figure3_4_steps,
    figure5_network,
    figure6_network,
    to_ascii,
    write_csv,
    write_pgm,
)
from repro.pointlocation import PointLocationStructure, ZoneLabel

OUTPUT_DIRECTORY = Path(__file__).resolve().parent / "output"

#: One tile cache shared by every rasterisation of the script.  Different
#: panels have different networks (hence fingerprints) and compute their
#: own tiles, but overlapping views of one network — like the Figure 5
#: zoom crop below — are served from tiles an earlier request computed.
PANEL_CACHE = TileCache(max_bytes=128 * 2**20)


def export_panel(panel, stem: str, resolution: int = 220) -> None:
    """Rasterise one figure panel and write PGM + CSV artefacts."""
    raster = panel.rasterize(resolution=resolution, cache=PANEL_CACHE)
    write_pgm(raster, OUTPUT_DIRECTORY / f"{stem}.pgm")
    write_csv(raster, OUTPUT_DIRECTORY / f"{stem}.csv")


def reproduce_figure1() -> None:
    print("Figure 1 — reception flips as stations move / go silent")
    for panel in figure1_panels():
        heard = panel.sinr_outcome()
        status = "OK" if panel.matches_expectations() else "MISMATCH"
        print(f"  [{status}] panel {panel.name}: receiver hears "
              f"{'s%d' % (heard + 1) if heard is not None else 'nothing'}")
        export_panel(panel, f"figure1_{panel.name[-1].lower()}")


def reproduce_figure2() -> None:
    print("Figure 2 — cumulative interference (UDG false positive)")
    panel = figure2_scenario()
    status = "OK" if panel.matches_expectations() else "MISMATCH"
    print(f"  [{status}] UDG hears s1: {panel.udg_outcome() == 0}; "
          f"SINR hears nothing: {panel.sinr_outcome() is None}")
    export_panel(panel, "figure2_sinr")


def reproduce_figures_3_4() -> None:
    print("Figures 3-4 — adding stations one at a time")
    for step, panel in enumerate(figure3_4_steps(), start=1):
        status = "OK" if panel.matches_expectations() else "MISMATCH"
        udg = panel.udg_outcome()
        sinr = panel.sinr_outcome()
        print(
            f"  [{status}] step {step}: UDG hears "
            f"{'s%d' % (udg + 1) if udg is not None else 'nothing':>8}, "
            f"SINR hears {'s%d' % (sinr + 1) if sinr is not None else 'nothing':>8}"
        )
        export_panel(panel, f"figure4_step{step}")


def reproduce_figure5() -> None:
    print("Figure 5 — beta < 1 yields non-convex reception zones")
    network = figure5_network()
    diagram = SINRDiagram(network)
    raster = diagram.rasterize(
        Point(-5, -5), Point(5, 5), resolution=260, cache=PANEL_CACHE
    )
    write_pgm(raster, OUTPUT_DIRECTORY / "figure5.pgm")
    write_csv(raster, OUTPUT_DIRECTORY / "figure5.csv")
    # A zoomed crop on the same pixel lattice: served from the tiles the
    # full view just computed (bit-identical to rasterising it directly).
    zoom = diagram.rasterize(
        Point(-2.5, -2.5), Point(2.5, 2.5), resolution=130, cache=PANEL_CACHE
    )
    write_pgm(zoom, OUTPUT_DIRECTORY / "figure5_zoom.pgm")
    for index in range(len(network)):
        report = verify_zone_convexity(diagram.zone(index), sample_points=60)
        print(f"  zone {index}: convexity check -> "
              f"{'convex' if report.is_convex else 'NON-CONVEX (as the paper shows)'}")
    print("  ASCII rendering:")
    print(to_ascii(raster, station_locations=network.locations(), max_width=72))


def reproduce_figure6() -> None:
    print("Figure 6 — the point-location partition H+ / H? / H-")
    network = figure6_network()
    structure = PointLocationStructure(network, epsilon=0.25)
    diagram = SINRDiagram(network)
    lower_left, upper_right = Point(-7.0, -7.0), Point(7.0, 8.0)
    raster = diagram.rasterize(lower_left, upper_right, resolution=160)

    rows, columns = raster.labels.shape
    characters = []
    for r in range(rows - 1, -1, -2):
        line = []
        for c in range(0, columns, 2):
            answer = structure.locate_answer(
                Point(float(raster.xs[c]), float(raster.ys[r]))
            )
            if answer.label is ZoneLabel.INSIDE:
                line.append(str(answer.station))
            elif answer.label is ZoneLabel.UNCERTAIN:
                line.append("?")
            else:
                line.append(".")
        characters.append("".join(line))
    print("\n".join(characters))
    write_pgm(raster, OUTPUT_DIRECTORY / "figure6_sinr.pgm")
    for index in range(len(network)):
        fatness = verify_zone_fatness(diagram.zone(index), angles=90)
        zone_index = structure.zone_index(index)
        print(
            f"  zone {index}: uncertain-band area {zone_index.uncertain_area():.4f} "
            f"(<= eps * zone area {structure.epsilon * 3.1416 * fatness.delta ** 2:.4f} guaranteed)"
        )


def main() -> None:
    OUTPUT_DIRECTORY.mkdir(parents=True, exist_ok=True)
    reproduce_figure1()
    print()
    reproduce_figure2()
    print()
    reproduce_figures_3_4()
    print()
    reproduce_figure5()
    print()
    reproduce_figure6()
    stats = PANEL_CACHE.stats()
    print(f"\npanel tile cache: {stats.misses} tiles computed, "
          f"{stats.hits} reused (hit rate {stats.hit_rate:.0%})")
    print(f"artefacts written to {OUTPUT_DIRECTORY}")


if __name__ == "__main__":
    main()
