"""The asyncio query service fronting the locator registry.

:class:`QueryService` owns one locator (built by registry name — any name
:func:`repro.pointlocation.get_locator` accepts, including composed
``"sharded:<inner>"`` spellings — or passed pre-built) and one
:class:`~repro.service.batcher.MicroBatcher`.  Awaiting
:meth:`QueryService.locate` queues the point; the batcher answers it
together with every other query that arrived within the latency budget, as
one vectorised ``locate_batch`` call through the active engine backend.

:class:`LocatorRouter` runs one service per locator name, so one process
can serve e.g. ``"voronoi"`` for cheap exact answers and
``"sharded:theorem3"`` for a large deployment side by side, each with its
own batch accumulation and stats.

:func:`serve_points` is the sync facade for scripts and benchmarks: it
spins up an event loop, serves an array of points through a temporary
service with maximal concurrency, and returns the ``int64`` answers.
"""

from __future__ import annotations

import asyncio
import functools
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..engine.batch import PointsLike, as_points_array
from ..exceptions import ServiceClosedError, ServiceError
from ..pointlocation.registry import Locator, build_locator
from ..runtime.component import Component
from ..runtime.epoch import EpochCoordinator, drain_timeout
from .batcher import MicroBatcher
from .stats import ServiceStats, StatsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..geometry.point import Point
    from ..model.delta import NetworkDelta
    from ..model.network import WirelessNetwork
    from ..obs import MetricsHub

#: One query point in any form locate() accepts.
PointLike = Union["Point", Tuple[float, float], "np.ndarray"]

__all__ = ["QueryService", "LocatorRouter", "serve_points"]


class QueryService(Component):
    """Micro-batched async point location over one locator.

    A :class:`~repro.runtime.Component`: ``start()`` exactly once,
    ``stop(drain=...)`` idempotent and final, usable as an async context
    manager; network swaps delegate to a per-service
    :class:`~repro.runtime.EpochCoordinator`.

    Args:
        network: the :class:`~repro.model.network.WirelessNetwork` served.
        locator: a registry name (``"voronoi"``, ``"theorem3"``,
            ``"sharded:voronoi"``, ...), ``None`` for the context's active
            locator selection, or an already built locator object (anything
            with a ``locate_batch``).
        build_options: forwarded to the locator factory's ``build`` when
            ``locator`` is a name (e.g. ``{"epsilon": 0.3}`` or
            ``{"shards": 8}``).
        metrics: an optional :class:`repro.obs.MetricsHub` to report into.
            The service registers a :func:`repro.obs.query_service_source`
            under a unique name (``"service"`` when free) at construction
            and deregisters it — plus any controller sink — when stopped;
            the hub's own lifecycle stays with the caller.
        controller: an optional :class:`repro.control.Controller` (e.g.
            :class:`repro.control.AdaptiveLatencyBudget`) closing the loop
            on this service's batcher.  It is bound to the batcher, pointed
            at this service's metrics source, gated off while an epoch swap
            is in progress, and registered as a sink.  When no ``metrics``
            hub is supplied the service creates a private one and runs its
            periodic task over the service's own lifetime.
        **batcher_options: :class:`MicroBatcher` knobs — ``latency_budget``,
            ``max_batch_size``, ``max_pending``, ``dispatch_in_thread``,
            ``dispatch_workers``.

    Use as an async context manager (``async with QueryService(...)``) or
    call :meth:`start` / :meth:`stop` explicitly.  The locator is built
    eagerly in the constructor so that expensive preprocessing (e.g.
    ``theorem3``) happens before the service advertises itself as up.
    """

    def __init__(
        self,
        network: "WirelessNetwork",
        locator: Union[str, Locator, None] = "voronoi",
        *,
        build_options: Optional[Mapping[str, object]] = None,
        metrics: "Optional[MetricsHub]" = None,
        controller: Optional[object] = None,
        **batcher_options: object,
    ) -> None:
        self.network = network
        if locator is None or isinstance(locator, str):
            self._locator_spec: Union[str, None] = locator
            self._build_options = dict(build_options or {})
            self.locator = build_locator(network, locator, **self._build_options)
            self.locator_name = locator if isinstance(locator, str) else getattr(
                self.locator, "name", "<active>"
            )
        else:
            if build_options:
                raise ServiceError(
                    "build_options only apply when the locator is built by name"
                )
            if not hasattr(locator, "locate_batch"):
                raise ServiceError(
                    "a pre-built locator must provide locate_batch(points)"
                )
            self._locator_spec = None
            self._build_options = {}
            self.locator = locator
            self.locator_name = getattr(locator, "name", type(locator).__name__)
        self._prebuilt = not (locator is None or isinstance(locator, str))
        self._batcher = MicroBatcher(self.locator.locate_batch, **batcher_options)
        self._epoch = EpochCoordinator()
        self._owns_hub = controller is not None and metrics is None
        if self._owns_hub:
            # Imported lazily: the observability layer is optional wiring,
            # and obs itself never imports the service tier (sources
            # duck-type their subjects), so this cannot cycle.
            from ..obs import MetricsHub

            metrics = MetricsHub()
        self.metrics = metrics
        self.controller = controller
        self._metrics_source_name: Optional[str] = None
        if metrics is not None:
            from ..obs import query_service_source

            name = metrics.unique_source_name("service")
            metrics.add_source(name, query_service_source(self))
            self._metrics_source_name = name
            if controller is not None:
                # getattr/setattr narrowing: controllers are duck-typed (any
                # hub sink works), so only wire the hooks a given one has.
                if hasattr(controller, "source"):
                    setattr(controller, "source", name)
                set_gate = getattr(controller, "set_gate", None)
                if callable(set_gate):
                    set_gate(self._epoch.gate())
                bind = getattr(controller, "bind", None)
                if callable(bind):
                    bind(self._batcher)
                metrics.add_sink(controller)

    # -- lifecycle -------------------------------------------------------
    lifecycle_error = ServiceError
    closed_error = ServiceClosedError

    async def _do_start(self) -> None:
        await self._batcher.start()
        if self._owns_hub and self.metrics is not None:
            await self.metrics.start()

    async def _do_stop(self, drain: bool) -> None:
        if self._owns_hub and self.metrics is not None and self.metrics.running:
            # Stop the hub while the batcher is still draining-capable: its
            # final collect records the post-traffic stats, and the gated
            # controller sees them before the service goes away.
            await self.metrics.stop()
        await self._batcher.stop(drain=drain)
        if self.metrics is not None and not self._owns_hub:
            # A shared hub outlives this service: withdraw our source and
            # controller sink so later ticks don't sample a stopped batcher.
            if self._metrics_source_name is not None:
                self.metrics.remove_source(self._metrics_source_name)
                self._metrics_source_name = None
            if self.controller is not None:
                self.metrics.remove_sink(self.controller)

    # -- queries ---------------------------------------------------------
    async def locate(self, point: "PointLike") -> int:
        """Answer one query: the heard station's index, or ``-1`` for silence.

        The answer is bit-identical to the locator's own ``locate_batch``
        on the same point — micro-batching regroups queries, never changes
        their answers.
        """
        return await self._batcher.submit(point)

    async def locate_many(self, points: PointsLike) -> np.ndarray:
        """Submit a whole batch concurrently; answers in query order (int64).

        Every point becomes an individual service query (they may be split
        across several micro-batches); the returned array matches a direct
        ``locate_batch`` on the same points exactly.
        """
        pts = as_points_array(points)
        answers = await asyncio.gather(
            *(self._batcher.submit((x, y)) for x, y in pts)
        )
        return np.asarray(answers, dtype=np.int64)

    # -- epoch swaps -----------------------------------------------------
    async def swap_network(
        self,
        new_network: "WirelessNetwork",
        delta: "Optional[NetworkDelta]" = None,
        *,
        locator: Optional[Locator] = None,
        drain_old: bool = True,
    ) -> Locator:
        """Install ``new_network`` for new batches; drain the old epoch.

        The dynamic-network handoff, in three ordered steps:

        1. **Build off-loop.**  The new locator is produced on an executor
           thread (the event loop keeps sealing batches against the old
           epoch meanwhile): incrementally via the current locator's
           ``updated(new_network, delta)`` when it has one (e.g.
           :class:`~repro.pointlocation.sharded.ShardedLocator`), otherwise
           a fresh registry build with this service's original name and
           build options.  Pass ``locator=`` to install a pre-built one
           instead (then ``delta`` is unused).
        2. **Flip the epoch.**  The batcher's answer function is replaced
           atomically from the loop thread.  Batches sealed before the flip
           keep the old function (captured at seal time), batches sealed
           after use the new one — no torn reads, no mixed-epoch batch, and
           queries queued across the flip are simply answered by the new
           epoch.  ``ServiceStats.record_swap`` stamps the update latency
           (build + flip) and bumps the epoch counter.
        3. **Drain.**  With ``drain_old=True`` (default) the call returns
           only after every old-epoch batch has resolved its futures, so no
           in-flight query is lost; the wait is bounded by the
           ``REPRO_SERVICE_DRAIN_TIMEOUT`` knob (seconds).  ``drain_old=
           False`` returns at the flip and lets the old epoch finish in the
           background — cancellation-safe either way, since the flip has
           already happened when the drain starts.

        Returns the installed locator.  Safe to call before :meth:`start`
        (it just replaces the locator).

        The gate-build-flip-record-drain choreography itself lives in this
        service's :class:`~repro.runtime.EpochCoordinator`; attached
        controllers are gated on its ``in_progress`` for the whole span
        (the metrics hub keeps *collecting* throughout — only actuation
        pauses).
        """
        build = None
        if locator is None:
            previous = self.locator
            if hasattr(previous, "updated"):
                build = functools.partial(previous.updated, new_network, delta)
            elif not self._prebuilt:
                build = functools.partial(
                    build_locator, new_network, self._locator_spec,
                    **self._build_options,
                )
            else:
                raise ServiceError(
                    "cannot rebuild an opaque pre-built locator for a new "
                    "network; pass locator= to swap_network"
                )
        elif not hasattr(locator, "locate_batch"):
            raise ServiceError(
                "a pre-built locator must provide locate_batch(points)"
            )

        def flip(built: Optional[Locator]) -> None:
            installed = built if built is not None else locator
            assert installed is not None
            self.network = new_network
            self.locator = installed
            self._batcher.set_locate(installed.locate_batch)

        async def drain() -> None:
            if drain_old and self.running:
                await self._batcher.drain_inflight(timeout=drain_timeout())

        built = await self._epoch.swap(
            build=build, flip=flip, drain=drain,
            record=self.stats.record_swap,
        )
        installed = built if built is not None else locator
        assert installed is not None
        return installed

    # -- introspection ---------------------------------------------------
    @property
    def swap_in_progress(self) -> bool:
        """``True`` while :meth:`swap_network` is building, flipping or
        draining — the window where attached controllers are gated."""
        return self._epoch.in_progress

    @property
    def stats(self) -> ServiceStats:
        return self._batcher.stats

    def stats_snapshot(self) -> StatsSnapshot:
        return self._batcher.stats.snapshot()

    def metrics_sample(self) -> Dict[str, float]:
        """Snapshot counters plus the live batcher gauges, as one flat sample.

        The :class:`~repro.runtime.StatsSource` protocol — what
        :func:`repro.obs.query_service_source` (and therefore the metrics
        hub) samples: the percentile/counter fields of
        :meth:`stats_snapshot` plus ``queue_depth``, ``inflight_batches``
        and the current ``latency_budget``.
        """
        sample = self.stats.metrics_sample()
        sample.update(self._batcher.metrics_sample())
        return sample


class LocatorRouter(Component):
    """One micro-batching service per locator name, behind a single front.

    A :class:`~repro.runtime.Component`: starting the router starts every
    routed service; stopping stops them all (idempotent, final).  The
    router's own :class:`~repro.runtime.EpochCoordinator` gates whole-fleet
    swap sweeps.

    Args:
        network: the network every routed locator serves.
        locators: the routed names — either an iterable of registry names,
            or a mapping ``name -> build_options`` for per-name build
            configuration.
        **batcher_options: shared :class:`MicroBatcher` knobs applied to
            every routed service.

    Each name gets its own :class:`QueryService` (hence its own batcher,
    backpressure bound and stats): a slow ``theorem3`` build or a bursty
    client of one locator never delays batches of another beyond event-loop
    scheduling.
    """

    def __init__(
        self,
        network: "WirelessNetwork",
        locators: Union[Iterable[str], Mapping[str, Mapping[str, object]]],
        **batcher_options: object,
    ) -> None:
        if isinstance(locators, Mapping):
            named: Dict[str, Mapping[str, object]] = dict(locators)
        else:
            named = {name: {} for name in locators}
        if not named:
            raise ServiceError("a LocatorRouter needs at least one locator name")
        self.network = network
        self._epoch = EpochCoordinator()
        self._services: Dict[str, QueryService] = {
            name: QueryService(
                network, name, build_options=options, **batcher_options
            )
            for name, options in named.items()
        }

    # -- lifecycle -------------------------------------------------------
    lifecycle_error = ServiceError
    closed_error = ServiceClosedError

    async def _do_start(self) -> None:
        for service in self._services.values():
            await service.start()

    async def _do_stop(self, drain: bool) -> None:
        for service in self._services.values():
            await service.stop(drain=drain)

    # -- routing ---------------------------------------------------------
    def service(self, name: str) -> QueryService:
        try:
            return self._services[name]
        except KeyError:
            raise ServiceError(
                f"no service routes locator {name!r}; "
                f"routed: {sorted(self._services)}"
            ) from None

    @property
    def locator_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._services))

    async def locate(self, name: str, point: "PointLike") -> int:
        return await self.service(name).locate(point)

    async def locate_many(self, name: str, points: PointsLike) -> np.ndarray:
        return await self.service(name).locate_many(points)

    async def swap_network(
        self,
        new_network: "WirelessNetwork",
        delta: "Optional[NetworkDelta]" = None,
        *,
        drain_old: bool = True,
    ) -> None:
        """Swap every routed service to ``new_network``, one epoch each.

        Services are swapped in sorted-name order; each applies
        :meth:`QueryService.swap_network` (incremental where its locator
        supports ``updated``).  During the sweep, already-swapped services
        answer from the new network while the rest still serve the old one —
        per-service epochs are independent by design, exactly as their
        batchers and stats are.  The sweep counts as one epoch on the
        router's own coordinator, whose ``in_progress`` gate covers the
        whole sweep.
        """
        async with self._epoch.swapping():
            for name in self.locator_names:
                await self._services[name].swap_network(
                    new_network, delta, drain_old=drain_old
                )
            self.network = new_network

    @property
    def swap_in_progress(self) -> bool:
        """``True`` while a whole-router swap sweep is underway."""
        return self._epoch.in_progress

    def stats_snapshots(self) -> Dict[str, StatsSnapshot]:
        return {
            name: service.stats_snapshot()
            for name, service in self._services.items()
        }


def serve_points(
    network: "WirelessNetwork",
    points: PointsLike,
    locator: Union[str, Locator, None] = "voronoi",
    *,
    build_options: Optional[Mapping[str, object]] = None,
    return_stats: bool = False,
    **batcher_options: object,
) -> "np.ndarray | Tuple[np.ndarray, StatsSnapshot]":
    """Serve an array of points through a temporary service, synchronously.

    The script-facing facade: runs its own event loop, submits every point
    as an individual concurrent query (so micro-batching genuinely engages),
    and tears the service down cleanly.  Returns the ``int64`` answers — or
    an ``(answers, StatsSnapshot)`` pair with ``return_stats=True`` for
    harnesses that want the batching shape too.

    Must not be called while an event loop is already running in this
    thread (use :class:`QueryService` directly from async code).
    """

    async def _run():
        async with QueryService(
            network, locator, build_options=build_options, **batcher_options
        ) as service:
            answers = await service.locate_many(points)
            return answers, service.stats_snapshot()

    answers, snapshot = asyncio.run(_run())
    if return_stats:
        return answers, snapshot
    return answers
