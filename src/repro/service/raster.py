"""The async raster endpoint: cached tiles behind concurrent zoom/pan traffic.

:class:`RasterService` owns one network and one
:class:`~repro.raster.TileCache` and serves ``rasterize`` requests from
asyncio clients.  Each request runs on an event-loop executor thread (the
tile computation is CPU-bound numpy work that would otherwise stall every
other coroutine), under a :mod:`contextvars` context captured at
construction — so the engine backend selected when the service was created
is the one that computes missing tiles, mirroring the
:class:`~repro.service.batcher.MicroBatcher` contract.

The cache is thread-safe and single-flights concurrent misses, so a burst
of overlapping zoom/pan requests computes every shared tile exactly once
and each response is bit-identical to an uncached
``SINRDiagram.rasterize`` of the same box.  An optional semaphore bounds
how many rasterisations may run concurrently (defence against a client
fanning out hundreds of cold requests at once).
"""

from __future__ import annotations

import asyncio
import contextvars
import weakref
from functools import partial
from typing import Callable, Optional

from ..exceptions import ServiceClosedError, ServiceError
from ..model.diagram import RasterDiagram, SINRDiagram
from ..raster import CacheStats, TileCache, invalidate_for_delta
from ..raster.cache import DEFAULT_MAX_BYTES, DEFAULT_TILE_SIZE
from ..runtime.component import Component
from ..runtime.epoch import EpochCoordinator

__all__ = ["RasterService"]


class RasterService(Component):
    """Cached rasterisation of one network for concurrent async clients.

    A :class:`~repro.runtime.Component` with a *passive* startup: the
    service answers requests straight from construction (it owns no tasks),
    so ``start()`` is optional and exists for uniform composition — a
    :class:`~repro.runtime.Runtime` can boot and retire it like any other
    component.  ``stop()`` is final: it withdraws the service's metrics
    wiring and further requests raise
    :class:`~repro.exceptions.ServiceClosedError`.

    Args:
        network: the :class:`~repro.model.network.WirelessNetwork` served.
        cache: a :class:`~repro.raster.TileCache` to share (e.g. with other
            services over the same network), or ``None`` to create a
            private one from ``max_bytes`` / ``tile_size``.
        max_bytes, tile_size: configuration of the private cache; passing
            them together with an explicit ``cache`` is an error.
        max_concurrency: optional cap on simultaneously running
            rasterisations (``None`` leaves scheduling to the executor).
        metrics: an optional :class:`repro.obs.MetricsHub`; the service
            registers a :func:`repro.obs.cache_stats_source` over its cache
            under a unique name (``"cache"`` when free).  The hub's
            lifecycle stays with the caller — a :class:`RasterService` has
            no start/stop of its own to own a periodic task, so
            ``controller=`` requires ``metrics=``.
        controller: an optional :class:`repro.control.Controller` (e.g.
            :class:`repro.control.CacheBudgetTuner`) closing the loop on
            the tile cache's byte budget: bound to the cache, pointed at
            this service's metrics source, gated off while
            :meth:`swap_network` runs, and registered as a hub sink.
    """

    def __init__(
        self,
        network,
        *,
        cache: Optional[TileCache] = None,
        max_bytes: Optional[int] = None,
        max_concurrency: Optional[int] = None,
        tile_size: Optional[int] = None,
        metrics: Optional[object] = None,
        controller: Optional[object] = None,
    ):
        if cache is not None and (max_bytes is not None or tile_size is not None):
            raise ServiceError(
                "pass either an explicit cache or max_bytes/tile_size, not both"
            )
        if cache is None:
            cache = TileCache(
                max_bytes=DEFAULT_MAX_BYTES if max_bytes is None else max_bytes,
                tile_size=DEFAULT_TILE_SIZE if tile_size is None else tile_size,
            )
        if max_concurrency is not None and max_concurrency < 1:
            raise ServiceError(
                f"max_concurrency must be at least 1, got {max_concurrency}"
            )
        self.network = network
        self.diagram = SINRDiagram(network)
        self.cache = cache
        self._max_concurrency = max_concurrency
        # asyncio primitives bind to the loop they were created under, and
        # one long-lived service may be driven from several asyncio.run
        # calls — so the concurrency semaphore is created per event loop
        # (weakly keyed: a closed loop releases its semaphore with it).
        self._semaphores: "weakref.WeakKeyDictionary[asyncio.AbstractEventLoop, asyncio.Semaphore]" = (
            weakref.WeakKeyDictionary()
        )
        # Captured once so every executor-thread rasterisation sees the
        # engine-backend selection active when the service was built.
        self._context = contextvars.copy_context()
        self._epoch = EpochCoordinator()
        if controller is not None and metrics is None:
            raise ServiceError(
                "a RasterService controller needs a metrics hub to feed it "
                "(the service has no lifecycle of its own to run one); pass "
                "metrics= alongside controller="
            )
        self.metrics = metrics
        self.controller = controller
        self._metrics_source_name: Optional[str] = None
        if metrics is not None:
            # Lazy import: obs duck-types its subjects and never imports the
            # service tier, so this cannot cycle.
            from ..obs import cache_stats_source

            name = metrics.unique_source_name("cache")
            metrics.add_source(name, cache_stats_source(self.cache))
            self._metrics_source_name = name
            if controller is not None:
                if hasattr(controller, "source"):
                    controller.source = name
                if callable(getattr(controller, "set_gate", None)):
                    controller.set_gate(self._epoch.gate())
                if callable(getattr(controller, "bind", None)):
                    controller.bind(self.cache)
                metrics.add_sink(controller)

    # -- lifecycle -------------------------------------------------------
    lifecycle_error = ServiceError
    closed_error = ServiceClosedError

    async def _do_stop(self, drain: bool) -> None:
        # Nothing runs in the background; stopping just withdraws the
        # metrics wiring and closes the request surface.
        self.detach_metrics()

    def detach_metrics(self) -> None:
        """Withdraw this service's source (and controller sink) from the hub.

        Call when retiring the service while its hub lives on; idempotent.
        """
        if self.metrics is None:
            return
        if self._metrics_source_name is not None:
            self.metrics.remove_source(self._metrics_source_name)
            self._metrics_source_name = None
        if self.controller is not None:
            self.metrics.remove_sink(self.controller)

    async def _run_bounded(self, call: Callable):
        """Run ``call`` on an executor thread, under the concurrency cap."""
        loop = asyncio.get_running_loop()
        if self._max_concurrency is None:
            return await loop.run_in_executor(None, call)
        semaphore = self._semaphores.get(loop)
        if semaphore is None:
            semaphore = asyncio.Semaphore(self._max_concurrency)
            self._semaphores[loop] = semaphore
        async with semaphore:
            return await loop.run_in_executor(None, call)

    # -- queries ---------------------------------------------------------
    async def rasterize(
        self, lower_left, upper_right, resolution: int = 200
    ) -> RasterDiagram:
        """Serve one raster request through the shared tile cache.

        Bit-identical to ``SINRDiagram.rasterize(lower_left, upper_right,
        resolution)`` on the same box; concurrent requests share tile
        computation through the cache's single-flight path.
        """
        self._ensure_open()
        # Context.run cannot be entered concurrently from two threads, so
        # each request runs a fresh copy of the captured context (the same
        # convention as the MicroBatcher's dispatch workers).
        call = partial(
            self._context.copy().run,
            partial(
                self.diagram.rasterize,
                lower_left,
                upper_right,
                resolution,
                cache=self.cache,
            ),
        )
        return await self._run_bounded(call)

    async def summary(self, resolution: int = 300) -> dict:
        """The diagram's :meth:`~repro.model.diagram.SINRDiagram.summary`,
        with its raster served from the tile cache (and counted against
        the same ``max_concurrency`` bound as :meth:`rasterize`)."""
        self._ensure_open()
        call = partial(
            self._context.copy().run,
            partial(self.diagram.summary, resolution, cache=self.cache),
        )
        return await self._run_bounded(call)

    # -- network swaps ---------------------------------------------------
    def swap_network(self, new_network, delta=None) -> tuple:
        """Serve ``new_network`` from now on, keeping certifiably valid tiles.

        Applies :func:`repro.raster.invalidate_for_delta` to the backing
        cache — tiles no changed station's certified reach can touch are
        re-keyed to the new network's fingerprint, overlapping tiles are
        dropped (a full drop when re-keying cannot be justified; see that
        function for the exact contract and its label/SINR caveats) — then
        installs the new network and diagram.  Returns the
        ``(rekeyed, dropped)`` counts.

        Synchronous and lock-protected inside the cache, so it is safe to
        call from async code between requests; requests already running on
        executor threads hold their tiles by reference and complete against
        the network they started with.
        """
        self._ensure_open()
        # Gate any attached controller while invalidation runs: a budget
        # decision computed against pre-swap hit rates must not evict or
        # grow mid-invalidation.  The coordinator's sync guard also counts
        # the completed swap as one epoch.
        with self._epoch.guard():
            if new_network.fingerprint != self.network.fingerprint:
                counts = invalidate_for_delta(
                    self.cache, self.network, new_network, delta
                )
            else:
                counts = (0, 0)
            self.network = new_network
            self.diagram = SINRDiagram(new_network)
        return counts

    @property
    def swap_in_progress(self) -> bool:
        """``True`` while :meth:`swap_network` invalidates and reinstalls."""
        return self._epoch.in_progress

    # -- introspection ---------------------------------------------------
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the backing tile cache."""
        return self.cache.stats()

    def metrics_sample(self) -> "dict[str, float]":
        """The backing cache's sample (:class:`~repro.runtime.StatsSource`)."""
        return self.cache.metrics_sample()
