"""Per-service statistics: counters, batch-size shape, latency percentiles.

The micro-batcher records three kinds of facts while it runs:

* *counters* — queries submitted / completed / cancelled / failed, batches
  dispatched, and the running batch-size aggregate;
* *seal waits* — how long each query sat in the accumulation window before
  its batch was sealed (submission to dispatch decision).  This is the
  quantity the latency budget bounds, independent of how slow the locator
  itself is;
* *end-to-end latencies* — submission to answer, which adds the engine call
  on top of the wait.

Waits and latencies are kept in bounded reservoirs (the most recent
``reservoir_size`` samples) so a long-running service never grows without
bound; percentiles are computed on demand from the reservoir.

Everything here is mutated only from the service's event loop thread, so no
locking is needed; :meth:`ServiceStats.snapshot` returns an immutable copy
safe to hand across threads.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Iterable, Sequence

from ..exceptions import ServiceError

__all__ = ["ServiceStats", "StatsSnapshot"]

#: Default number of wait / latency samples retained for percentiles.
DEFAULT_RESERVOIR_SIZE = 4096


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``nan`` when empty).

    Nearest-rank keeps the answer an actually observed value, which is the
    honest choice for small reservoirs; ``fraction`` is in ``[0, 1]``.  The
    rank is the standard ``ceil(fraction * n)`` (1-based): the smallest
    sample with at least ``fraction`` of the data at or below it.  An
    earlier ``round(fraction * (n - 1))`` variant under-reported the tail
    (banker's rounding plus the ``n - 1`` scaling can pick the sample one
    rank *below* the nearest-rank p99), which would mislead every latency
    gate and controller fed from these reservoirs.
    """
    if not samples:
        return float("nan")
    return _ranked(sorted(samples), fraction)


def _ranked(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank pick from an already-sorted ``ordered`` (non-empty)."""
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable view of a service's counters and percentile estimates.

    Latency and wait fields are in seconds; ``nan`` where no sample exists
    yet (e.g. ``latency_p50`` before the first answer).
    """

    submitted: int
    completed: int
    cancelled: int
    failed: int
    batches: int
    mean_batch_size: float
    max_batch_size: int
    wait_p50: float
    wait_p99: float
    latency_p50: float
    latency_p99: float
    epoch: int
    swaps: int
    last_swap_seconds: float

    def describe(self) -> str:
        """One human-readable line (used by the example and benchmarks)."""
        line = (
            f"{self.completed}/{self.submitted} answered in {self.batches} "
            f"batches (mean {self.mean_batch_size:.1f}, max "
            f"{self.max_batch_size}); wait p50/p99 "
            f"{self.wait_p50 * 1e3:.2f}/{self.wait_p99 * 1e3:.2f} ms; "
            f"latency p50/p99 {self.latency_p50 * 1e3:.2f}/"
            f"{self.latency_p99 * 1e3:.2f} ms"
        )
        if self.swaps:
            line += (
                f"; epoch {self.epoch} after {self.swaps} swaps "
                f"(last {self.last_swap_seconds * 1e3:.1f} ms)"
            )
        return line


class ServiceStats:
    """Mutable accumulator owned by one :class:`~repro.service.MicroBatcher`."""

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        if reservoir_size < 1:
            raise ServiceError("reservoir_size must be >= 1")
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.failed = 0
        self.batches = 0
        self.max_batch_size = 0
        self.epoch = 0
        self.swaps = 0
        self.last_swap_seconds = float("nan")
        self._batched_queries = 0
        self._waits: Deque[float] = deque(maxlen=reservoir_size)
        self._latencies: Deque[float] = deque(maxlen=reservoir_size)

    # -- recording (event-loop thread only) -----------------------------
    def record_submitted(self) -> None:
        self.submitted += 1

    def record_cancelled(self) -> None:
        self.cancelled += 1

    def record_batch(self, size: int, waits: Iterable[float]) -> None:
        """One sealed batch of ``size`` live queries and their seal waits."""
        self.batches += 1
        self._batched_queries += size
        self.max_batch_size = max(self.max_batch_size, size)
        self._waits.extend(waits)

    def record_completed(self, latency: float) -> None:
        self.completed += 1
        self._latencies.append(latency)

    def record_failed(self, count: int = 1) -> None:
        self.failed += count

    def record_swap(self, seconds: float) -> None:
        """One completed network swap: bump the epoch, keep update latency.

        ``seconds`` is the swap's update latency — locator build/update up
        to the instant the new epoch started answering sealed batches
        (draining the previous epoch is excluded: it overlaps new-epoch
        service and would double-count in-flight engine time).
        """
        self.epoch += 1
        self.swaps += 1
        self.last_swap_seconds = seconds

    # -- derived views ---------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self._batched_queries / self.batches if self.batches else float("nan")

    def wait_percentile(self, fraction: float) -> float:
        return _percentile(tuple(self._waits), fraction)

    def latency_percentile(self, fraction: float) -> float:
        return _percentile(tuple(self._latencies), fraction)

    def metrics_sample(self) -> Dict[str, float]:
        """The snapshot's fields as one flat numeric sample.

        The :class:`~repro.runtime.StatsSource` protocol: every field of
        :class:`StatsSnapshot` is numeric, so the sample is the snapshot,
        coerced to floats (``nan`` percentile fields included).
        """
        return {
            name: float(value)
            for name, value in asdict(self.snapshot()).items()
        }

    def snapshot(self) -> StatsSnapshot:
        # Sort each reservoir once and take both percentiles from the
        # sorted copy: snapshot() is on the metrics hub's per-tick path,
        # where resorting 4096 samples per percentile is measurable.
        waits = sorted(self._waits)
        latencies = sorted(self._latencies)
        nan = float("nan")
        return StatsSnapshot(
            submitted=self.submitted,
            completed=self.completed,
            cancelled=self.cancelled,
            failed=self.failed,
            batches=self.batches,
            mean_batch_size=self.mean_batch_size,
            max_batch_size=self.max_batch_size,
            wait_p50=_ranked(waits, 0.50) if waits else nan,
            wait_p99=_ranked(waits, 0.99) if waits else nan,
            latency_p50=_ranked(latencies, 0.50) if latencies else nan,
            latency_p99=_ranked(latencies, 0.99) if latencies else nan,
            epoch=self.epoch,
            swaps=self.swaps,
            last_swap_seconds=self.last_swap_seconds,
        )
