"""repro.service — the asyncio micro-batching query service.

Scalar point-location queries arriving one by one (the "millions of users"
traffic shape) would each pay a full Python-call round trip into the engine.
This package amortises them: an asyncio front accumulates concurrent
``locate`` awaitables for a small latency budget (default 2 ms) or until a
batch-size cap, answers the whole group as **one** vectorised
``locate_batch`` call through the active engine backend, and resolves each
submitter's future with its own answer.  Answers are bit-identical to
calling ``locate_batch`` directly on the same points — batching regroups
queries, never changes them — and the property tests in
``tests/test_service.py`` enforce exactly-once delivery under concurrent
submitters, cancellation, and shutdown.

The pieces
==========

:class:`MicroBatcher`
    The batching core: accumulation window, backpressure
    (``max_pending``), cancellation-safe future resolution, clean
    drain/abort shutdown.
:class:`QueryService`
    One locator (any :func:`repro.pointlocation.get_locator` name,
    including ``"sharded:<inner>"`` compositions, or a pre-built object)
    behind a batcher, with per-service :class:`ServiceStats` (batches,
    mean batch size, wait and latency p50/p99).
:class:`LocatorRouter`
    One service per locator name behind a single front.
:func:`serve_points`
    Sync facade for scripts: serve an ``(m, 2)`` array through a temporary
    service and return the ``int64`` answers.
:class:`RasterService`
    The raster endpoint: ``SINRDiagram.rasterize`` requests served through
    a shared :class:`repro.raster.TileCache` on executor threads, so
    concurrent zoom/pan clients reuse each other's tiles (responses stay
    bit-identical to the uncached rasteriser).

Both services accept ``metrics=`` (a :class:`repro.obs.MetricsHub` they
report into) and ``controller=`` (a :class:`repro.control.Controller`
closing the loop on the batcher's latency budget or the cache's byte
budget); controllers are gated off automatically while an epoch swap is in
progress.

Backend / service matrix
========================

The engine backend active when the service **starts** is captured (a
:mod:`contextvars` context copy) and used for every dispatched batch:

================  ===========================================================
``numpy``         Supported, the default.  Fastest for the service's typical
                  micro-batch sizes (hundreds to low thousands of points).
``numba``         Supported when installed; warm the JIT (one throwaway
                  batch) before starting, or the first micro-batch pays
                  compilation inside its latency window.
``multiprocess``  Supported **only** with ``dispatch_in_thread=True`` (the
                  default).  Its worker pool is process-global state and its
                  ``future.result()`` calls block; on a dispatch thread that
                  blocking is harmless, but inline on the event loop
                  (``dispatch_in_thread=False``) it would stall every timer
                  and submitter between batches — don't combine the two.
                  Note the default instance falls through to numpy below
                  2048 points, which typical micro-batches are.
``reference``     Works, but ~100x slower; only sensible in tests.
================  ===========================================================

Quick use::

    from repro.service import QueryService

    async with QueryService(network, "sharded:voronoi",
                            build_options={"shards": 8},
                            latency_budget=0.002) as service:
        station = await service.locate((3.0, 4.0))   # -1 when silent
"""

from .batcher import (
    DEFAULT_LATENCY_BUDGET,
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_PENDING,
    MicroBatcher,
)
from .raster import RasterService
from .service import LocatorRouter, QueryService, serve_points
from .stats import ServiceStats, StatsSnapshot

__all__ = [
    "DEFAULT_LATENCY_BUDGET",
    "DEFAULT_MAX_BATCH_SIZE",
    "DEFAULT_MAX_PENDING",
    "LocatorRouter",
    "MicroBatcher",
    "QueryService",
    "RasterService",
    "ServiceStats",
    "StatsSnapshot",
    "serve_points",
]
