"""The micro-batching core of the async query service.

A :class:`MicroBatcher` turns many concurrent ``await submit(point)`` calls
into few vectorised ``locate_batch`` calls.  Submitted queries accumulate in
an in-loop queue; a batch is *sealed* (handed to the engine) as soon as
either

* the **latency budget** expires, measured from the submission of the
  oldest query in the accumulating batch (default 2 ms), or
* the batch reaches **max_batch_size** queries,

whichever comes first.  Each submitter's future is resolved with exactly its
own answer from the batch array, so the answers are bit-identical to calling
``locate_batch`` on the same points directly — locators never couple two
query points, which is what makes regrouping sound.

Concurrency contract
====================

* every successfully submitted query is answered exactly once — resolved
  with its own answer, failed with the engine's exception, or failed with
  :class:`~repro.exceptions.ServiceClosedError` on a non-draining shutdown;
* a submitter cancelling its ``submit`` call never disturbs the rest of its
  batch: the cancelled entry is skipped at seal/resolution time;
* **backpressure**: at most ``max_pending`` queries may be queued or in
  flight; further ``submit`` calls wait (asynchronously) for capacity;
* the engine call runs on a dedicated worker thread by default
  (``dispatch_in_thread=True``), so the event loop keeps accumulating and
  sealing batches on schedule while the engine computes — including when
  the active engine backend is ``"multiprocess"``, whose blocking
  ``future.result()`` calls must never run on the loop thread (see
  :mod:`repro.service` for the supported backend/service matrix);
* the :mod:`contextvars` context captured at :meth:`start` is used for
  every engine call, so ``use_backend(...)`` / ``use_locator(...)``
  selections made before starting the service apply to dispatched batches
  even though they execute on another thread;
* **epoch capture**: every batch is answered by the ``locate`` function
  installed *when the batch was sealed*.  :meth:`MicroBatcher.set_locate`
  (the serving side of a network swap) therefore never produces a
  mixed-epoch batch — already sealed batches drain against the old
  function, batches sealed afterwards use the new one, and
  :meth:`MicroBatcher.drain_inflight` awaits the boundary.
"""

from __future__ import annotations

import asyncio
import contextvars
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ServiceClosedError, ServiceError
from ..runtime.component import Component
from .stats import ServiceStats

__all__ = [
    "MicroBatcher",
    "DEFAULT_LATENCY_BUDGET",
    "DEFAULT_MAX_BATCH_SIZE",
    "DEFAULT_MAX_PENDING",
]

#: Default accumulation window, in seconds, from the oldest queued query.
DEFAULT_LATENCY_BUDGET = 0.002

#: Default cap on the number of queries sealed into one engine call.
DEFAULT_MAX_BATCH_SIZE = 1024

#: Default backpressure bound on queued + in-flight queries.
DEFAULT_MAX_PENDING = 8192


class _Entry:
    """One submitted query: its coordinates, future, and submission time."""

    __slots__ = ("x", "y", "future", "submitted_at")

    def __init__(self, x: float, y: float, future: "asyncio.Future[int]",
                 submitted_at: float):
        self.x = x
        self.y = y
        self.future = future
        self.submitted_at = submitted_at


def _point_coordinates(point) -> Tuple[float, float]:
    """Coerce a Point / ``(x, y)`` pair / length-2 array into two floats."""
    x = getattr(point, "x", None)
    if x is not None:
        return float(x), float(point.y)
    x, y = point
    return float(x), float(y)


class MicroBatcher(Component):
    """Accumulate async point queries and answer them in vectorised batches.

    A :class:`~repro.runtime.Component`: ``start()`` exactly once,
    ``stop(drain=...)`` idempotent and final, usable as an async context
    manager; lifecycle misuse raises :class:`ServiceError` and use after
    close raises :class:`ServiceClosedError`.

    Args:
        locate: the batch answer function — ``locate(points)`` takes an
            ``(m, 2)`` float array and returns ``m`` int64 answers (any
            registered locator's ``locate_batch`` bound method fits).
        latency_budget: seconds a query may wait for batch-mates, measured
            from the oldest queued query; ``0.0`` seals immediately.
        max_batch_size: seal as soon as this many queries have accumulated.
        max_pending: backpressure bound on queued + in-flight queries.
        dispatch_in_thread: run engine calls on a worker thread (keeps the
            event loop live; required for the ``"multiprocess"`` backend).
            ``False`` runs them inline on the loop — only safe for fast
            in-process backends, and it stalls batch timing meanwhile.
        dispatch_workers: worker-thread count when ``dispatch_in_thread``;
            more than one lets slow engine calls overlap (answers stay
            correctly routed regardless of completion order).
        stats: a :class:`~repro.service.stats.ServiceStats` to record into
            (a fresh one is created when omitted).
    """

    def __init__(
        self,
        locate: Callable[[np.ndarray], np.ndarray],
        *,
        latency_budget: float = DEFAULT_LATENCY_BUDGET,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_pending: int = DEFAULT_MAX_PENDING,
        dispatch_in_thread: bool = True,
        dispatch_workers: int = 1,
        stats: Optional[ServiceStats] = None,
    ):
        if latency_budget < 0.0:
            raise ServiceError("latency_budget must be >= 0")
        if max_batch_size < 1:
            raise ServiceError("max_batch_size must be >= 1")
        if max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        if dispatch_workers < 1:
            raise ServiceError("dispatch_workers must be >= 1")
        self._locate = locate
        self.latency_budget = latency_budget
        self.max_batch_size = max_batch_size
        self.max_pending = max_pending
        self._dispatch_in_thread = dispatch_in_thread
        self._dispatch_workers = dispatch_workers
        self.stats = stats if stats is not None else ServiceStats()

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Deque[_Entry] = deque()
        self._capacity: Optional[asyncio.Semaphore] = None
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._inflight: set = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._context: Optional[contextvars.Context] = None

    # -- lifecycle -------------------------------------------------------
    lifecycle_error = ServiceError
    closed_error = ServiceClosedError

    async def _do_start(self) -> None:
        """Bind to the running event loop and start the dispatcher task.

        Captures the current :mod:`contextvars` context, so engine backend /
        locator selections active *now* govern every dispatched batch.
        """
        self._loop = asyncio.get_running_loop()
        self._capacity = asyncio.Semaphore(self.max_pending)
        self._wake = asyncio.Event()
        self._context = contextvars.copy_context()
        if self._dispatch_in_thread:
            self._executor = ThreadPoolExecutor(
                max_workers=self._dispatch_workers,
                thread_name_prefix="repro-service-dispatch",
            )
        self._dispatcher = self._loop.create_task(
            self._dispatch_loop(), name="repro-service-batcher"
        )

    async def _do_stop(self, drain: bool) -> None:
        """Shut down; ``drain=True`` answers everything pending first.

        Draining seals all queued queries immediately (the latency budget no
        longer applies) and waits for in-flight engine calls to resolve
        their futures.  ``drain=False`` aborts instead: queued and in-flight
        queries fail with :class:`ServiceClosedError`.  Either way, new
        ``submit`` calls raise once ``stop`` has begun, and the batcher
        cannot be restarted.
        """
        if self._dispatcher is None:
            return
        self._wake.set()
        if drain:
            await self._dispatcher
            if self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
        else:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            error = ServiceClosedError("service stopped without draining")
            while self._queue:
                entry = self._queue.popleft()
                if not entry.future.done():
                    entry.future.set_exception(error)
                    self.stats.record_failed()
                else:  # cancelled by its submitter while still queued
                    self.stats.record_cancelled()
            for task in list(self._inflight):
                task.cancel()
            if self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=drain, cancel_futures=not drain)
            self._executor = None
        self._dispatcher = None

    # -- runtime retuning ------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Queries queued but not yet sealed into a batch."""
        return len(self._queue)

    @property
    def inflight_batches(self) -> int:
        """Sealed batches whose engine call has not resolved yet.

        The congestion signal adaptive control keys off: a value persistently
        above the dispatch worker count means batches are being sealed faster
        than the engine answers them.
        """
        return len(self._inflight)

    def metrics_sample(self) -> "dict[str, float]":
        """The live gauges, as one :class:`~repro.runtime.StatsSource` sample."""
        return {
            "queue_depth": float(self.queue_depth),
            "inflight_batches": float(self.inflight_batches),
            "latency_budget": float(self.latency_budget),
        }

    def set_latency_budget(self, budget: float) -> None:
        """Retune the accumulation window at runtime, from any thread.

        The assignment itself is atomic (one float store); the dispatcher
        re-reads the budget on every wake, and this method additionally wakes
        it through the loop so a *shrunk* budget re-arms the deadline of the
        batch currently accumulating instead of letting it sleep out the old
        window.  Safe to call before :meth:`start` (it simply becomes the
        initial budget) and after :meth:`stop` (no effect).
        """
        if budget < 0.0:
            raise ServiceError("latency_budget must be >= 0")
        self.latency_budget = float(budget)
        loop, wake = self._loop, self._wake
        if loop is not None and wake is not None and not self.closed:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:  # loop already closed; nothing left to re-arm
                pass

    # -- epoch handoff ---------------------------------------------------
    def set_locate(self, locate: Callable[[np.ndarray], np.ndarray]) -> None:
        """Install a new batch answer function for *subsequently sealed* batches.

        Must be called from the event-loop thread (like every other mutation
        here).  Batches already sealed keep the function captured at their
        seal time, so no batch ever mixes answers from two epochs; queued
        but unsealed queries are answered by the new function.
        """
        self._locate = locate

    async def drain_inflight(self, timeout: Optional[float] = None) -> None:
        """Wait until every batch sealed so far has resolved its futures.

        The epoch-swap barrier: after :meth:`set_locate`, awaiting this
        guarantees no batch against the previous function is still running.
        Batches sealed *after* the call are not waited on.  Raises
        :class:`ServiceError` when ``timeout`` (seconds) expires first.
        """
        pending = [task for task in self._inflight if not task.done()]
        if not pending:
            return
        _, not_done = await asyncio.wait(pending, timeout=timeout)
        if not_done:
            raise ServiceError(
                f"{len(not_done)} in-flight batches still running after "
                f"{timeout:g}s drain timeout"
            )

    # -- submission ------------------------------------------------------
    async def submit(self, point) -> int:
        """Queue one point and await its station index (``-1`` for silence).

        Applies backpressure: when ``max_pending`` queries are outstanding,
        this call waits for capacity before queueing.  Raises
        :class:`ServiceClosedError` if the batcher is not accepting queries,
        including when shutdown begins while this call is waiting.
        """
        x, y = _point_coordinates(point)
        if not self.running:
            raise ServiceClosedError("the query service is not accepting queries")
        await self._capacity.acquire()
        try:
            if self.closed:
                raise ServiceClosedError(
                    "the query service closed while this query waited for capacity"
                )
            future: "asyncio.Future[int]" = self._loop.create_future()
            self._queue.append(_Entry(x, y, future, self._loop.time()))
            self.stats.record_submitted()
            # Wake the dispatcher only at the two boundaries it acts on: a
            # queue going non-empty (a new deadline must be armed) and a
            # queue reaching the batch cap (seal early).  In-between
            # arrivals ride the already armed deadline timer instead of
            # paying a dispatcher round trip per query.
            if len(self._queue) == 1 or len(self._queue) >= self.max_batch_size:
                self._wake.set()
            return await future
        finally:
            # Sole release point: runs when the future resolves, fails, or
            # the submitter itself is cancelled — capacity counts queued
            # plus in-flight queries and is never released twice.
            self._capacity.release()

    # -- dispatcher ------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = self._loop
        while True:
            # Clear *before* checking, so a submit landing between the check
            # and the wait is never missed (no await separates clear/check).
            self._wake.clear()
            if not self._queue:
                if self.closed:
                    return
                await self._wake.wait()
                continue
            while not self.closed and len(self._queue) < self.max_batch_size:
                # Re-read the budget every wake: set_latency_budget may have
                # retuned it (adaptive control), and the new window must
                # govern the batch currently accumulating.
                deadline = self._queue[0].submitted_at + self.latency_budget
                remaining = deadline - loop.time()
                if remaining <= 0.0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            self._seal_batch()

    def _seal_batch(self) -> None:
        """Pop up to ``max_batch_size`` entries and dispatch them as a task."""
        count = min(len(self._queue), self.max_batch_size)
        if count == 0:
            return
        now = self._loop.time()
        entries: List[_Entry] = []
        waits: List[float] = []
        for _ in range(count):
            entry = self._queue.popleft()
            if entry.future.done():  # the submitter cancelled while queued
                self.stats.record_cancelled()
                continue
            entries.append(entry)
            waits.append(now - entry.submitted_at)
        if not entries:
            return
        self.stats.record_batch(len(entries), waits)
        points = np.empty((len(entries), 2), dtype=float)
        for row, entry in enumerate(entries):
            points[row, 0] = entry.x
            points[row, 1] = entry.y
        # The batch's answer function is fixed here, at seal time: a
        # set_locate() racing with dispatch affects only later seals, so a
        # batch never straddles two epochs.
        task = self._loop.create_task(self._run_batch(points, entries, self._locate))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(
        self,
        points: np.ndarray,
        entries: Sequence[_Entry],
        locate: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        try:
            if self._executor is not None:
                # Context.run cannot be entered concurrently from two
                # threads, so each batch runs a fresh copy of the captured
                # context (dispatch_workers > 1 overlaps engine calls).
                context = self._context.copy()
                answers = await self._loop.run_in_executor(
                    self._executor, context.run, locate, points
                )
            else:
                answers = self._context.copy().run(locate, points)
        except asyncio.CancelledError:
            self._fail_entries(
                entries, ServiceClosedError("service stopped with the batch in flight")
            )
            raise
        except Exception as exc:  # noqa: BLE001 - forwarded to every submitter
            self._fail_entries(entries, exc)
            return
        answers = np.asarray(answers)
        if answers.shape != (len(entries),):
            self._fail_entries(
                entries,
                ServiceError(
                    f"locator returned shape {answers.shape} "
                    f"for a batch of {len(entries)} queries"
                ),
            )
            return
        now = self._loop.time()
        for entry, answer in zip(entries, answers):
            if entry.future.done():  # cancelled while the batch was in flight
                self.stats.record_cancelled()
                continue
            entry.future.set_result(int(answer))
            self.stats.record_completed(now - entry.submitted_at)

    def _fail_entries(self, entries: Sequence[_Entry], error: BaseException) -> None:
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(error)
                self.stats.record_failed()
            else:
                self.stats.record_cancelled()
