"""A programmatic experiment harness: every figure and theorem in one call.

The benchmark suite under ``benchmarks/`` times the experiments; this module
*runs* them and returns structured results, so that examples, notebooks and
EXPERIMENTS.md can all be produced from one source of truth.  Each
``run_*`` function is self-contained and laptop-fast; :func:`run_all`
aggregates them and :func:`format_report` renders a Markdown summary of
paper-claim versus measured outcome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..diagrams.figures import (
    figure1_panels,
    figure2_scenario,
    figure3_4_steps,
    figure5_network,
    figure6_network,
)
from ..engine.batch import NO_RECEPTION
from ..geometry.fatness import theoretical_fatness_bound
from ..geometry.point import Point
from ..model.diagram import SINRDiagram
from ..pointlocation import get_locator
from ..pointlocation.ds import PointLocationStructure
from ..pointlocation.qds import ZoneLabel
from ..workloads.generators import (
    colinear_network,
    random_query_array,
    uniform_random_network,
)
from ..workloads.scenarios import SCENARIOS
from .theorems import verify_zone_convexity, verify_zone_fatness

__all__ = ["ExperimentResult", "run_all", "format_report",
           "run_figure1", "run_figure2", "run_figure3_4", "run_figure5",
           "run_figure6", "run_theorem1", "run_theorem2", "run_theorem3",
           "run_sharded_location", "run_query_service", "run_raster_cache"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one reproduced experiment.

    Attributes:
        experiment: identifier ("Figure 1", "Theorem 2", ...).
        claim: the paper's claim, in one sentence.
        measured: what this reproduction measured, in one sentence.
        reproduced: whether the claim's qualitative shape holds.
        details: free-form per-series numbers for the report table.
    """

    experiment: str
    claim: str
    measured: str
    reproduced: bool
    details: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def run_figure1() -> ExperimentResult:
    """Figure 1: reception flips as stations move / go silent."""
    panels = figure1_panels()
    outcomes = {panel.name: panel.sinr_outcome() for panel in panels}
    ok = all(panel.matches_expectations() for panel in panels)
    return ExperimentResult(
        experiment="Figure 1",
        claim="(A) p hears s2; (B) after s1 moves p hears nothing; (C) with s3 silent p hears s1",
        measured=", ".join(
            f"{name}: {'s%d' % (heard + 1) if heard is not None else 'nothing'}"
            for name, heard in outcomes.items()
        ),
        reproduced=ok,
        details={name: heard for name, heard in outcomes.items()},
    )


def run_figure2() -> ExperimentResult:
    """Figure 2: cumulative interference produces a UDG false positive."""
    panel = figure2_scenario()
    udg_heard = panel.udg_outcome()
    sinr_heard = panel.sinr_outcome()
    return ExperimentResult(
        experiment="Figure 2",
        claim="UDG predicts p hears s1; cumulative SINR interference prevents reception",
        measured=f"UDG hears {'s1' if udg_heard == 0 else udg_heard}, SINR hears "
        f"{'nothing' if sinr_heard is None else f's{sinr_heard + 1}'}",
        reproduced=(udg_heard == 0 and sinr_heard is None),
        details={"udg": udg_heard, "sinr": sinr_heard},
    )


def run_figure3_4() -> ExperimentResult:
    """Figures 3-4: UDG false negatives as transmitters are added."""
    steps = figure3_4_steps()
    series = []
    for step, panel in enumerate(steps, start=1):
        series.append((step, panel.udg_outcome(), panel.sinr_outcome()))
    ok = all(panel.matches_expectations() for panel in steps)
    return ExperimentResult(
        experiment="Figures 3-4",
        claim="step1 both hear s1; step2 UDG collides but SINR hears s1; "
        "step3 SINR hears s3; step4 the outcome changes again",
        measured="; ".join(
            f"step{step}: UDG={'none' if u is None else 's%d' % (u + 1)}, "
            f"SINR={'none' if s is None else 's%d' % (s + 1)}"
            for step, u, s in series
        ),
        reproduced=ok,
        details={f"step{step}": (u, s) for step, u, s in series},
    )


def run_figure5() -> ExperimentResult:
    """Figure 5: non-convex zones for beta < 1."""
    network = figure5_network()
    diagram = SINRDiagram(network)
    non_convex = 0
    for index in range(len(network)):
        report = verify_zone_convexity(
            diagram.zone(index), sample_points=120, max_pairs=1200, seed=3
        )
        if not report.is_convex:
            non_convex += 1
    return ExperimentResult(
        experiment="Figure 5",
        claim="with beta = 0.3 < 1 the reception zones are clearly non-convex",
        measured=f"{non_convex} of {len(network)} zones flagged non-convex by the falsifier",
        reproduced=non_convex > 0,
        details={"non_convex_zones": non_convex, "beta": network.beta},
    )


def run_figure6(epsilon: float = 0.25) -> ExperimentResult:
    """Figure 6: the H+ / H? / H- partition and its area guarantee."""
    network = figure6_network()
    structure = PointLocationStructure(network, epsilon=epsilon)
    diagram = SINRDiagram(network)
    worst_ratio = 0.0
    for index in range(len(network)):
        zone_index = structure.zone_index(index)
        zone_area = diagram.zone(index).area_estimate(vertices=240)
        worst_ratio = max(worst_ratio, zone_index.uncertain_area() / zone_area)
    return ExperimentResult(
        experiment="Figure 6",
        claim="the plane is partitioned into H_i+, H_i? and H-, with area(H_i?) <= eps*area(H_i)",
        measured=f"worst band-to-zone area ratio {worst_ratio:.3f} at eps={epsilon}",
        reproduced=worst_ratio <= epsilon,
        details={"epsilon": epsilon, "worst_ratio": worst_ratio,
                 "stored_cells": structure.size_estimate()},
    )


# ----------------------------------------------------------------------
# Theorems
# ----------------------------------------------------------------------
def run_theorem1(seed: int = 11) -> ExperimentResult:
    """Theorem 1: convexity of reception zones for beta >= 1."""
    network = uniform_random_network(
        6, side=14.0, minimum_separation=2.0, noise=0.01, beta=2.0, seed=seed
    )
    diagram = SINRDiagram(network)
    reports = [
        verify_zone_convexity(diagram.zone(index), sample_points=60, max_pairs=400)
        for index in range(len(network))
    ]
    all_convex = all(report.is_convex for report in reports)
    return ExperimentResult(
        experiment="Theorem 1",
        claim="reception zones of uniform power networks (alpha=2, beta>=1) are convex",
        measured=f"{sum(r.is_convex for r in reports)} / {len(reports)} zones pass the "
        "segment-containment falsifier",
        reproduced=all_convex,
        details={"zones": len(reports)},
    )


def run_theorem2() -> ExperimentResult:
    """Theorem 2 / 4.2: fatness bounded by (sqrt(beta)+1)/(sqrt(beta)-1)."""
    rows = []
    reproduced = True
    for station_count in (2, 4, 8, 16):
        network = colinear_network(station_count, spacing=2.0, beta=2.0)
        result = verify_zone_fatness(SINRDiagram(network).zone(0), angles=180)
        rows.append((station_count, result.fatness, result.bound))
        reproduced &= result.satisfies_bound
    return ExperimentResult(
        experiment="Theorem 2",
        claim="the fatness of every reception zone is at most (sqrt(beta)+1)/(sqrt(beta)-1), "
        "independent of n",
        measured="; ".join(
            f"n={n}: {fatness:.3f} <= {bound:.3f}" for n, fatness, bound in rows
        ),
        reproduced=reproduced,
        details={"series": rows},
    )


def run_theorem3(epsilon: float = 0.4, queries: int = 1500) -> ExperimentResult:
    """Theorem 3: certified point location with a thin uncertainty band."""
    network = uniform_random_network(
        6, side=14.0, minimum_separation=2.5, noise=0.005, beta=3.0, seed=7
    )
    # Locators are built by registry name, so this harness sweeps any
    # registered implementation the same way (swap the names to compare).
    structure = get_locator("theorem3").build(network, epsilon=epsilon)
    exact = get_locator("voronoi").build(network)
    # The whole workload is one coordinate array pushed through the batched
    # query engine: one vectorised pass per locator instead of per-point loops.
    query_array = random_query_array(
        queries, Point(-3.0, -3.0), Point(17.0, 17.0), seed=19
    )
    answers = structure.locate_answers(query_array)
    truth = exact.locate_batch(query_array)
    stations = np.fromiter(
        (answer.station for answer in answers), dtype=np.int64, count=queries
    )
    inside = np.fromiter(
        (answer.label is ZoneLabel.INSIDE for answer in answers),
        dtype=bool,
        count=queries,
    )
    outside = np.fromiter(
        (answer.label is ZoneLabel.OUTSIDE for answer in answers),
        dtype=bool,
        count=queries,
    )
    uncertain = int(queries - inside.sum() - outside.sum())
    wrong = int(
        (inside & (truth != stations)).sum()
        + (outside & (truth != NO_RECEPTION)).sum()
    )
    return ExperimentResult(
        experiment="Theorem 3",
        claim="a structure of size O(n/eps) answers point-location queries in O(log n) "
        "with certified answers outside an eps-fraction uncertainty band",
        measured=f"{wrong} contradicted answers, {uncertain}/{queries} uncertain, "
        f"{structure.size_estimate()} stored cells at eps={epsilon}",
        reproduced=(wrong == 0),
        details={
            "epsilon": epsilon,
            "wrong": wrong,
            "uncertain_fraction": uncertain / queries,
            "stored_cells": structure.size_estimate(),
            "build_seconds": structure.report.build_seconds,
        },
    )


def run_sharded_location(queries: int = 4000, shards: int = 4) -> ExperimentResult:
    """Sharded point location: exactness on a skewed station distribution.

    Not a figure of the paper but the scaling extension the ROADMAP asks
    for: the clustered-outliers scenario is partitioned both ways and every
    sharded answer must be bit-identical to brute force — shards narrow the
    candidate search, never the interference sum.
    """
    network = SCENARIOS["clustered-outliers"].network()
    coords = network.coords
    margin = 4.0
    query_array = random_query_array(
        queries,
        Point(coords[:, 0].min() - margin, coords[:, 1].min() - margin),
        Point(coords[:, 0].max() + margin, coords[:, 1].max() + margin),
        seed=29,
    )
    truth = get_locator("brute-force").build(network).locate_batch(query_array)
    mismatches = {}
    sizes = {}
    for partitioner in ("kd", "uniform"):
        locator = get_locator("sharded:voronoi").build(
            network, shards=shards, partitioner=partitioner
        )
        answers = locator.locate_batch(query_array)
        mismatches[partitioner] = int((answers != truth).sum())
        sizes[partitioner] = locator.shard_sizes()
    reproduced = all(count == 0 for count in mismatches.values())
    return ExperimentResult(
        experiment="Sharded location",
        claim="spatially sharded locate answers exactly match brute force "
        "(interference stays global) on skewed station distributions",
        measured="; ".join(
            f"{name}: {count} mismatches over {queries} queries "
            f"(shard sizes {sizes[name]})"
            for name, count in mismatches.items()
        ),
        reproduced=reproduced,
        details={"mismatches": mismatches, "shard_sizes": sizes,
                 "stations": len(network)},
    )


def run_query_service(queries: int = 2000) -> ExperimentResult:
    """Served throughput: micro-batched async answers stay bit-identical.

    The scaling extension on top of the sharded locator: concurrent point
    queries are accumulated by the asyncio service and answered as few
    vectorised ``locate_batch`` calls.  Reproduction here means *exactness
    plus amortisation* — every served answer equals the direct batch call,
    and the batcher genuinely merged many queries per engine call (the
    throughput gate itself lives in ``benchmarks/bench_service.py``, where
    timing noise can be controlled).
    """
    from ..service import serve_points

    network = uniform_random_network(
        10, side=16.0, minimum_separation=2.0, noise=0.005, beta=3.0, seed=3
    )
    query_array = random_query_array(
        queries, Point(-3.0, -3.0), Point(19.0, 19.0), seed=47
    )
    direct = get_locator("voronoi").build(network).locate_batch(query_array)
    served, snapshot = serve_points(
        network, query_array, "voronoi",
        latency_budget=0.002, max_batch_size=512, return_stats=True,
    )
    mismatches = int((served != direct).sum())
    reproduced = mismatches == 0 and snapshot.mean_batch_size > 1.0
    return ExperimentResult(
        experiment="Query service",
        claim="micro-batched async serving answers bit-identically to a "
        "direct locate_batch while amortising many queries per engine call",
        measured=f"{queries} concurrent queries answered in {snapshot.batches} "
        f"batches (mean size {snapshot.mean_batch_size:.1f}); "
        f"{mismatches} mismatches vs the direct batch",
        reproduced=reproduced,
        details={
            "mismatches": mismatches,
            "batches": snapshot.batches,
            "mean_batch_size": snapshot.mean_batch_size,
            "latency_p99_ms": snapshot.latency_p99 * 1e3,
        },
    )


def run_raster_cache(resolution: int = 128) -> ExperimentResult:
    """Raster tile cache: overlapping figure boxes reuse tiles bit-identically.

    The production-scale serving extension for the figure pipeline: the
    Figure 6 network is rasterised over its full box, a centred zoom, a
    corner pan and the full box again, all through one
    :class:`~repro.raster.TileCache`.  Reproduction means *bit-identity
    plus reuse* — every cached raster equals the uncached rasteriser's
    output exactly (labels and SINR values), while the zoom/pan/repeat
    requests are served partly or wholly from tiles the earlier requests
    already computed (the throughput gate lives in
    ``benchmarks/bench_raster_cache.py``).
    """
    from ..raster import TileCache

    network = figure6_network()
    diagram = SINRDiagram(network)
    cache = TileCache(tile_size=32)
    # The four boxes share one pixel pitch and sit on its world lattice,
    # so the zoom, the pan and the repeat reuse the base request's tiles.
    requests = [
        ("full box", Point(-8.0, -8.0), Point(8.0, 8.0), resolution),
        ("zoom", Point(-4.0, -4.0), Point(4.0, 4.0), resolution // 2),
        ("pan", Point(0.0, -8.0), Point(8.0, 0.0), resolution // 2),
        ("repeat", Point(-8.0, -8.0), Point(8.0, 8.0), resolution),
    ]
    identical = True
    for _, lower_left, upper_right, res in requests:
        cached = diagram.rasterize(lower_left, upper_right, res, cache=cache)
        direct = diagram.rasterize(lower_left, upper_right, res)
        identical &= np.array_equal(cached.labels, direct.labels)
        identical &= np.array_equal(cached.sinr_values, direct.sinr_values)
    stats = cache.stats()
    reproduced = identical and stats.hits > 0 and stats.evictions == 0
    return ExperimentResult(
        experiment="Raster cache",
        claim="tiled rasterisation is bit-identical to the monolithic "
        "rasteriser while overlapping requests reuse cached tiles",
        measured=f"{len(requests)} overlapping requests: "
        f"{stats.misses} tiles computed, {stats.hits} served from cache "
        f"(hit rate {stats.hit_rate:.0%}); "
        f"{'bit-identical' if identical else 'MISMATCHED'} vs uncached",
        reproduced=reproduced,
        details={
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "stored_bytes": stats.stored_bytes,
            "identical": identical,
        },
    )


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def run_all(epsilon: float = 0.3) -> List[ExperimentResult]:
    """Run every reproduced experiment and return the results in paper order."""
    return [
        run_figure1(),
        run_figure2(),
        run_figure3_4(),
        run_figure5(),
        run_figure6(epsilon=epsilon),
        run_theorem1(),
        run_theorem2(),
        run_theorem3(epsilon=epsilon + 0.1),
        run_sharded_location(),
        run_query_service(),
        run_raster_cache(),
    ]


def format_report(results: Sequence[ExperimentResult]) -> str:
    """Render a Markdown table of paper-claim vs. measured outcome."""
    lines = [
        "| Experiment | Paper claim | Measured | Reproduced |",
        "|---|---|---|---|",
    ]
    for result in results:
        status = "yes" if result.reproduced else "NO"
        lines.append(
            f"| {result.experiment} | {result.claim} | {result.measured} | {status} |"
        )
    return "\n".join(lines)
