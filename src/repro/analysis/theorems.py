"""Numerical verification harnesses for the paper's theorems.

The paper's Theorems 1 and 2 are proved analytically; this module provides the
machinery to *check* them numerically on concrete networks, which serves three
purposes in the reproduction:

* regression tests — the library's reception zones must exhibit the proved
  properties (convexity, star shape, fatness bound) on every network we can
  generate;
* the counterexample regime — Figure 5 shows the properties genuinely fail
  for ``beta < 1``, and the same harness detects that failure;
* the experiment harness — the Theorem 1/2 benchmarks report the verification
  outcome and the measured fatness against the theoretical bound.

Every verifier returns a small report object rather than a bare bool so that
benchmarks and EXPERIMENTS.md can show *how much* margin there was.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry.convexity import ConvexityReport, check_zone_convexity, check_zone_star_shape
from ..geometry.fatness import theoretical_fatness_bound
from ..geometry.point import Point
from ..model.diagram import SINRDiagram
from ..model.network import WirelessNetwork
from ..model.reception import ReceptionZone

__all__ = [
    "ConvexityVerification",
    "FatnessVerification",
    "StarShapeVerification",
    "Lemma21Verification",
    "verify_zone_convexity",
    "verify_network_convexity",
    "verify_zone_fatness",
    "verify_network_fatness",
    "verify_zone_star_shape",
    "verify_lemma_2_1",
]


# ----------------------------------------------------------------------
# Report types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConvexityVerification:
    """Outcome of a convexity check of one reception zone."""

    station: int
    is_convex: bool
    segments_checked: int
    violation: Optional[Tuple[Point, Point, Point]]


@dataclass(frozen=True)
class FatnessVerification:
    """Outcome of a fatness check of one reception zone."""

    station: int
    delta: float
    Delta: float
    fatness: float
    bound: float

    @property
    def satisfies_bound(self) -> bool:
        return self.fatness <= self.bound * (1.0 + 1e-6)


@dataclass(frozen=True)
class StarShapeVerification:
    """Outcome of a star-shape check (Lemma 3.1) of one reception zone."""

    station: int
    is_star_shaped: bool
    rays_checked: int


@dataclass(frozen=True)
class Lemma21Verification:
    """Outcome of a Lemma 2.1 check: lines meet the zone boundary at most twice."""

    station: int
    lines_checked: int
    max_crossings: int

    @property
    def holds(self) -> bool:
        return self.max_crossings <= 2


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------
def _zone_sample_points(
    zone: ReceptionZone, count: int, rng: random.Random
) -> List[Point]:
    """Random points of the zone, drawn uniformly by ray rejection.

    Points are produced by sampling a uniform angle and a radius up to the
    boundary distance along that ray (valid because the zone is star-shaped,
    Lemma 3.1); this slightly oversamples the centre, which is harmless for
    the checks performed here.
    """
    if zone.is_degenerate:
        return [zone.station_location]
    center = zone.station_location
    max_radius = zone.search_radius()
    points: List[Point] = []
    for _ in range(count):
        angle = rng.uniform(0.0, 2.0 * math.pi)
        boundary = zone.boundary_distance_along_ray(angle, max_radius)
        radius = rng.uniform(0.0, boundary * 0.999)
        points.append(
            Point(
                center.x + radius * math.cos(angle),
                center.y + radius * math.sin(angle),
            )
        )
    return points


# ----------------------------------------------------------------------
# Theorem 1 (convexity)
# ----------------------------------------------------------------------
def verify_zone_convexity(
    zone: ReceptionZone,
    sample_points: int = 80,
    samples_per_segment: int = 48,
    max_pairs: int = 1200,
    seed: int = 0,
) -> ConvexityVerification:
    """Check that segments between random zone points stay inside the zone."""
    rng = random.Random(seed)
    if zone.is_degenerate:
        return ConvexityVerification(
            station=zone.index, is_convex=True, segments_checked=0, violation=None
        )
    points = _zone_sample_points(zone, sample_points, rng)
    # Include boundary-hugging points: convexity violations show up near the
    # boundary first, so probe just inside the boundary along many rays.
    max_radius = zone.search_radius()
    for k in range(24):
        angle = 2.0 * math.pi * k / 24
        boundary = zone.boundary_distance_along_ray(angle, max_radius)
        center = zone.station_location
        points.append(
            Point(
                center.x + 0.999 * boundary * math.cos(angle),
                center.y + 0.999 * boundary * math.sin(angle),
            )
        )
    report: ConvexityReport = check_zone_convexity(
        zone.contains,
        points,
        samples_per_segment=samples_per_segment,
        max_pairs=max_pairs,
        rng=rng,
    )
    return ConvexityVerification(
        station=zone.index,
        is_convex=report.is_consistent,
        segments_checked=report.segments_checked,
        violation=report.violation,
    )


def verify_network_convexity(
    network: WirelessNetwork, **kwargs
) -> List[ConvexityVerification]:
    """Convexity verification of every reception zone of a network."""
    diagram = SINRDiagram(network)
    return [
        verify_zone_convexity(diagram.zone(index), **kwargs)
        for index in range(len(network))
    ]


# ----------------------------------------------------------------------
# Theorem 2 / 4.2 (fatness)
# ----------------------------------------------------------------------
def verify_zone_fatness(zone: ReceptionZone, angles: int = 360) -> FatnessVerification:
    """Measure the fatness of one zone and compare with the theoretical bound."""
    measurement = zone.fatness(angles=angles)
    bound = (
        theoretical_fatness_bound(zone.network.beta)
        if zone.network.beta > 1.0
        else math.inf
    )
    return FatnessVerification(
        station=zone.index,
        delta=measurement.delta,
        Delta=measurement.Delta,
        fatness=measurement.fatness,
        bound=bound,
    )


def verify_network_fatness(
    network: WirelessNetwork, angles: int = 360
) -> List[FatnessVerification]:
    """Fatness verification of every non-degenerate reception zone of a network."""
    diagram = SINRDiagram(network)
    results = []
    for index in range(len(network)):
        zone = diagram.zone(index)
        if zone.is_degenerate:
            continue
        results.append(verify_zone_fatness(zone, angles=angles))
    return results


# ----------------------------------------------------------------------
# Lemma 3.1 (star shape)
# ----------------------------------------------------------------------
def verify_zone_star_shape(
    zone: ReceptionZone,
    rays: int = 90,
    samples_per_ray: int = 48,
) -> StarShapeVerification:
    """Check the zone is star-shaped with respect to its station."""
    if zone.is_degenerate:
        return StarShapeVerification(
            station=zone.index, is_star_shaped=True, rays_checked=0
        )
    max_radius = zone.search_radius()
    targets = [
        zone.boundary_point_along_ray(2.0 * math.pi * k / rays, max_radius)
        for k in range(rays)
    ]
    # Pull the targets slightly inward so numerical boundary error does not
    # register as a violation.
    center = zone.station_location
    targets = [center + (target - center) * 0.999 for target in targets]
    report = check_zone_star_shape(
        zone.contains, center, targets, samples_per_segment=samples_per_ray
    )
    return StarShapeVerification(
        station=zone.index,
        is_star_shaped=report.is_consistent,
        rays_checked=report.segments_checked,
    )


# ----------------------------------------------------------------------
# Lemma 2.1 (lines cross the boundary at most twice) via Sturm counting
# ----------------------------------------------------------------------
def verify_lemma_2_1(
    zone: ReceptionZone,
    lines: int = 60,
    span: float = 4.0,
    seed: int = 0,
) -> Lemma21Verification:
    """Count boundary crossings of random lines through the zone's bounding disk.

    Uses the Sturm-based root counting on the reception polynomial restricted
    to long random segments through the zone neighbourhood; for convex zones
    (Theorem 1 regime) the count never exceeds 2.
    """
    rng = random.Random(seed)
    polynomial = zone.polynomial
    center = zone.station_location
    radius = max(zone.search_radius(), 1e-6) * span
    max_crossings = 0
    for _ in range(lines):
        angle = rng.uniform(0.0, math.pi)
        offset = rng.uniform(-radius / 2.0, radius / 2.0)
        direction = Point(math.cos(angle), math.sin(angle))
        normal = direction.perpendicular()
        anchor = center + normal * offset - direction * radius
        end = center + normal * offset + direction * radius
        crossings = polynomial.count_boundary_crossings(anchor, end)
        max_crossings = max(max_crossings, crossings)
    return Lemma21Verification(
        station=zone.index, lines_checked=lines, max_crossings=max_crossings
    )
