"""Numerical verification of the paper's structural results.

Verification harnesses for Theorem 1 (convexity), Lemma 3.1 (star shape),
Lemma 2.1 (lines meet a convex boundary at most twice), and Theorem 2 /
Theorem 4.1 / Theorem 4.2 (fatness).  Used both by the test suite and by the
experiment benchmarks that populate EXPERIMENTS.md.
"""

from .experiments import (
    ExperimentResult,
    format_report,
    run_all,
    run_figure1,
    run_figure2,
    run_figure3_4,
    run_figure5,
    run_figure6,
    run_query_service,
    run_raster_cache,
    run_sharded_location,
    run_theorem1,
    run_theorem2,
    run_theorem3,
)
from .theorems import (
    ConvexityVerification,
    FatnessVerification,
    Lemma21Verification,
    StarShapeVerification,
    verify_lemma_2_1,
    verify_network_convexity,
    verify_network_fatness,
    verify_zone_convexity,
    verify_zone_fatness,
    verify_zone_star_shape,
)

__all__ = [
    "ConvexityVerification",
    "ExperimentResult",
    "FatnessVerification",
    "Lemma21Verification",
    "StarShapeVerification",
    "verify_lemma_2_1",
    "verify_network_convexity",
    "verify_network_fatness",
    "verify_zone_convexity",
    "verify_zone_fatness",
    "verify_zone_star_shape",
    "format_report",
    "run_all",
    "run_figure1",
    "run_figure2",
    "run_figure3_4",
    "run_figure5",
    "run_figure6",
    "run_query_service",
    "run_raster_cache",
    "run_sharded_location",
    "run_theorem1",
    "run_theorem2",
    "run_theorem3",
]
