"""The ``"multiprocess"`` engine backend: point-batch sharding across workers.

The numpy kernels are single-threaded; on a multi-core serving host the
cheapest extra axis of scale is to split the ``(m, 2)`` query batch into
contiguous shards, evaluate each shard in a worker process with the plain
numpy kernels, and concatenate the answers in query order.  Every query
family shards perfectly along the point axis — the kernels never couple two
query points — so the merge is a plain ``np.concatenate`` (axis 1 for the
``(n_stations, m)`` matrices, axis 0 for the per-point label vectors).

Sharding only pays above a minimum batch size: pickling the arrays and
crossing the process boundary costs hundreds of microseconds, so small
batches *fall through to the numpy backend* untouched.  Both knobs are
configurable::

    from repro.engine.multiprocess import MultiprocessBackend
    backend = MultiprocessBackend(workers=8, min_batch_size=4096)

The module-registered default instance reads ``REPRO_ENGINE_WORKERS`` (else
``os.cpu_count()``) and uses a 2048-point threshold.  The worker pool is
created lazily on the first large-enough batch and reused afterwards; call
:meth:`MultiprocessBackend.close` to release it (it is also released at
interpreter exit like any ``concurrent.futures`` pool).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

import numpy as np

from ..env import ENGINE_WORKERS, read_knob
from ..exceptions import EngineError
from .backend import QueryBackend, get_backend, register_backend
from . import kernels

__all__ = ["MultiprocessBackend", "DEFAULT_MIN_BATCH_SIZE"]

#: Below this many query points a batch is answered by the fall-through
#: backend in-process; pool overhead would dominate the kernel time.
DEFAULT_MIN_BATCH_SIZE = 2048


def _run_kernel(kernel_name, coords, powers, points, extra_args):
    """Worker entry point: evaluate one numpy kernel on one point shard.

    Module-level so it pickles by reference under every start method.
    """
    return getattr(kernels, kernel_name)(coords, powers, points, *extra_args)


def _default_worker_count() -> int:
    configured = read_knob(ENGINE_WORKERS)
    if configured.strip():
        try:
            return max(1, int(configured))
        except ValueError:
            # The default backend is built at import time; a typo in the env
            # var must not make the library unimportable.
            warnings.warn(
                f"ignoring non-integer REPRO_ENGINE_WORKERS={configured!r}; "
                f"using cpu_count",
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


class MultiprocessBackend:
    """Point-sharding :class:`~repro.engine.backend.QueryBackend`.

    Args:
        workers: worker-process count; defaults to ``REPRO_ENGINE_WORKERS``
            or ``os.cpu_count()``.
        min_batch_size: batches with fewer points than this are delegated
            whole to ``fallback`` in-process (no pool, no pickling).
        fallback: name of the backend answering small batches, resolved per
            call so re-registrations are honoured.
        start_method: multiprocessing start method; defaults to ``"fork"``
            on Linux (cheap, inherits loaded modules) and the platform
            default elsewhere — forked children are unsafe on macOS, which
            is why spawn became its default in Python 3.8.
    """

    name = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        min_batch_size: int = DEFAULT_MIN_BATCH_SIZE,
        fallback: str = "numpy",
        start_method: Optional[str] = None,
    ):
        self.workers = workers if workers is not None else _default_worker_count()
        if self.workers < 1:
            raise EngineError("workers must be >= 1")
        self.min_batch_size = min_batch_size
        self._fallback_name = fallback
        if (
            start_method is None
            and sys.platform == "linux"
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            start_method = "fork"
        self._start_method = start_method
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # -- pool lifecycle -------------------------------------------------
    def _submit_shards(self, kernel_name, coords, powers, shards, extra_args):
        """Submit every shard while holding the executor lock.

        Submitting under the lock means a concurrent :meth:`close` either
        runs before (the pool is re-created here) or after (the already
        submitted futures complete — ``shutdown`` cancels nothing running);
        it can never shut the pool down between creation and submission.
        """
        with self._executor_lock:
            if self._executor is None:
                context = (
                    multiprocessing.get_context(self._start_method)
                    if self._start_method
                    else None
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return [
                self._executor.submit(
                    _run_kernel, kernel_name, coords, powers, shard, extra_args
                )
                for shard in shards
            ]

    def close(self) -> None:
        """Shut the worker pool down (a later large batch re-creates it)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None

    def __enter__(self) -> "MultiprocessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sharded dispatch -----------------------------------------------
    def _fallback(self) -> QueryBackend:
        return get_backend(self._fallback_name)

    def _dispatch(self, kernel_name, coords, powers, points, extra_args, axis):
        points = np.asarray(points, dtype=float)
        count = len(points)
        if self.workers == 1 or count < max(self.min_batch_size, 2):
            method = getattr(self._fallback(), kernel_name)
            return method(coords, powers, points, *extra_args)
        shards = np.array_split(points, min(self.workers, count))
        futures = self._submit_shards(kernel_name, coords, powers, shards, extra_args)
        return np.concatenate([future.result() for future in futures], axis=axis)

    # -- QueryBackend protocol ------------------------------------------
    def energy_matrix(self, coords, powers, points, alpha):
        return self._dispatch("energy_matrix", coords, powers, points, (alpha,), 1)

    def sinr_matrix(self, coords, powers, points, noise, alpha):
        return self._dispatch(
            "sinr_matrix", coords, powers, points, (noise, alpha), 1
        )

    def strongest_station(self, coords, powers, points, alpha):
        return self._dispatch(
            "strongest_station", coords, powers, points, (alpha,), 0
        )

    def received_mask_matrix(self, coords, powers, points, noise, beta, alpha):
        return self._dispatch(
            "received_mask_matrix", coords, powers, points, (noise, beta, alpha), 1
        )

    def heard_station(self, coords, powers, points, noise, beta, alpha, no_reception):
        return self._dispatch(
            "heard_station",
            coords,
            powers,
            points,
            (noise, beta, alpha, no_reception),
            0,
        )


register_backend("multiprocess", MultiprocessBackend())
