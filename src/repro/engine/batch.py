"""The uniform batch query API of the engine.

These functions are the one entry point every layer uses for bulk queries.
They accept a :class:`~repro.model.network.WirelessNetwork` plus query points
in any reasonable form — a ``(m, 2)`` numpy array, a sequence of
:class:`~repro.geometry.point.Point`, or a sequence of ``(x, y)`` tuples —
and return numpy arrays.  Computation is delegated to the active
:mod:`backend <repro.engine.backend>` (or an explicitly passed one).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np

from .backend import QueryBackend, get_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..geometry.point import Point
    from ..model.network import WirelessNetwork

__all__ = [
    "NO_RECEPTION",
    "PointsLike",
    "as_points_array",
    "energy_batch",
    "sinr_batch",
    "strongest_station_batch",
    "received_mask",
    "received_at",
    "heard_station_batch",
    "locate_batch",
]

#: Label returned by :func:`heard_station_batch` where no station is heard
#: (matches :data:`repro.model.diagram.NO_RECEPTION`).
NO_RECEPTION = -1

PointsLike = Union[np.ndarray, Sequence["Point"], Sequence[Sequence[float]]]


def as_points_array(points: PointsLike) -> np.ndarray:
    """Coerce query points into a float array of shape ``(m, 2)``.

    Accepts an ``(m, 2)`` array (returned as float, uncopied when possible),
    a single ``Point`` / 2-tuple (promoted to shape ``(1, 2)``), or any
    sequence of points / 2-sequences.  An empty sequence, ``np.array([])``
    (shape ``(0,)``) or an ``(0, 2)`` array yields ``(0, 2)``.
    """
    if isinstance(points, np.ndarray):
        array = np.asarray(points, dtype=float)
        if array.ndim == 1 and array.size == 0:
            # np.array([]) has shape (0,): the empty batch, like the empty
            # list.  Malformed 2-d shapes such as (5, 0) still raise below —
            # they look like queries whose coordinate axis was sliced away.
            return array.reshape(0, 2)
        if array.ndim == 1 and array.shape == (2,):
            return array.reshape(1, 2)
        if array.ndim != 2 or array.shape[1] != 2:
            raise ValueError(
                f"expected points of shape (m, 2), got {array.shape}"
            )
        return array
    seq = list(points)
    if not seq:
        return np.empty((0, 2), dtype=float)
    first = seq[0]
    if isinstance(first, float) or isinstance(first, int):
        # A bare (x, y) pair.
        if len(seq) != 2:
            raise ValueError("a single point must be a pair (x, y)")
        return np.array([seq], dtype=float)
    return np.array([(p[0], p[1]) for p in seq], dtype=float)


def energy_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Received-energy matrix of shape ``(n_stations, m)`` (``inf`` at stations)."""
    engine = get_backend(backend)
    pts = as_points_array(points)
    return engine.energy_matrix(
        network.coords, network.powers_array(), pts, network.alpha
    )


def sinr_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    target_index: Optional[int] = None,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """SINR values in bulk.

    Returns the full ``(n_stations, m)`` matrix, or the row of one station
    when ``target_index`` is given.  Away from station locations the values
    agree with the scalar :meth:`WirelessNetwork.sinr`; the coincident-point
    convention is documented in :mod:`repro.engine.kernels`.
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    matrix = engine.sinr_matrix(
        network.coords, network.powers_array(), pts, network.noise, network.alpha
    )
    if target_index is None:
        return matrix
    return matrix[target_index]


def strongest_station_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Index of the strongest (Voronoi, under uniform power) station per point."""
    engine = get_backend(backend)
    pts = as_points_array(points)
    return engine.strongest_station(
        network.coords, network.powers_array(), pts, network.alpha
    )


def received_mask(
    network: "WirelessNetwork",
    index: int,
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Boolean array: is station ``index`` received at each point?

    Agrees pointwise with :meth:`WirelessNetwork.is_received`.  Backends may
    offer a row-only fast path (``received_mask_row``) that skips the other
    ``n - 1`` SINR rows; without one, the full mask matrix is computed and
    the row extracted.
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    row_kernel = getattr(engine, "received_mask_row", None)
    if row_kernel is not None:
        return row_kernel(
            network.coords,
            network.powers_array(),
            pts,
            index,
            network.noise,
            network.beta,
            network.alpha,
        )
    return engine.received_mask_matrix(
        network.coords,
        network.powers_array(),
        pts,
        network.noise,
        network.beta,
        network.alpha,
    )[index]


def received_at(
    network: "WirelessNetwork",
    station_indices,
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Per-point reception check of a *per-point* candidate station.

    ``station_indices[j]`` names the station whose reception is tested at
    ``points[j]``; the result is a boolean array with the semantics of
    :meth:`WirelessNetwork.is_received` (coincident-point rules included).
    This is the one verification idiom shared by every locator fast path —
    Voronoi candidates, the Theorem 3 uncertain-band fallback, and the
    sharded locator's full-network candidate check all gather the same mask.
    Backends may offer a gathered fast path (``received_mask_at``) that
    skips the other ``n - 1`` SINR rows; without one, the full mask matrix
    is computed and gathered.
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    indices = np.asarray(station_indices, dtype=np.intp)
    if indices.shape != (len(pts),):
        raise ValueError(
            f"expected one station index per point ({len(pts)}), "
            f"got shape {indices.shape}"
        )
    gather_kernel = getattr(engine, "received_mask_at", None)
    if gather_kernel is not None:
        return gather_kernel(
            network.coords,
            network.powers_array(),
            pts,
            indices,
            network.noise,
            network.beta,
            network.alpha,
        )
    mask = engine.received_mask_matrix(
        network.coords,
        network.powers_array(),
        pts,
        network.noise,
        network.beta,
        network.alpha,
    )
    return mask[indices, np.arange(len(pts))]


def heard_station_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Index of the station heard at each point, ``NO_RECEPTION`` where none.

    Agrees pointwise with :meth:`SINRDiagram.station_heard_at` (including the
    highest-SINR tie-break used in the ``beta < 1`` regime).
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    return engine.heard_station(
        network.coords,
        network.powers_array(),
        pts,
        network.noise,
        network.beta,
        network.alpha,
        NO_RECEPTION,
    )


def locate_batch(locator, points: PointsLike) -> List[object]:
    """Answer a batch of point-location queries through any locator.

    Uses the locator's native ``locate_batch`` fast path when it has one and
    falls back to looping its scalar ``locate`` otherwise.  Every locator
    implementing the :class:`repro.pointlocation.registry.Locator` protocol
    (all registered ones: brute-force, voronoi, theorem3, sharded) natively
    returns an ``int64`` station-index array with ``NO_RECEPTION`` (-1)
    where nothing is heard; for non-protocol objects the fallback returns a
    list of whatever their ``locate`` yields, in query order.
    """
    native = getattr(locator, "locate_batch", None)
    if native is not None:
        return native(points)
    from ..geometry.point import Point

    pts = as_points_array(points)
    return [locator.locate(Point(x, y)) for x, y in pts]
