"""The uniform batch query API of the engine.

These functions are the one entry point every layer uses for bulk queries.
They accept a :class:`~repro.model.network.WirelessNetwork` plus query points
in any reasonable form — a ``(m, 2)`` numpy array, a sequence of
:class:`~repro.geometry.point.Point`, or a sequence of ``(x, y)`` tuples —
and return numpy arrays.  Computation is delegated to the active
:mod:`backend <repro.engine.backend>` (or an explicitly passed one).

Memory-bounded chunking
-----------------------

Every kernel materialises ``(n_stations, m)`` intermediates — several of
them at once — so an unchunked 200-station × 1M-point batch peaks around
1.6 GB.  All batch functions therefore tile the point axis so those
intermediates fit a byte budget (:func:`chunk_byte_budget`, settable via
the ``REPRO_ENGINE_CHUNK_BYTES`` environment variable, default 64 MiB).
Chunking is exact: every kernel decides each point independently of every
other point (the same property :class:`~repro.engine.multiprocess.\
MultiprocessBackend` exploits to shard across processes), so results are
bit-identical for every chunk size.  Only the per-call *temporaries* are
bounded — outputs whose size is inherent to the query (the ``(n, m)``
matrix of :func:`sinr_batch`, for example) still scale with the batch.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

import numpy as np

from ..env import ENGINE_CHUNK_BYTES, read_knob
from ..exceptions import EngineError
from .backend import QueryBackend, get_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..geometry.point import Point
    from ..model.network import WirelessNetwork

__all__ = [
    "NO_RECEPTION",
    "DEFAULT_CHUNK_BYTES",
    "PointsLike",
    "as_points_array",
    "chunk_byte_budget",
    "set_chunk_byte_budget",
    "points_per_chunk",
    "energy_batch",
    "sinr_matrix_array",
    "strongest_station_array",
    "sinr_batch",
    "strongest_station_batch",
    "received_mask",
    "received_at",
    "heard_station_batch",
    "locate_batch",
]

#: Label returned by :func:`heard_station_batch` where no station is heard
#: (matches :data:`repro.model.diagram.NO_RECEPTION`).
NO_RECEPTION = -1

#: Default byte budget for one engine call's ``(n_stations, chunk)``
#: intermediates; override with ``REPRO_ENGINE_CHUNK_BYTES``.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024

#: How many float64 ``(n, chunk)`` temporaries one kernel call may hold
#: concurrently (deltas, squared distances, energies, coincidence masks,
#: where-results, ...).  Chunk sizes are budgeted for all of them together,
#: so the budget bounds the call's whole transient footprint, not just one
#: matrix.
_TEMPS_PER_CALL = 12

PointsLike = Union[np.ndarray, Sequence["Point"], Sequence[Sequence[float]]]


#: Process-wide runtime override installed by :func:`set_chunk_byte_budget`
#: (``None`` defers to the environment knob).  Deliberately process-global,
#: unlike backend *selection*: the chunk budget is a hardware-fit tuning
#: knob, and every thread shares the same caches.
_runtime_chunk_bytes: Optional[int] = None


def set_chunk_byte_budget(budget: Optional[int]) -> None:
    """Install (or with ``None`` clear) a runtime chunk-byte-budget override.

    Takes precedence over ``REPRO_ENGINE_CHUNK_BYTES`` for every subsequent
    engine call in the process.  This is the actuation surface of
    :class:`repro.control.ChunkBytesTuner`, which measures candidate budgets
    and installs the fastest (4 MiB beat the 64 MiB default by ~1.5x on the
    calibration container's strongest-station workload).
    """
    global _runtime_chunk_bytes
    if budget is not None:
        budget = int(budget)
        if budget <= 0:
            raise EngineError(
                f"the chunk byte budget must be positive, got {budget}"
            )
    _runtime_chunk_bytes = budget


def chunk_byte_budget() -> int:
    """The configured intermediate-matrix byte budget for one engine call.

    A :func:`set_chunk_byte_budget` override wins; otherwise reads
    ``REPRO_ENGINE_CHUNK_BYTES`` on every call (so tests and services can
    retune it at runtime); non-positive or unparsable values are ignored
    with a warning in favour of :data:`DEFAULT_CHUNK_BYTES`.
    """
    if _runtime_chunk_bytes is not None:
        return _runtime_chunk_bytes
    raw = read_knob(ENGINE_CHUNK_BYTES)
    if raw.strip():
        try:
            configured = int(raw)
        except ValueError:
            configured = 0
        if configured > 0:
            return configured
        warnings.warn(
            f"ignoring invalid REPRO_ENGINE_CHUNK_BYTES={raw!r} "
            f"(expected a positive integer); using {DEFAULT_CHUNK_BYTES}",
            stacklevel=2,
        )
    return DEFAULT_CHUNK_BYTES


def points_per_chunk(n_stations: int) -> int:
    """How many points fit one engine call under :func:`chunk_byte_budget`.

    Always at least 1: a single point's column must be computable whatever
    the budget, so tiny budgets degrade to point-at-a-time evaluation rather
    than failing.
    """
    per_point = max(1, n_stations) * 8 * _TEMPS_PER_CALL
    return max(1, chunk_byte_budget() // per_point)


def _chunked(
    call: Callable[[np.ndarray, slice], np.ndarray],
    pts: np.ndarray,
    n_stations: int,
    columns: bool,
) -> np.ndarray:
    """Evaluate ``call`` over point chunks and stitch the results.

    ``call(chunk, sl)`` computes the result for ``pts[sl]`` (the slice is
    passed so callers can co-slice per-point side inputs such as candidate
    station indices).  ``columns=True`` stitches ``(n, c)`` chunk results
    along axis 1, ``columns=False`` stitches per-point ``(c,)`` results.
    The output dtype/leading shape comes from the first chunk, so backends
    keep full control of their result types.
    """
    step = points_per_chunk(n_stations)
    m = len(pts)
    if m <= step:
        return call(pts, slice(0, m))
    out = None
    for start in range(0, m, step):
        sl = slice(start, min(start + step, m))
        part = call(pts[sl], sl)
        if out is None:
            shape = part.shape[:-1] + (m,) if columns else (m,)
            out = np.empty(shape, dtype=part.dtype)
        if columns:
            out[..., sl] = part
        else:
            out[sl] = part
    return out


def _float32_kwargs(engine: QueryBackend, network: "WirelessNetwork") -> dict:
    """Cached float32 network views, for backends that opt in.

    Backends advertising ``accepts_float32_arrays`` (the precision tier of
    :mod:`repro.engine.mixed_precision`) receive the network's cached
    contiguous float32 coordinate/power arrays alongside the exact float64
    ones, so their screen pass never re-casts per call.
    """
    if getattr(engine, "accepts_float32_arrays", False):
        return {"coords32": network.coords32, "powers32": network.powers32}
    return {}


def as_points_array(points: PointsLike) -> np.ndarray:
    """Coerce query points into a float array of shape ``(m, 2)``.

    Accepts an ``(m, 2)`` array (returned as float, uncopied when possible),
    a single ``Point`` / 2-tuple (promoted to shape ``(1, 2)``), or any
    sequence of points / 2-sequences.  An empty sequence, ``np.array([])``
    (shape ``(0,)``) or an ``(0, 2)`` array yields ``(0, 2)``.
    """
    if isinstance(points, np.ndarray):
        array = np.asarray(points, dtype=float)
        if array.ndim == 1 and array.size == 0:
            # np.array([]) has shape (0,): the empty batch, like the empty
            # list.  Malformed 2-d shapes such as (5, 0) still raise below —
            # they look like queries whose coordinate axis was sliced away.
            return array.reshape(0, 2)
        if array.ndim == 1 and array.shape == (2,):
            return array.reshape(1, 2)
        if array.ndim != 2 or array.shape[1] != 2:
            raise EngineError(
                f"expected points of shape (m, 2), got {array.shape}"
            )
        return array
    seq = list(points)
    if not seq:
        return np.empty((0, 2), dtype=float)
    first = seq[0]
    if isinstance(first, float) or isinstance(first, int):
        # A bare (x, y) pair.
        if len(seq) != 2:
            raise EngineError("a single point must be a pair (x, y)")
        return np.array([seq], dtype=float)
    return np.array([(p[0], p[1]) for p in seq], dtype=float)


def sinr_matrix_array(
    coords: np.ndarray,
    powers: np.ndarray,
    points: PointsLike,
    noise: float,
    alpha: float,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Chunked ``(n, m)`` SINR matrix over raw station arrays.

    The array-level sibling of :func:`sinr_batch` for callers that have no
    :class:`~repro.model.network.WirelessNetwork` (the grid façades of
    :mod:`repro.model.sinr`).  Same chunk byte budget, same backend
    delegation, bit-identical to an unchunked kernel call.
    """
    engine = get_backend(backend)
    coords = np.asarray(coords, dtype=float)
    powers = np.asarray(powers, dtype=float)
    pts = as_points_array(points)
    return _chunked(
        lambda chunk, sl: engine.sinr_matrix(coords, powers, chunk, noise, alpha),
        pts,
        len(coords),
        columns=True,
    )


def strongest_station_array(
    coords: np.ndarray,
    powers: np.ndarray,
    points: PointsLike,
    alpha: float,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Chunked strongest-station indices over raw station arrays.

    The array-level sibling of :func:`strongest_station_batch` (see
    :func:`sinr_matrix_array` for when to prefer these).
    """
    engine = get_backend(backend)
    coords = np.asarray(coords, dtype=float)
    powers = np.asarray(powers, dtype=float)
    pts = as_points_array(points)
    return _chunked(
        lambda chunk, sl: engine.strongest_station(coords, powers, chunk, alpha),
        pts,
        len(coords),
        columns=False,
    )


def energy_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Received-energy matrix of shape ``(n_stations, m)`` (``inf`` at stations)."""
    engine = get_backend(backend)
    pts = as_points_array(points)
    kwargs = _float32_kwargs(engine, network)
    return _chunked(
        lambda chunk, sl: engine.energy_matrix(
            network.coords, network.powers_array(), chunk, network.alpha, **kwargs
        ),
        pts,
        len(network.coords),
        columns=True,
    )


def sinr_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    target_index: Optional[int] = None,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """SINR values in bulk.

    Returns the full ``(n_stations, m)`` matrix, or the row of one station
    when ``target_index`` is given.  Away from station locations the values
    agree with the scalar :meth:`WirelessNetwork.sinr`; the coincident-point
    convention is documented in :mod:`repro.engine.kernels`.
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    kwargs = _float32_kwargs(engine, network)
    matrix = _chunked(
        lambda chunk, sl: engine.sinr_matrix(
            network.coords,
            network.powers_array(),
            chunk,
            network.noise,
            network.alpha,
            **kwargs,
        ),
        pts,
        len(network.coords),
        columns=True,
    )
    if target_index is None:
        return matrix
    return matrix[target_index]


def strongest_station_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Index of the strongest (Voronoi, under uniform power) station per point."""
    engine = get_backend(backend)
    pts = as_points_array(points)
    kwargs = _float32_kwargs(engine, network)
    return _chunked(
        lambda chunk, sl: engine.strongest_station(
            network.coords, network.powers_array(), chunk, network.alpha, **kwargs
        ),
        pts,
        len(network.coords),
        columns=False,
    )


def received_mask(
    network: "WirelessNetwork",
    index: int,
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Boolean array: is station ``index`` received at each point?

    Agrees pointwise with :meth:`WirelessNetwork.is_received`.  Backends may
    offer a row-only fast path (``received_mask_row``) that skips the other
    ``n - 1`` SINR rows; without one, the full mask matrix is computed and
    the row extracted.
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    kwargs = _float32_kwargs(engine, network)
    n = len(network.coords)
    row_kernel = getattr(engine, "received_mask_row", None)
    if row_kernel is not None:
        return _chunked(
            lambda chunk, sl: row_kernel(
                network.coords,
                network.powers_array(),
                chunk,
                index,
                network.noise,
                network.beta,
                network.alpha,
                **kwargs,
            ),
            pts,
            n,
            columns=False,
        )
    return _chunked(
        lambda chunk, sl: engine.received_mask_matrix(
            network.coords,
            network.powers_array(),
            chunk,
            network.noise,
            network.beta,
            network.alpha,
            **kwargs,
        )[index],
        pts,
        n,
        columns=False,
    )


def received_at(
    network: "WirelessNetwork",
    station_indices: "np.ndarray | Sequence[int]",
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Per-point reception check of a *per-point* candidate station.

    ``station_indices[j]`` names the station whose reception is tested at
    ``points[j]``; the result is a boolean array with the semantics of
    :meth:`WirelessNetwork.is_received` (coincident-point rules included).
    This is the one verification idiom shared by every locator fast path —
    Voronoi candidates, the Theorem 3 uncertain-band fallback, and the
    sharded locator's full-network candidate check all gather the same mask.
    Backends may offer a gathered fast path (``received_mask_at``) that
    skips the other ``n - 1`` SINR rows; without one, the full mask matrix
    is computed and gathered.
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    indices = np.asarray(station_indices, dtype=np.intp)
    if indices.shape != (len(pts),):
        raise EngineError(
            f"expected one station index per point ({len(pts)}), "
            f"got shape {indices.shape}"
        )
    kwargs = _float32_kwargs(engine, network)
    n = len(network.coords)
    gather_kernel = getattr(engine, "received_mask_at", None)
    if gather_kernel is not None:
        return _chunked(
            lambda chunk, sl: gather_kernel(
                network.coords,
                network.powers_array(),
                chunk,
                indices[sl],
                network.noise,
                network.beta,
                network.alpha,
                **kwargs,
            ),
            pts,
            n,
            columns=False,
        )

    def _gathered(chunk, sl):
        mask = engine.received_mask_matrix(
            network.coords,
            network.powers_array(),
            chunk,
            network.noise,
            network.beta,
            network.alpha,
            **kwargs,
        )
        return mask[indices[sl], np.arange(len(chunk))]

    return _chunked(_gathered, pts, n, columns=False)


def heard_station_batch(
    network: "WirelessNetwork",
    points: PointsLike,
    backend: "str | QueryBackend | None" = None,
) -> np.ndarray:
    """Index of the station heard at each point, ``NO_RECEPTION`` where none.

    Agrees pointwise with :meth:`SINRDiagram.station_heard_at` (including the
    highest-SINR tie-break used in the ``beta < 1`` regime).
    """
    engine = get_backend(backend)
    pts = as_points_array(points)
    kwargs = _float32_kwargs(engine, network)
    return _chunked(
        lambda chunk, sl: engine.heard_station(
            network.coords,
            network.powers_array(),
            chunk,
            network.noise,
            network.beta,
            network.alpha,
            NO_RECEPTION,
            **kwargs,
        ),
        pts,
        len(network.coords),
        columns=False,
    )


def locate_batch(locator: object, points: PointsLike) -> List[object]:
    """Answer a batch of point-location queries through any locator.

    Uses the locator's native ``locate_batch`` fast path when it has one and
    falls back to looping its scalar ``locate`` otherwise.  Every locator
    implementing the :class:`repro.pointlocation.registry.Locator` protocol
    (all registered ones: brute-force, voronoi, theorem3, sharded) natively
    returns an ``int64`` station-index array with ``NO_RECEPTION`` (-1)
    where nothing is heard; for non-protocol objects the fallback returns a
    list of whatever their ``locate`` yields, in query order.
    """
    native = getattr(locator, "locate_batch", None)
    if native is not None:
        return native(points)
    from ..geometry.point import Point

    pts = as_points_array(points)
    return [locator.locate(Point(x, y)) for x, y in pts]
