"""The ``"numba"`` engine backend: JIT-compiled SINR kernels.

The numpy kernels of :mod:`repro.engine.kernels` materialise several
intermediate ``(n, m)`` arrays per query (energies, coincidence masks,
interference totals).  The numba backend fuses the whole computation into
single compiled loops: one pass over the ``(n_stations, n_points)`` grid per
query family, no temporaries, released GIL-level performance once compiled.

``numba`` is an *optional* dependency (``pip install
repro-sinr-diagrams[numba]``).  When it is not installed this module still
imports cleanly and simply does not register the backend —
:data:`NUMBA_AVAILABLE` is False, ``available_backends()`` omits ``"numba"``
and instantiating :class:`NumbaBackend` raises a descriptive
:class:`~repro.exceptions.ReproError`.

The compiled kernels replicate the scalar model's edge-case contract exactly
(see :mod:`repro.engine.kernels`): exact coordinate equality decides
coincidence, overflowed power-law energies saturate to ``+inf`` (C ``pow``
semantics, no exception), the first co-located station owns its point, and
no NaN ever leaks out of the interference arithmetic.  The equivalence
property tests in ``tests/test_engine.py`` pin this backend against the
pure-Python ``"reference"`` backend whenever numba is importable.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ReproError
from .backend import register_backend

__all__ = ["NUMBA_AVAILABLE", "NumbaBackend"]

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default in minimal installs
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Placeholder so the kernel definitions below parse without numba."""

        def decorate(func):
            return func

        if args and callable(args[0]):
            return args[0]
        return decorate


# ----------------------------------------------------------------------
# Compiled kernels.  Plain nested loops: numba turns them into fused
# machine code, and `cache=True` persists the compilation across processes.
# Each replicates the corresponding numpy kernel of `repro.engine.kernels`
# including the coincident-point and overflow conventions.
# ----------------------------------------------------------------------


@njit(cache=True)
def _energy_matrix(coords, powers, points, alpha):
    n = coords.shape[0]
    m = points.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    exponent = -alpha / 2.0
    for i in range(n):
        for j in range(m):
            if coords[i, 0] == points[j, 0] and coords[i, 1] == points[j, 1]:
                out[i, j] = np.inf
            else:
                dx = coords[i, 0] - points[j, 0]
                dy = coords[i, 1] - points[j, 1]
                squared = dx * dx + dy * dy
                if squared == 0.0:
                    # Distinct coordinates whose squared distance underflowed.
                    out[i, j] = np.inf
                else:
                    # C pow semantics on overflow: saturates to +inf,
                    # mirroring the scalar OverflowError handling.
                    out[i, j] = powers[i] * squared ** exponent
    return out


@njit(cache=True)
def _first_coincident(coords, px, py):
    for i in range(coords.shape[0]):
        if coords[i, 0] == px and coords[i, 1] == py:
            return i
    return -1


@njit(cache=True)
def _sinr_matrix(coords, powers, points, noise, alpha):
    energies = _energy_matrix(coords, powers, points, alpha)
    n = coords.shape[0]
    m = points.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    for j in range(m):
        owner = _first_coincident(coords, points[j, 0], points[j, 1])
        if owner >= 0:
            # The first exactly co-located station owns the point; every
            # other station's SINR there is zero by the scalar convention.
            for i in range(n):
                out[i, j] = 0.0
            out[owner, j] = np.inf
            continue
        finite_total = 0.0
        any_inf = False
        for i in range(n):
            energy = energies[i, j]
            if energy == np.inf:
                any_inf = True
            else:
                finite_total += energy
        for i in range(n):
            energy = energies[i, j]
            if energy == np.inf:
                # Overflow-close: infinite signal dominates any interference.
                out[i, j] = np.inf
            elif any_inf:
                # Drowned by an overflow-close competitor.
                out[i, j] = 0.0
            else:
                denominator = finite_total - energy + noise
                out[i, j] = energy / denominator if denominator > 0.0 else np.inf
    return out


@njit(cache=True)
def _strongest_station(coords, powers, points, alpha):
    energies = _energy_matrix(coords, powers, points, alpha)
    n = coords.shape[0]
    m = points.shape[0]
    out = np.empty(m, dtype=np.intp)
    for j in range(m):
        best = 0
        best_energy = -np.inf
        for i in range(n):
            if energies[i, j] > best_energy:
                best = i
                best_energy = energies[i, j]
        out[j] = best
    return out


@njit(cache=True)
def _received_mask_matrix(coords, powers, points, noise, beta, alpha):
    ratio = _sinr_matrix(coords, powers, points, noise, alpha)
    n = coords.shape[0]
    m = points.shape[0]
    mask = np.zeros((n, m), dtype=np.bool_)
    for j in range(m):
        if _first_coincident(coords, points[j, 0], points[j, 1]) >= 0:
            # A point occupied by stations is received exactly by the
            # co-located stations (the scalar is_received rule).
            for i in range(n):
                mask[i, j] = (
                    coords[i, 0] == points[j, 0] and coords[i, 1] == points[j, 1]
                )
        else:
            for i in range(n):
                mask[i, j] = ratio[i, j] >= beta
    return mask


@njit(cache=True)
def _heard_station(coords, powers, points, noise, beta, alpha, no_reception):
    ratio = _sinr_matrix(coords, powers, points, noise, alpha)
    m = points.shape[0]
    out = np.empty(m, dtype=np.intp)
    for j in range(m):
        occupied = _first_coincident(coords, points[j, 0], points[j, 1]) >= 0
        best = no_reception
        best_ratio = -np.inf
        for i in range(coords.shape[0]):
            if occupied:
                received = (
                    coords[i, 0] == points[j, 0] and coords[i, 1] == points[j, 1]
                )
            else:
                received = ratio[i, j] >= beta
            # Strict > keeps the first index on ties, like the numpy argmax.
            if received and ratio[i, j] > best_ratio:
                best = i
                best_ratio = ratio[i, j]
        out[j] = best
    return out


def _as_float64(array) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(array, dtype=np.float64))


class NumbaBackend:
    """JIT-compiled :class:`~repro.engine.backend.QueryBackend`.

    Compilation happens lazily on the first call of each query family and is
    cached on disk (``cache=True``), so steady-state calls pay no Python
    per-element overhead at all.  Raises :class:`ReproError` on construction
    when numba is not importable.
    """

    name = "numba"

    def __init__(self):
        if not NUMBA_AVAILABLE:
            raise ReproError(
                "the 'numba' engine backend requires the optional numba "
                "dependency; install it with "
                "`pip install repro-sinr-diagrams[numba]` (or `pip install "
                "numba`) and re-import repro.engine"
            )

    def energy_matrix(self, coords, powers, points, alpha):
        return _energy_matrix(
            _as_float64(coords), _as_float64(powers), _as_float64(points), float(alpha)
        )

    def sinr_matrix(self, coords, powers, points, noise, alpha):
        return _sinr_matrix(
            _as_float64(coords),
            _as_float64(powers),
            _as_float64(points),
            float(noise),
            float(alpha),
        )

    def strongest_station(self, coords, powers, points, alpha):
        return _strongest_station(
            _as_float64(coords), _as_float64(powers), _as_float64(points), float(alpha)
        )

    def received_mask_matrix(self, coords, powers, points, noise, beta, alpha):
        return _received_mask_matrix(
            _as_float64(coords),
            _as_float64(powers),
            _as_float64(points),
            float(noise),
            float(beta),
            float(alpha),
        )

    def heard_station(self, coords, powers, points, noise, beta, alpha, no_reception):
        return _heard_station(
            _as_float64(coords),
            _as_float64(powers),
            _as_float64(points),
            float(noise),
            float(beta),
            float(alpha),
            int(no_reception),
        )


if NUMBA_AVAILABLE:  # pragma: no cover - covered by the [numba] CI leg
    register_backend("numba", NumbaBackend())
