"""Optional CuPy GPU backend wrapped in the screen-then-verify shell.

Registered as ``"gpu"`` only when the optional ``cupy`` dependency imports
*and* a CUDA device is visible (``pip install repro-sinr-diagrams[gpu]``);
otherwise the module imports cleanly, :data:`GPU_AVAILABLE` is False and
constructing :class:`GpuBackend` raises a descriptive
:class:`~repro.exceptions.ReproError` — the same clean-skip contract as the
numba backend.

The backend subclasses :class:`~repro.engine.mixed_precision.
Float32ScreenBackend` and overrides only the four screen chunk hooks: the
float32 screen kernels run on the device (they are written against an
array-module parameter, so the CPU and GPU paths share one implementation),
decision flags and small per-point results come back to the host, and
margin-close points are re-verified through the exact (CPU) inner backend.
GPU throughput therefore never changes an answer — output stays
bit-identical to ``reference`` by the same construction as the CPU screen.

Station arrays are uploaded once per (coords, powers) identity and cached on
the device; per-chunk traffic is the chunk's query points plus per-point
results.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ReproError
from .backend import register_backend
from .mixed_precision import (
    Float32ScreenBackend,
    _screen_heard,
    _screen_mask,
    _screen_row,
    _screen_strongest,
)

__all__ = ["GPU_AVAILABLE", "GpuBackend"]

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the container default
    cupy = None

GPU_AVAILABLE = False
if cupy is not None:  # pragma: no cover - needs a cupy install
    # cupy imports on CUDA-less hosts but its runtime probing raises.  Only
    # the errors a device-less host actually produces mean "clean skip":
    # CUDARuntimeError (no device / driver mismatch), CUDADriverError, and
    # OSError for missing driver shared libraries.  Anything else — a
    # broken install, an API change — propagates, because silently skipping
    # it would disguise a real breakage as the no-GPU case.
    _PROBE_ERRORS = tuple(
        error
        for error in (
            getattr(cupy.cuda.runtime, "CUDARuntimeError", None),
            getattr(getattr(cupy.cuda, "driver", None), "CUDADriverError", None),
            OSError,
        )
        if isinstance(error, type) and issubclass(error, Exception)
    )
    try:
        GPU_AVAILABLE = int(cupy.cuda.runtime.getDeviceCount()) > 0
    except _PROBE_ERRORS:
        GPU_AVAILABLE = False

#: Station-array device cache size (distinct networks resident at once).
_DEVICE_CACHE_SLOTS = 8


class GpuBackend(Float32ScreenBackend):  # pragma: no cover - needs a device
    """CuPy float32 screen with exact CPU verification (``"gpu"``).

    Accepts the same arguments as
    :class:`~repro.engine.mixed_precision.Float32ScreenBackend`; the inner
    (verify) backend stays a CPU backend and keeps its late-binding
    name-resolution semantics.
    """

    name = "gpu"

    def __init__(self, inner="numpy", **kwargs) -> None:
        if not GPU_AVAILABLE:
            raise ReproError(
                "the 'gpu' engine backend needs the optional cupy dependency "
                "and a visible CUDA device; install with "
                "`pip install repro-sinr-diagrams[gpu]` (or a cupy build "
                "matching your CUDA toolkit) and check `nvidia-smi`"
            )
        super().__init__(inner, **kwargs)
        # id(host array) -> (host array ref, device array).  Keeping the
        # host ref pins the id so it cannot be recycled while cached.
        self._device_cache = {}

    def _device(self, host: np.ndarray):
        """The device copy of a host station array (bounded cache)."""
        key = id(host)
        hit = self._device_cache.get(key)
        if hit is not None and hit[0] is host:
            return hit[1]
        if len(self._device_cache) >= _DEVICE_CACHE_SLOTS:
            self._device_cache.pop(next(iter(self._device_cache)))
        device = cupy.asarray(host)
        self._device_cache[key] = (host, device)
        return device

    # -- screen chunk hooks on the device ------------------------------

    def _screen_strongest_chunk(self, coords32, powers32, pts32, alpha, tol32):
        idx, uncertain, sq_min = _screen_strongest(
            cupy,
            self._device(coords32),
            self._device(powers32),
            cupy.asarray(pts32),
            alpha,
            tol32,
        )
        return cupy.asnumpy(idx), cupy.asnumpy(uncertain), cupy.asnumpy(sq_min)

    def _screen_mask_chunk(
        self, coords32, powers32, pts32, noise, beta32, tol32, alpha
    ):
        mask, uncertain, sq_min = _screen_mask(
            cupy,
            self._device(coords32),
            self._device(powers32),
            cupy.asarray(pts32),
            noise,
            beta32,
            tol32,
            alpha,
        )
        return cupy.asnumpy(mask), cupy.asnumpy(uncertain), cupy.asnumpy(sq_min)

    def _screen_heard_chunk(
        self, coords32, powers32, pts32, noise, beta32, tol32, alpha
    ):
        best, any_received, uncertain, sq_min = _screen_heard(
            cupy,
            self._device(coords32),
            self._device(powers32),
            cupy.asarray(pts32),
            noise,
            beta32,
            tol32,
            alpha,
        )
        return (
            cupy.asnumpy(best),
            cupy.asnumpy(any_received),
            cupy.asnumpy(uncertain),
            cupy.asnumpy(sq_min),
        )

    def _screen_row_chunk(
        self, coords32, powers32, pts32, indices, noise, beta32, tol32, alpha
    ):
        mask, uncertain, sq_min = _screen_row(
            cupy,
            self._device(coords32),
            self._device(powers32),
            cupy.asarray(pts32),
            cupy.asarray(indices),
            noise,
            beta32,
            tol32,
            alpha,
        )
        return cupy.asnumpy(mask), cupy.asnumpy(uncertain), cupy.asnumpy(sq_min)


if GPU_AVAILABLE:  # pragma: no cover - needs a CUDA device
    register_backend("gpu", GpuBackend())
