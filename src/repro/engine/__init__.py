"""repro.engine — the batched query engine.

Scalar queries (:meth:`WirelessNetwork.sinr`, ``locator.locate``) cost a
Python function call per station per point; at production scale ("which
access point do these 10^6 handset positions hear?") that is the whole
budget.  This package is the bulk substrate the rest of the library routes
through:

Architecture
============

``kernels.py``
    Fully vectorised NumPy SINR kernels over raw coordinate arrays — the
    pairwise energy matrix, interference, the SINR matrix, strongest-station
    argmax and reception masks.  Everything here is array-in / array-out and
    has no knowledge of the model layer's classes.

``backend.py``
    The pluggable backend protocol (:class:`QueryBackend`) and the
    concurrency-safe registry/selection machinery.  A backend is any object
    implementing the five kernel entry points.  The backend matrix:

    ================  ==========================================================
    ``numpy``         Vectorised kernels of ``kernels.py``; the default.  Best
                      for everyday batches (it beats the others up to roughly
                      10^4 points because it pays no compile or pool cost).
    ``reference``     Pure-Python loops over the scalar model functions; ~100x
                      slower, ground truth for the equivalence property tests.
    ``numba``         JIT-compiled fused loops (``numba_backend.py``).  Only
                      registered when the optional ``numba`` dependency is
                      installed (``pip install repro-sinr-diagrams[numba]``);
                      fastest steady-state single-core option once compiled.
    ``multiprocess``  Shards the point batch across a worker-process pool
                      (``multiprocess.py``).  Wins on multi-core hosts for
                      large batches (>= its ``min_batch_size`` threshold,
                      default 2048 points); smaller batches automatically fall
                      through to ``numpy`` so they never pay pool overhead.
    ``float32-screen``  The precision tier (``mixed_precision.py``): decision
                      queries run a float32 screen with a certified decision
                      margin, and only margin-close points are re-verified
                      through an exact inner backend (any registered name,
                      default ``numpy``; late-bound per call).  Answers are
                      bit-identical to ``reference`` by construction — the
                      screen keeps only decisions it can certify — at roughly
                      half the memory traffic of the float64 kernels.  Value
                      queries (``sinr_batch`` / ``energy_batch``) delegate to
                      the inner backend unscreened.
    ``gpu``           The same screen-then-verify shell with the float32
                      screen on a CUDA device via CuPy (``gpu_backend.py``).
                      Registered only when the optional dependency imports
                      *and* a device is visible
                      (``pip install repro-sinr-diagrams[gpu]``); exactness
                      guarantee identical to ``float32-screen``.
    ================  ==========================================================

    Switch with::

        from repro.engine import use_backend
        use_backend("reference")            # current thread/task, persistent
        with use_backend("numpy"): ...      # scoped, restored on exit

    or pass ``backend="numba"`` per call to any ``batch.py`` function.  The
    selection lives in a :class:`contextvars.ContextVar`, so threads and
    asyncio tasks are isolated from each other and nested ``with`` blocks
    unwind correctly even on exceptions.  New backends (GPU, ...) register
    via :func:`register_backend` and become selectable everywhere at once.

``batch.py``
    The uniform batch query API consumed by the model, point-location,
    analysis and workload layers: :func:`sinr_batch`,
    :func:`heard_station_batch`, :func:`received_mask`,
    :func:`strongest_station_batch` and :func:`locate_batch` (which
    dispatches to a locator's native ``locate_batch`` fast path when
    present).  Query points may be an ``(m, 2)`` array, a sequence of
    :class:`Point` or ``(x, y)`` tuples.  Backends may additionally offer a
    ``received_mask_row`` fast path (one station's reception row without the
    other ``n - 1`` SINR rows — the hot kernel of zone-boundary probing);
    :func:`received_mask` uses it when the active backend provides one.

    Every batch function tiles the point axis so the ``(n, m)``
    intermediates of one engine call fit a byte budget
    (``REPRO_ENGINE_CHUNK_BYTES``, default 64 MiB): peak memory stays
    bounded however large the batch, and results are bit-identical for
    every chunk size because each point's answer is independent.

Semantics
=========

Batch answers agree *pointwise* with the scalar code paths, including the
edge cases: energies are ``+inf`` at (or overflow-close to) a station
location, a point occupied by stations is received exactly by the co-located
stations (and *heard* by the first of them), and no NaN ever leaks out of
the SINR matrix at coincident points.  The property tests in ``tests/test_engine.py`` enforce
scalar/batch and numpy/reference agreement on randomized networks.
"""

from .backend import (
    NumpyBackend,
    QueryBackend,
    ReferenceBackend,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
)
from .batch import (
    DEFAULT_CHUNK_BYTES,
    NO_RECEPTION,
    as_points_array,
    chunk_byte_budget,
    energy_batch,
    heard_station_batch,
    locate_batch,
    points_per_chunk,
    received_at,
    received_mask,
    set_chunk_byte_budget,
    sinr_batch,
    strongest_station_batch,
)
from . import kernels

# Importing these modules registers the production backends: "multiprocess"
# and "float32-screen" always, "numba" and "gpu" only when their optional
# dependency (and, for "gpu", a CUDA device) is available.
from .multiprocess import MultiprocessBackend
from .numba_backend import NUMBA_AVAILABLE, NumbaBackend
from .mixed_precision import Float32ScreenBackend, ScreenStats
from .gpu_backend import GPU_AVAILABLE, GpuBackend

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "GPU_AVAILABLE",
    "NO_RECEPTION",
    "NUMBA_AVAILABLE",
    "Float32ScreenBackend",
    "GpuBackend",
    "MultiprocessBackend",
    "NumbaBackend",
    "NumpyBackend",
    "QueryBackend",
    "ReferenceBackend",
    "ScreenStats",
    "active_backend",
    "as_points_array",
    "available_backends",
    "chunk_byte_budget",
    "energy_batch",
    "get_backend",
    "heard_station_batch",
    "kernels",
    "locate_batch",
    "points_per_chunk",
    "received_at",
    "received_mask",
    "set_chunk_byte_budget",
    "register_backend",
    "sinr_batch",
    "strongest_station_batch",
    "use_backend",
]
