"""Pluggable compute backends for the batched query engine.

A backend turns raw coordinate arrays into SINR quantities.  The backend
matrix (see also :func:`available_backends`):

* ``"numpy"`` — the fully vectorised kernels of :mod:`repro.engine.kernels`
  (the default, and the fast path every consumer uses);
* ``"reference"`` — a pure-Python backend that loops over the scalar model
  functions (:mod:`repro.model.sinr`).  It is deliberately slow and exists as
  ground truth: the property tests assert that every registered backend
  agrees with it on random networks, so any future backend (GPU, ...) can be
  validated through the same protocol;
* ``"numba"`` (:mod:`repro.engine.numba_backend`) — JIT-compiled kernels,
  registered only when the optional ``numba`` dependency is installed
  (``pip install repro-sinr-diagrams[numba]``);
* ``"multiprocess"`` (:mod:`repro.engine.multiprocess`) — shards the point
  batch across a worker-process pool, falling through to the numpy backend
  below a batch-size threshold.

Select a backend with :func:`use_backend` (also usable as a context manager)
or per call via the ``backend=`` argument of the :mod:`repro.engine.batch`
functions::

    from repro.engine import use_backend

    use_backend("reference")          # current context, until changed back
    with use_backend("numpy"):        # scoped
        ...

Selection is stored in a :class:`contextvars.ContextVar`, so it is isolated
per thread and per async task: two threads (or asyncio tasks) can each
``use_backend(...)`` a different backend concurrently without seeing each
other's choice, and the context-manager form restores the previous selection
even when an exception escapes the block.  The registry itself is guarded by
a lock, and name-based selections are re-resolved on every query, so
re-registering a backend under an active name takes effect immediately.

Since the runtime unification, all of that machinery is one
:class:`repro.runtime.Registry` instantiation (:data:`BACKENDS`, kind
``"backend"``): this module contributes the backends and keeps the
historical function surface as thin delegates, and a selection can cross a
process boundary as the spec string ``"backend/<name>"``
(:meth:`~repro.runtime.Registry.to_spec`).
"""

from __future__ import annotations

import math
from typing import Dict, Protocol, cast, runtime_checkable

import numpy as np

from ..exceptions import ReproError
from ..runtime.registry import Registry, Selection
from . import kernels

__all__ = [
    "QueryBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "BACKENDS",
    "register_backend",
    "available_backends",
    "get_backend",
    "active_backend",
    "use_backend",
]


@runtime_checkable
class QueryBackend(Protocol):
    """The contract every engine backend implements.

    All methods take station coordinates ``(n, 2)``, powers ``(n,)`` and
    query points ``(m, 2)`` as float arrays and return arrays with the
    coincident-point semantics documented in :mod:`repro.engine.kernels`.
    """

    name: str

    def energy_matrix(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray: ...

    def sinr_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        alpha: float,
    ) -> np.ndarray: ...

    def strongest_station(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray: ...

    def received_mask_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
    ) -> np.ndarray: ...

    def heard_station(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
        no_reception: int,
    ) -> np.ndarray: ...


class NumpyBackend:
    """The vectorised default backend (thin façade over the kernels).

    Besides the protocol methods it offers ``received_mask_row`` and
    ``received_mask_at``, *optional* fast paths (not part of
    :class:`QueryBackend`) that compute one station's (resp. one per-point
    candidate's) reception indicator without the other ``n - 1`` SINR rows;
    :func:`repro.engine.batch.received_mask` and
    :func:`repro.engine.batch.received_at` use them when the active backend
    provides them and fall back to the full matrix otherwise.
    """

    name = "numpy"

    def energy_matrix(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray:
        return kernels.energy_matrix(coords, powers, points, alpha)

    def received_mask_row(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        index: int,
        noise: float,
        beta: float,
        alpha: float,
    ) -> np.ndarray:
        return kernels.received_mask_row(
            coords, powers, points, index, noise, beta, alpha
        )

    def received_mask_at(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        indices: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
    ) -> np.ndarray:
        return kernels.received_mask_at(
            coords, powers, points, indices, noise, beta, alpha
        )

    def sinr_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        alpha: float,
    ) -> np.ndarray:
        return kernels.sinr_matrix(coords, powers, points, noise, alpha)

    def strongest_station(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray:
        return kernels.strongest_station(coords, powers, points, alpha)

    def received_mask_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
    ) -> np.ndarray:
        return kernels.received_mask_matrix(coords, powers, points, noise, beta, alpha)

    def heard_station(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
        no_reception: int,
    ) -> np.ndarray:
        return kernels.heard_station(
            coords, powers, points, noise, beta, alpha, no_reception
        )


class ReferenceBackend:
    """Pure-Python ground-truth backend built on the scalar model functions.

    Roughly two orders of magnitude slower than the numpy backend; used only
    for equivalence testing and debugging.
    """

    name = "reference"

    @staticmethod
    def _scalar_energy(
        sx: float, sy: float, power: float, px: float, py: float, alpha: float
    ) -> float:
        from ..geometry.point import Point
        from ..model.sinr import received_energy

        return received_energy(Point(sx, sy), power, Point(px, py), alpha)

    def energy_matrix(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray:
        n, m = len(coords), len(points)
        out = np.empty((n, m), dtype=float)
        for i in range(n):
            for j in range(m):
                out[i, j] = self._scalar_energy(
                    coords[i, 0], coords[i, 1], powers[i],
                    points[j, 0], points[j, 1], alpha,
                )
        return out

    @staticmethod
    def _coincident(coords: np.ndarray, px: float, py: float) -> "list[int]":
        """Indices of stations exactly at ``(px, py)`` (coordinate equality)."""
        return [
            i
            for i in range(len(coords))
            if coords[i, 0] == px and coords[i, 1] == py
        ]

    def sinr_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        alpha: float,
    ) -> np.ndarray:
        energies = self.energy_matrix(coords, powers, points, alpha)
        n, m = energies.shape
        out = np.empty((n, m), dtype=float)
        for j in range(m):
            column = energies[:, j]
            coincident = self._coincident(coords, points[j, 0], points[j, 1])
            if coincident:
                out[:, j] = 0.0
                out[coincident[0], j] = math.inf
                continue
            finite_total = sum(e for e in column if not math.isinf(e))
            overflowed = any(math.isinf(e) for e in column)
            for i in range(n):
                if math.isinf(column[i]):
                    out[i, j] = math.inf
                elif overflowed:
                    out[i, j] = 0.0
                else:
                    denominator = finite_total - column[i] + noise
                    out[i, j] = (
                        column[i] / denominator if denominator > 0.0 else math.inf
                    )
        return out

    def strongest_station(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray:
        energies = self.energy_matrix(coords, powers, points, alpha)
        m = energies.shape[1]
        out = np.empty(m, dtype=np.intp)
        for j in range(m):
            best, best_energy = 0, -math.inf
            for i in range(energies.shape[0]):
                if energies[i, j] > best_energy:
                    best, best_energy = i, energies[i, j]
            out[j] = best
        return out

    def _mask_from_ratio(
        self, ratio: np.ndarray, coords: np.ndarray, points: np.ndarray, beta: float
    ) -> np.ndarray:
        n, m = ratio.shape
        mask = np.zeros((n, m), dtype=bool)
        for j in range(m):
            coincident = self._coincident(coords, points[j, 0], points[j, 1])
            if coincident:
                for i in coincident:
                    mask[i, j] = True
                continue
            for i in range(n):
                mask[i, j] = ratio[i, j] >= beta
        return mask

    def received_mask_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
    ) -> np.ndarray:
        ratio = self.sinr_matrix(coords, powers, points, noise, alpha)
        return self._mask_from_ratio(ratio, coords, points, beta)

    def heard_station(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
        no_reception: int,
    ) -> np.ndarray:
        ratio = self.sinr_matrix(coords, powers, points, noise, alpha)
        mask = self._mask_from_ratio(ratio, coords, points, beta)
        m = ratio.shape[1]
        out = np.full(m, no_reception, dtype=np.intp)
        for j in range(m):
            candidates = [i for i in range(ratio.shape[0]) if mask[i, j]]
            if candidates:
                out[j] = max(candidates, key=lambda i: (ratio[i, j], -i))
        return out


class _BackendSelection(Selection[QueryBackend]):
    """Result of :func:`use_backend`: effective immediately, optional context manager.

    ``backend`` re-resolves name-based selections on access, so it tracks
    re-registrations just like :func:`active_backend`.  The value bound by
    ``with use_backend(name) as b`` is necessarily a snapshot taken at entry;
    prefer :func:`active_backend` (or the ``backend`` property) inside the
    block when re-registration during the block is a possibility.
    """

    @property
    def backend(self) -> QueryBackend:
        return self.value


#: The engine backend registry — a :class:`repro.runtime.Registry`
#: instantiation.  Name-based selections are re-resolved on every query
#: (re-registration under an active name takes effect immediately), the
#: ContextVar isolates selections per thread / async task with ``"numpy"``
#: as the default, and ``BACKENDS.to_spec(name)`` renders a portable
#: ``"backend/<name>"`` spec.
BACKENDS: Registry[QueryBackend] = Registry(
    "backend",
    label="engine backend",
    default="numpy",
    error=ReproError,
    selection_type=_BackendSelection,
)


def register_backend(name: str, backend: QueryBackend) -> None:
    """Register ``backend`` under ``name`` (overwriting any previous one).

    Safe to call from any thread.  Because active selections made by name are
    re-resolved on use, overwriting a name that is currently active takes
    effect immediately — :func:`active_backend` never returns the stale
    previously-registered object.
    """
    BACKENDS.register(name, backend)


def available_backends() -> Dict[str, QueryBackend]:
    """Name -> backend mapping of everything registered (a snapshot copy).

    Sorted by name, so iteration order is deterministic across runs and
    interpreters regardless of registration order.
    """
    return BACKENDS.snapshot()


def get_backend(name: "str | QueryBackend | None" = None) -> QueryBackend:
    """Resolve a backend: None -> the active one, a str -> by name, else as-is."""
    return BACKENDS.get(name)


def active_backend() -> QueryBackend:
    """The backend batch queries use when none is passed explicitly.

    Resolved from the current context's selection, so each thread and async
    task sees its own :func:`use_backend` choices (falling back to
    ``"numpy"`` where none was made).
    """
    return BACKENDS.active()


def use_backend(name: "str | QueryBackend") -> _BackendSelection:
    """Make ``name`` the active backend in the current context.

    The switch takes effect immediately and persists for the current thread /
    async task; when the return value is used as a context manager, the
    previous selection is restored on exit (also when an exception escapes
    the block), and nested selections unwind in order.
    """
    return cast(_BackendSelection, BACKENDS.use(name))


register_backend("numpy", NumpyBackend())
register_backend("reference", ReferenceBackend())
