"""Pluggable compute backends for the batched query engine.

A backend turns raw coordinate arrays into SINR quantities.  Two ship with
the library:

* ``"numpy"`` — the fully vectorised kernels of :mod:`repro.engine.kernels`
  (the default, and the fast path every consumer uses);
* ``"reference"`` — a pure-Python backend that loops over the scalar model
  functions (:mod:`repro.model.sinr`).  It is deliberately slow and exists as
  ground truth: the property tests assert that both backends agree on random
  networks, so any future backend (numba, multiprocess, GPU) can be validated
  against it through the same protocol.

Select a backend globally with :func:`use_backend` (also usable as a context
manager) or per call via the ``backend=`` argument of the
:mod:`repro.engine.batch` functions::

    from repro.engine import use_backend

    use_backend("reference")          # global, until changed back
    with use_backend("numpy"):        # scoped
        ...
"""

from __future__ import annotations

import math
from typing import Dict, Protocol, runtime_checkable

import numpy as np

from ..exceptions import ReproError
from . import kernels

__all__ = [
    "QueryBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "active_backend",
    "use_backend",
]


@runtime_checkable
class QueryBackend(Protocol):
    """The contract every engine backend implements.

    All methods take station coordinates ``(n, 2)``, powers ``(n,)`` and
    query points ``(m, 2)`` as float arrays and return arrays with the
    coincident-point semantics documented in :mod:`repro.engine.kernels`.
    """

    name: str

    def energy_matrix(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray: ...

    def sinr_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        alpha: float,
    ) -> np.ndarray: ...

    def strongest_station(
        self, coords: np.ndarray, powers: np.ndarray, points: np.ndarray, alpha: float
    ) -> np.ndarray: ...

    def received_mask_matrix(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
    ) -> np.ndarray: ...

    def heard_station(
        self,
        coords: np.ndarray,
        powers: np.ndarray,
        points: np.ndarray,
        noise: float,
        beta: float,
        alpha: float,
        no_reception: int,
    ) -> np.ndarray: ...


class NumpyBackend:
    """The vectorised default backend (thin façade over the kernels)."""

    name = "numpy"

    def energy_matrix(self, coords, powers, points, alpha):
        return kernels.energy_matrix(coords, powers, points, alpha)

    def sinr_matrix(self, coords, powers, points, noise, alpha):
        return kernels.sinr_matrix(coords, powers, points, noise, alpha)

    def strongest_station(self, coords, powers, points, alpha):
        return kernels.strongest_station(coords, powers, points, alpha)

    def received_mask_matrix(self, coords, powers, points, noise, beta, alpha):
        return kernels.received_mask_matrix(coords, powers, points, noise, beta, alpha)

    def heard_station(self, coords, powers, points, noise, beta, alpha, no_reception):
        return kernels.heard_station(
            coords, powers, points, noise, beta, alpha, no_reception
        )


class ReferenceBackend:
    """Pure-Python ground-truth backend built on the scalar model functions.

    Roughly two orders of magnitude slower than the numpy backend; used only
    for equivalence testing and debugging.
    """

    name = "reference"

    @staticmethod
    def _scalar_energy(sx, sy, power, px, py, alpha):
        from ..geometry.point import Point
        from ..model.sinr import received_energy

        return received_energy(Point(sx, sy), power, Point(px, py), alpha)

    def energy_matrix(self, coords, powers, points, alpha):
        n, m = len(coords), len(points)
        out = np.empty((n, m), dtype=float)
        for i in range(n):
            for j in range(m):
                out[i, j] = self._scalar_energy(
                    coords[i, 0], coords[i, 1], powers[i],
                    points[j, 0], points[j, 1], alpha,
                )
        return out

    @staticmethod
    def _coincident(coords, px, py):
        """Indices of stations exactly at ``(px, py)`` (coordinate equality)."""
        return [
            i
            for i in range(len(coords))
            if coords[i, 0] == px and coords[i, 1] == py
        ]

    def sinr_matrix(self, coords, powers, points, noise, alpha):
        energies = self.energy_matrix(coords, powers, points, alpha)
        n, m = energies.shape
        out = np.empty((n, m), dtype=float)
        for j in range(m):
            column = energies[:, j]
            coincident = self._coincident(coords, points[j, 0], points[j, 1])
            if coincident:
                out[:, j] = 0.0
                out[coincident[0], j] = math.inf
                continue
            finite_total = sum(e for e in column if not math.isinf(e))
            overflowed = any(math.isinf(e) for e in column)
            for i in range(n):
                if math.isinf(column[i]):
                    out[i, j] = math.inf
                elif overflowed:
                    out[i, j] = 0.0
                else:
                    denominator = finite_total - column[i] + noise
                    out[i, j] = (
                        column[i] / denominator if denominator > 0.0 else math.inf
                    )
        return out

    def strongest_station(self, coords, powers, points, alpha):
        energies = self.energy_matrix(coords, powers, points, alpha)
        m = energies.shape[1]
        out = np.empty(m, dtype=np.intp)
        for j in range(m):
            best, best_energy = 0, -math.inf
            for i in range(energies.shape[0]):
                if energies[i, j] > best_energy:
                    best, best_energy = i, energies[i, j]
            out[j] = best
        return out

    def _mask_from_ratio(self, ratio, coords, points, beta):
        n, m = ratio.shape
        mask = np.zeros((n, m), dtype=bool)
        for j in range(m):
            coincident = self._coincident(coords, points[j, 0], points[j, 1])
            if coincident:
                for i in coincident:
                    mask[i, j] = True
                continue
            for i in range(n):
                mask[i, j] = ratio[i, j] >= beta
        return mask

    def received_mask_matrix(self, coords, powers, points, noise, beta, alpha):
        ratio = self.sinr_matrix(coords, powers, points, noise, alpha)
        return self._mask_from_ratio(ratio, coords, points, beta)

    def heard_station(self, coords, powers, points, noise, beta, alpha, no_reception):
        ratio = self.sinr_matrix(coords, powers, points, noise, alpha)
        mask = self._mask_from_ratio(ratio, coords, points, beta)
        m = ratio.shape[1]
        out = np.full(m, no_reception, dtype=np.intp)
        for j in range(m):
            candidates = [i for i in range(ratio.shape[0]) if mask[i, j]]
            if candidates:
                out[j] = max(candidates, key=lambda i: (ratio[i, j], -i))
        return out


_BACKENDS: Dict[str, QueryBackend] = {}
_active: QueryBackend


def register_backend(name: str, backend: QueryBackend) -> None:
    """Register a backend under ``name`` (overwriting any previous one)."""
    _BACKENDS[name] = backend


def available_backends() -> Dict[str, QueryBackend]:
    """Name -> backend mapping of everything registered."""
    return dict(_BACKENDS)


def get_backend(name: "str | QueryBackend | None" = None) -> QueryBackend:
    """Resolve a backend: None -> the active one, a str -> by name, else as-is."""
    if name is None:
        return _active
    if isinstance(name, str):
        try:
            return _BACKENDS[name]
        except KeyError:
            raise ReproError(
                f"unknown engine backend {name!r}; "
                f"available: {sorted(_BACKENDS)}"
            ) from None
    return name


def active_backend() -> QueryBackend:
    """The backend batch queries use when none is passed explicitly."""
    return _active


class _BackendSelection:
    """Result of :func:`use_backend`: effective immediately, optional context manager."""

    def __init__(self, previous: QueryBackend, selected: QueryBackend):
        self._previous = previous
        self.backend = selected

    def __enter__(self) -> QueryBackend:
        return self.backend

    def __exit__(self, *exc_info) -> None:
        global _active
        _active = self._previous


def use_backend(name: "str | QueryBackend") -> _BackendSelection:
    """Make ``name`` the active backend.

    The switch takes effect immediately and persists; when the return value is
    used as a context manager, the previous backend is restored on exit.
    """
    global _active
    selection = _BackendSelection(_active, get_backend(name))
    _active = selection.backend
    return selection


register_backend("numpy", NumpyBackend())
register_backend("reference", ReferenceBackend())
_active = _BACKENDS["numpy"]
