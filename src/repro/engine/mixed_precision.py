"""The precision tier: float32 screen-then-verify decision backends.

:class:`~repro.pointlocation.sharded.ShardedLocator` proved that a cheap
*propose* pass stays exact as long as an exact *verify* pass re-checks every
proposal that could be wrong.  This module applies the same trick to
precision instead of space: decision queries (strongest station, reception
masks, heard station) are screened in float32 — half the memory traffic of
the float64 kernels, and free of their coincidence-matrix passes — together
with a certified decision margin per point.  Points whose float32 margin is
too small to rule out a float64 disagreement are re-routed through an exact
inner backend, so the combined answer is bit-identical to ``reference`` *by
construction*: the screen only ever keeps decisions it can certify.

Margin semantics
----------------

* Reception tests certify ``SINR >= beta`` only when the float32 SINR is
  relatively far from ``beta``: a column is uncertain iff some entry has
  ``|SINR32 - beta| <= tol * (SINR32 + beta)``.
* Strongest-station (and the masked argmax of ``heard_station``) certify the
  winner only when top-1 and top-2 are relatively separated:
  ``(v1 - v2) > tol * (v1 + v2)``; ties are always uncertain.
* A per-point geometry guard flags points within ``geometry_margin`` (relative
  to the coordinate scale) of a station, where coordinate rounding amplifies
  without bound; any non-finite or underflowed float32 value is uncertain as
  well, which also covers every coincident-station column (a float64
  coincidence forces a float32 zero distance, hence an infinite energy).

``tol`` is the maximum of the configured ``decision_margin`` and a floor
derived from the station count, ``beta``, ``alpha`` and float32 epsilon, so
shrinking the margin can grow the verified fraction but never break
exactness.  *Value* queries (``energy_matrix`` / ``sinr_matrix``) return
floats rather than decisions — there is no margin to certify — so they
delegate wholly to the exact inner backend.

The inner backend is late-bound exactly like the registry's name-based
selections: a name is re-resolved on **every** call, so ``register_backend``
overwrites take effect on the verify path immediately, and ``inner=None``
follows the caller's :func:`~repro.engine.backend.use_backend` context.

The screen itself is evaluated in cache-friendly float32 chunks under the
same ``REPRO_ENGINE_CHUNK_BYTES`` budget as :mod:`repro.engine.batch`, and
the chunk kernels are written against an array-module parameter (``xp``) so
:mod:`repro.engine.gpu_backend` reuses them verbatim on CuPy arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ReproError
from .backend import QueryBackend, active_backend, get_backend, register_backend
from .batch import chunk_byte_budget

__all__ = [
    "DEFAULT_DECISION_MARGIN",
    "DEFAULT_GEOMETRY_MARGIN",
    "Float32ScreenBackend",
    "ScreenStats",
]

#: Default relative decision margin of the screen; see ``decision_margin``.
DEFAULT_DECISION_MARGIN = 1e-3

#: Default station-proximity guard (relative to the coordinate scale) below
#: which coordinate rounding error is considered unbounded.
DEFAULT_GEOMETRY_MARGIN = 1e-3

_EPS32 = float(np.finfo(np.float32).eps)
_TINY32 = float(np.finfo(np.float32).tiny)

#: Concurrent float32 ``(n, chunk)`` temporaries of one screen pass; the
#: screen chunks points so all of them fit the shared chunk byte budget.
_SCREEN_TEMPS = 10


class ScreenStats:
    """Counters of screen effectiveness (informational, per backend instance).

    ``screened`` counts every point a decision query saw; ``verified`` the
    subset whose margin was too small, re-routed through the exact inner
    backend.  Updated without locking — exact totals under concurrency are
    not guaranteed, only the answers are.
    """

    __slots__ = ("screened", "verified")

    def __init__(self) -> None:
        self.screened = 0
        self.verified = 0

    def reset(self) -> None:
        self.screened = 0
        self.verified = 0

    def verify_fraction(self) -> float:
        """Fraction of screened points that needed exact verification."""
        return self.verified / self.screened if self.screened else 0.0

    def metrics_sample(self) -> "dict[str, float]":
        """The counters as one flat numeric sample
        (:class:`~repro.runtime.StatsSource` protocol)."""
        return {
            "screened": float(self.screened),
            "verified": float(self.verified),
            "verify_fraction": float(self.verify_fraction()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScreenStats(screened={self.screened}, verified={self.verified}, "
            f"verify_fraction={self.verify_fraction():.4f})"
        )


def _screen_energies(xp, coords32, powers32, pts32, alpha):
    """Float32 energies ``(n, c)`` plus the per-point min squared distance.

    No coincidence matrix: a zero float32 distance yields an infinite energy,
    and every non-finite value routes its column to the exact path anyway.
    """
    dx = coords32[:, 0:1] - pts32[:, 0][None, :]
    dy = coords32[:, 1:2] - pts32[:, 1][None, :]
    sq = dx * dx
    sq += dy * dy
    sq_min = sq.min(axis=0)
    if alpha == 2.0:
        energies = powers32[:, None] / sq
    else:
        energies = powers32[:, None] * sq ** xp.float32(-alpha / 2.0)
    return energies, sq_min


def _screen_strongest(xp, coords32, powers32, pts32, alpha, tol32):
    """One strongest-station screen chunk: ``(idx, uncertain, sq_min)``.

    ``idx`` is the float32 energy argmax; a point is uncertain unless top-1
    is finite, clear of the underflow floor, and relatively separated from
    top-2 by more than ``tol32``.
    """
    energies, sq_min = _screen_energies(xp, coords32, powers32, pts32, alpha)
    idx = xp.argmax(energies, axis=0)
    cols = xp.arange(pts32.shape[0])
    top1 = energies[idx, cols]
    energies[idx, cols] = -xp.inf
    top2 = energies.max(axis=0)
    # Below the floor, float32 zeros may hide larger true energies (underflow
    # or squared-distance overflow), so a "winner" there proves nothing.
    floor = xp.float32(max(_TINY32, float(powers32.max()) * 1e-35))
    uncertain = (
        ~xp.isfinite(top1)
        | (top1 <= floor)
        | ~((top1 - top2) > tol32 * (top1 + top2))
    )
    return idx, uncertain, sq_min


def _screen_sinr(xp, coords32, powers32, pts32, noise, alpha):
    """Float32 SINR ratios ``(n, c)`` plus per-point inf/underflow flags.

    Columns containing any infinite energy — coincident or overflow-close
    stations — and columns whose total signal underflows are flagged; the
    caller must route flagged columns to the exact path, so the simplified
    arithmetic here (no coincidence/overflow overrides) is safe.
    """
    energies, sq_min = _screen_energies(xp, coords32, powers32, pts32, alpha)
    inf_energy = ~xp.isfinite(energies)
    flagged = inf_energy.any(axis=0)
    finite = xp.where(inf_energy, xp.float32(0.0), energies)
    total = finite.sum(axis=0)
    flagged = flagged | (total < xp.float32(_TINY32))
    denominator = total[None, :] - finite + xp.float32(noise)
    ratio = xp.where(
        denominator > 0, finite / denominator, xp.float32(np.inf)
    )
    return ratio, flagged, sq_min


def _screen_mask(xp, coords32, powers32, pts32, noise, beta32, tol32, alpha):
    """One reception-mask screen chunk: ``(mask (n, c), uncertain, sq_min)``."""
    ratio, flagged, sq_min = _screen_sinr(
        xp, coords32, powers32, pts32, noise, alpha
    )
    mask = ratio >= beta32
    near = xp.abs(ratio - beta32) <= tol32 * (ratio + beta32)
    return mask, near.any(axis=0) | flagged, sq_min


def _screen_heard(xp, coords32, powers32, pts32, noise, beta32, tol32, alpha):
    """One heard-station screen chunk: ``(best, any_received, uncertain, sq_min)``.

    Uncertain when any entry is margin-close to ``beta`` (the mask could
    differ), when the masked top-1/top-2 separation fails (the ``beta < 1``
    tie-break could differ), or on any inf/underflow flag.
    """
    ratio, flagged, sq_min = _screen_sinr(
        xp, coords32, powers32, pts32, noise, alpha
    )
    mask = ratio >= beta32
    near = xp.abs(ratio - beta32) <= tol32 * (ratio + beta32)
    masked = xp.where(mask, ratio, xp.float32(-np.inf))
    best = xp.argmax(masked, axis=0)
    cols = xp.arange(pts32.shape[0])
    top1 = masked[best, cols]
    any_received = top1 > -xp.inf
    masked[best, cols] = -xp.inf
    top2 = masked.max(axis=0)
    contested = top2 > -xp.inf
    uncertain = (
        near.any(axis=0)
        | flagged
        | (contested & ~((top1 - top2) > tol32 * (top1 + top2)))
    )
    return best, any_received, uncertain, sq_min


def _screen_row(
    xp, coords32, powers32, pts32, indices, noise, beta32, tol32, alpha
):
    """One gathered reception screen chunk: ``(mask (c,), uncertain, sq_min)``."""
    energies, sq_min = _screen_energies(xp, coords32, powers32, pts32, alpha)
    inf_energy = ~xp.isfinite(energies)
    flagged = inf_energy.any(axis=0)
    finite = xp.where(inf_energy, xp.float32(0.0), energies)
    total = finite.sum(axis=0)
    flagged = flagged | (total < xp.float32(_TINY32))
    cols = xp.arange(pts32.shape[0])
    row = finite[indices, cols]
    denominator = total - row + xp.float32(noise)
    ratio = xp.where(denominator > 0, row / denominator, xp.float32(np.inf))
    near = xp.abs(ratio - beta32) <= tol32 * (ratio + beta32)
    return ratio >= beta32, near | flagged, sq_min


class Float32ScreenBackend:
    """Exact decision backend with a float32 fast path (``"float32-screen"``).

    Implements the full :class:`~repro.engine.backend.QueryBackend` protocol
    plus the optional ``received_mask_row`` / ``received_mask_at`` fast
    paths.  Decision queries run the float32 screen and re-route
    margin-close points through the exact inner backend; value queries
    delegate wholly to it.  See the module docstring for the margin scheme.

    Args:
        inner: the exact backend used for verification and value queries —
            a registered name (re-resolved on every call, so later
            ``register_backend`` overwrites apply), a backend object, or
            ``None`` to follow the caller's active-backend context (falling
            back to ``"numpy"`` when that context selects a screen backend,
            which would otherwise verify through itself).
        decision_margin: relative margin below which a float32 decision is
            re-verified.  Widening it is always safe (more verification);
            the effective tolerance never drops below an error-bound floor,
            so narrowing it cannot break exactness either.
        geometry_margin: station-proximity guard relative to the coordinate
            scale; points closer than this to some station are always
            verified exactly.
        chunk_bytes: byte budget for the screen's float32 intermediates;
            defaults to the shared :func:`~repro.engine.batch.
            chunk_byte_budget` (``REPRO_ENGINE_CHUNK_BYTES``).
    """

    name = "float32-screen"

    #: Opt-in marker for :mod:`repro.engine.batch`: pass the network's cached
    #: ``coords32`` / ``powers32`` views so the screen never re-casts.
    accepts_float32_arrays = True

    def __init__(
        self,
        inner: "str | QueryBackend | None" = "numpy",
        *,
        decision_margin: float = DEFAULT_DECISION_MARGIN,
        geometry_margin: float = DEFAULT_GEOMETRY_MARGIN,
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if decision_margin <= 0.0:
            raise ReproError("decision_margin must be positive")
        if geometry_margin <= 0.0:
            raise ReproError("geometry_margin must be positive")
        self._inner_selection = inner
        self.decision_margin = float(decision_margin)
        self.geometry_margin = float(geometry_margin)
        self._chunk_bytes = chunk_bytes
        self.stats = ScreenStats()

    # -- inner backend (late-bound) ------------------------------------

    def _inner(self) -> QueryBackend:
        """Resolve the exact inner backend *now* (late binding, every call)."""
        selection = self._inner_selection
        if selection is None:
            resolved = active_backend()
            if isinstance(resolved, Float32ScreenBackend):
                # The active selection is a screen (typically this very
                # backend): verifying through it would recurse, not verify.
                return get_backend("numpy")
            return resolved
        return get_backend(selection)

    # -- value queries: no decision to screen, delegate exactly --------

    def energy_matrix(
        self, coords, powers, points, alpha, coords32=None, powers32=None
    ):
        return self._inner().energy_matrix(coords, powers, points, alpha)

    def sinr_matrix(
        self, coords, powers, points, noise, alpha, coords32=None, powers32=None
    ):
        return self._inner().sinr_matrix(coords, powers, points, noise, alpha)

    # -- screen plumbing ----------------------------------------------

    def _screen_arrays(self, coords, powers, pts, coords32, powers32):
        if coords32 is None:
            coords32 = np.ascontiguousarray(coords, dtype=np.float32)
        if powers32 is None:
            powers32 = np.ascontiguousarray(powers, dtype=np.float32)
        return coords32, powers32, np.ascontiguousarray(pts, dtype=np.float32)

    def _chunk_step(self, n_stations: int) -> int:
        budget = (
            self._chunk_bytes if self._chunk_bytes else chunk_byte_budget()
        )
        return max(1, budget // (max(1, n_stations) * 4 * _SCREEN_TEMPS))

    def _tolerance(self, n_stations: int, beta: float, alpha: float) -> np.float32:
        """Effective relative tolerance: the margin, floored by error bounds.

        The floor covers coordinate-rounding amplification at the geometry
        guard (``~alpha * eps32 / geometry_margin``) and the interference
        cancellation of near-threshold SINR columns
        (``~beta * n * eps32``), each with generous slack.
        """
        floor = max(
            4.0 * max(2.0, abs(alpha)) * _EPS32 / self.geometry_margin,
            8.0 * (abs(beta) + 1.0) * (n_stations + 64.0) * _EPS32,
        )
        return np.float32(max(self.decision_margin, floor))

    def _geometry_flags(self, coords, pts_chunk, sq_min) -> np.ndarray:
        """Points within ``geometry_margin`` of a station (float64 check)."""
        coord_scale = max(1.0, float(np.abs(coords).max(initial=0.0)))
        scale = np.maximum(
            np.abs(np.asarray(pts_chunk, dtype=float)).max(axis=1), coord_scale
        )
        threshold = (self.geometry_margin * scale) ** 2
        return np.asarray(sq_min, dtype=float) <= threshold

    def _screenable(self, noise: float, beta: float, alpha: float) -> bool:
        """Whether the float32 screen's assumptions hold for these parameters."""
        limit = float(np.finfo(np.float32).max)
        return (
            np.isfinite(noise)
            and np.isfinite(beta)
            and np.isfinite(alpha)
            and abs(noise) < limit
            and 1e-30 < beta < limit
        )

    def _note(self, screened: int, verified: int) -> None:
        self.stats.screened += int(screened)
        self.stats.verified += int(verified)

    # -- screen chunk hooks (overridden by the GPU backend) ------------

    def _screen_strongest_chunk(self, coords32, powers32, pts32, alpha, tol32):
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            return _screen_strongest(np, coords32, powers32, pts32, alpha, tol32)

    def _screen_mask_chunk(
        self, coords32, powers32, pts32, noise, beta32, tol32, alpha
    ):
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            return _screen_mask(
                np, coords32, powers32, pts32, noise, beta32, tol32, alpha
            )

    def _screen_heard_chunk(
        self, coords32, powers32, pts32, noise, beta32, tol32, alpha
    ):
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            return _screen_heard(
                np, coords32, powers32, pts32, noise, beta32, tol32, alpha
            )

    def _screen_row_chunk(
        self, coords32, powers32, pts32, indices, noise, beta32, tol32, alpha
    ):
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            return _screen_row(
                np, coords32, powers32, pts32, indices, noise, beta32, tol32, alpha
            )

    # -- screened decision queries -------------------------------------

    def strongest_station(
        self, coords, powers, points, alpha, coords32=None, powers32=None
    ):
        pts = np.asarray(points, dtype=float)
        m = len(pts)
        if m == 0:
            return np.empty(0, dtype=np.intp)
        c32, p32, pts32 = self._screen_arrays(
            coords, powers, pts, coords32, powers32
        )
        tol32 = self._tolerance(len(coords), 1.0, alpha)
        out = np.empty(m, dtype=np.intp)
        uncertain = np.empty(m, dtype=bool)
        step = self._chunk_step(len(coords))
        for start in range(0, m, step):
            sl = slice(start, min(start + step, m))
            idx, unc, sq_min = self._screen_strongest_chunk(
                c32, p32, pts32[sl], alpha, tol32
            )
            out[sl] = np.asarray(idx, dtype=np.intp)
            uncertain[sl] = unc | self._geometry_flags(coords, pts[sl], sq_min)
        verified = int(np.count_nonzero(uncertain))
        if verified:
            out[uncertain] = self._inner().strongest_station(
                coords, powers, pts[uncertain], alpha
            )
        self._note(m, verified)
        return out

    def received_mask_matrix(
        self, coords, powers, points, noise, beta, alpha,
        coords32=None, powers32=None,
    ):
        pts = np.asarray(points, dtype=float)
        n, m = len(coords), len(pts)
        if m == 0:
            return np.empty((n, 0), dtype=bool)
        if not self._screenable(noise, beta, alpha):
            return self._inner().received_mask_matrix(
                coords, powers, pts, noise, beta, alpha
            )
        c32, p32, pts32 = self._screen_arrays(
            coords, powers, pts, coords32, powers32
        )
        beta32 = np.float32(beta)
        tol32 = self._tolerance(n, beta, alpha)
        out = np.empty((n, m), dtype=bool)
        uncertain = np.empty(m, dtype=bool)
        step = self._chunk_step(n)
        for start in range(0, m, step):
            sl = slice(start, min(start + step, m))
            mask, unc, sq_min = self._screen_mask_chunk(
                c32, p32, pts32[sl], noise, beta32, tol32, alpha
            )
            out[:, sl] = np.asarray(mask, dtype=bool)
            uncertain[sl] = unc | self._geometry_flags(coords, pts[sl], sq_min)
        verified = int(np.count_nonzero(uncertain))
        if verified:
            out[:, uncertain] = self._inner().received_mask_matrix(
                coords, powers, pts[uncertain], noise, beta, alpha
            )
        self._note(m, verified)
        return out

    def heard_station(
        self, coords, powers, points, noise, beta, alpha, no_reception,
        coords32=None, powers32=None,
    ):
        pts = np.asarray(points, dtype=float)
        m = len(pts)
        if m == 0:
            return np.empty(0, dtype=np.intp)
        if not self._screenable(noise, beta, alpha):
            return self._inner().heard_station(
                coords, powers, pts, noise, beta, alpha, no_reception
            )
        c32, p32, pts32 = self._screen_arrays(
            coords, powers, pts, coords32, powers32
        )
        beta32 = np.float32(beta)
        tol32 = self._tolerance(len(coords), beta, alpha)
        out = np.empty(m, dtype=np.intp)
        uncertain = np.empty(m, dtype=bool)
        step = self._chunk_step(len(coords))
        for start in range(0, m, step):
            sl = slice(start, min(start + step, m))
            best, any_received, unc, sq_min = self._screen_heard_chunk(
                c32, p32, pts32[sl], noise, beta32, tol32, alpha
            )
            out[sl] = np.where(
                np.asarray(any_received, dtype=bool),
                np.asarray(best, dtype=np.intp),
                no_reception,
            )
            uncertain[sl] = unc | self._geometry_flags(coords, pts[sl], sq_min)
        verified = int(np.count_nonzero(uncertain))
        if verified:
            out[uncertain] = self._inner().heard_station(
                coords, powers, pts[uncertain], noise, beta, alpha, no_reception
            )
        self._note(m, verified)
        return out

    # -- optional gathered fast paths ----------------------------------

    def received_mask_at(
        self, coords, powers, points, indices, noise, beta, alpha,
        coords32=None, powers32=None,
    ):
        pts = np.asarray(points, dtype=float)
        indices = np.asarray(indices, dtype=np.intp)
        m = len(pts)
        if m == 0:
            return np.empty(0, dtype=bool)
        if not self._screenable(noise, beta, alpha):
            return self._verify_mask_at(coords, powers, pts, indices, noise, beta, alpha)
        c32, p32, pts32 = self._screen_arrays(
            coords, powers, pts, coords32, powers32
        )
        beta32 = np.float32(beta)
        tol32 = self._tolerance(len(coords), beta, alpha)
        out = np.empty(m, dtype=bool)
        uncertain = np.empty(m, dtype=bool)
        step = self._chunk_step(len(coords))
        for start in range(0, m, step):
            sl = slice(start, min(start + step, m))
            mask, unc, sq_min = self._screen_row_chunk(
                c32, p32, pts32[sl], indices[sl], noise, beta32, tol32, alpha
            )
            out[sl] = np.asarray(mask, dtype=bool)
            uncertain[sl] = unc | self._geometry_flags(coords, pts[sl], sq_min)
        verified = int(np.count_nonzero(uncertain))
        if verified:
            out[uncertain] = self._verify_mask_at(
                coords, powers, pts[uncertain], indices[uncertain],
                noise, beta, alpha,
            )
        self._note(m, verified)
        return out

    def received_mask_row(
        self, coords, powers, points, index, noise, beta, alpha,
        coords32=None, powers32=None,
    ):
        indices = np.full(len(points), index, dtype=np.intp)
        return self.received_mask_at(
            coords, powers, points, indices, noise, beta, alpha,
            coords32=coords32, powers32=powers32,
        )

    def _verify_mask_at(self, coords, powers, pts, indices, noise, beta, alpha):
        """Exact per-point-candidate reception through the inner backend."""
        inner = self._inner()
        gather = getattr(inner, "received_mask_at", None)
        if gather is not None:
            return gather(coords, powers, pts, indices, noise, beta, alpha)
        matrix = inner.received_mask_matrix(
            coords, powers, pts, noise, beta, alpha
        )
        return matrix[indices, np.arange(len(pts))]


register_backend("float32-screen", Float32ScreenBackend())
