"""Vectorised NumPy SINR kernels over coordinate arrays.

Every kernel operates on raw arrays — station coordinates of shape
``(n_stations, 2)``, powers of shape ``(n_stations,)`` and query points of
shape ``(n_points, 2)`` — and returns arrays, never scalars or
:class:`~repro.geometry.point.Point` objects.  The kernels are the single
source of truth for bulk SINR arithmetic: the model layer's raster builder,
the batch query API of :mod:`repro.engine.batch` and the locators'
``locate_batch`` fast paths all delegate here.

Edge-case semantics (matching the scalar model layer exactly):

* the energy of a station at its own location is ``+inf``; distances small
  enough for the power law to overflow a float saturate to ``+inf`` as well,
  mirroring the ``OverflowError`` handling of
  :func:`repro.model.sinr.received_energy`;
* at a point *exactly* occupied by a station (coordinate equality, the same
  test the scalar reception predicate uses) the SINR column holds ``+inf``
  for the first co-located station and ``0.0`` for every other station;
* at a point merely overflow-close to stations, stations with infinite
  energy get SINR ``+inf`` and the rest ``0.0`` — no NaN ever leaks out of
  the ``inf - inf`` interference arithmetic;
* the reception mask follows
  :meth:`repro.model.network.WirelessNetwork.is_received`: a point occupied
  by stations is received exactly by the co-located stations (each hears its
  own location by definition) and by nobody else.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_squared_distances",
    "coincidence_matrix",
    "energy_matrix",
    "interference_matrix",
    "sinr_matrix",
    "strongest_station",
    "received_mask_matrix",
    "received_mask_at",
    "received_mask_row",
    "heard_station",
]


def pairwise_squared_distances(
    station_coordinates: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Squared distances of shape ``(n_stations, n_points)``.

    Args:
        station_coordinates: array of shape ``(n_stations, 2)``.
        points: array of shape ``(n_points, 2)``.
    """
    dx = station_coordinates[:, 0:1] - points[:, 0][None, :]
    dy = station_coordinates[:, 1:2] - points[:, 1][None, :]
    return dx * dx + dy * dy


def coincidence_matrix(
    station_coordinates: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Boolean ``(n_stations, n_points)``: does point ``j`` sit on station ``i``?

    Uses exact coordinate equality — the same test the scalar
    ``point == station.location`` comparison performs — not a squared
    distance, which can underflow to zero for points that are merely
    astronomically close.
    """
    same_x = station_coordinates[:, 0:1] == points[:, 0][None, :]
    same_y = station_coordinates[:, 1:2] == points[:, 1][None, :]
    return same_x & same_y


def energy_matrix(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    alpha: float = 2.0,
) -> np.ndarray:
    """Received energies ``psi_i * dist(s_i, p_j)^(-alpha)``, shape ``(n, m)``.

    Entries where a point coincides with a station are ``+inf``; distances
    small enough for the power law to overflow saturate to ``+inf`` as well.
    """
    squared = pairwise_squared_distances(station_coordinates, points)
    with np.errstate(divide="ignore", over="ignore"):
        if alpha == 2.0:
            # The paper's default exponent: a plain reciprocal is several
            # times faster than np.power on large matrices and this is the
            # innermost loop of every batch query.
            energies = powers[:, None] / squared
        else:
            energies = powers[:, None] * np.power(squared, -alpha / 2.0)
    # Division / np.power already yield inf at squared == 0, but make the
    # coincident case explicit so nothing can scale or NaN it away.
    return np.where(
        coincidence_matrix(station_coordinates, points), np.inf, energies
    )


def interference_matrix(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    alpha: float = 2.0,
) -> np.ndarray:
    """Interference to every station at every point, shape ``(n, m)``.

    Row ``i`` holds the total energy of all stations except ``s_i``; it is
    ``+inf`` wherever some *other* station has infinite energy.
    """
    energies = energy_matrix(station_coordinates, powers, points, alpha)
    inf_here = np.isinf(energies)
    finite = np.where(inf_here, 0.0, energies)
    interference = finite.sum(axis=0)[None, :] - finite
    other_inf = (inf_here.sum(axis=0)[None, :] - inf_here.astype(int)) > 0
    return np.where(other_inf, np.inf, interference)


def sinr_matrix(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    noise: float,
    alpha: float = 2.0,
) -> np.ndarray:
    """The full SINR matrix, shape ``(n_stations, n_points)``.

    Entry ``(i, j)`` is ``SINR(s_i, p_j)``.  At a point exactly occupied by a
    station the column is ``+inf`` for the first co-located station and
    ``0.0`` elsewhere (see the module docstring); everywhere else the values
    agree with the scalar :func:`repro.model.sinr.sinr_ratio`.
    """
    energies = energy_matrix(station_coordinates, powers, points, alpha)
    at_station = coincidence_matrix(station_coordinates, points)
    coincident_columns = at_station.any(axis=0)

    inf_energy = np.isinf(energies)
    finite = np.where(inf_energy, 0.0, energies)
    total = finite.sum(axis=0)[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        denominator = total - finite + noise
        ratio = np.where(denominator > 0.0, finite / denominator, np.inf)

    # Overflow-close stations: infinite signal dominates any interference.
    ratio = np.where(inf_energy, np.inf, ratio)
    # Finite-energy stations drowned by an overflow-close competitor hear 0.
    other_inf = (inf_energy.sum(axis=0)[None, :] - inf_energy.astype(int)) > 0
    ratio = np.where(other_inf & ~inf_energy, 0.0, ratio)

    if coincident_columns.any():
        # The first exactly co-located station owns the point; every other
        # station's SINR there is zero by the scalar convention.
        owner = np.argmax(at_station, axis=0)
        owner_mask = (
            np.arange(len(station_coordinates))[:, None] == owner[None, :]
        ) & coincident_columns[None, :]
        ratio = np.where(owner_mask, np.inf, ratio)
        ratio = np.where(coincident_columns[None, :] & ~owner_mask, 0.0, ratio)
    return ratio


def strongest_station(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    alpha: float = 2.0,
) -> np.ndarray:
    """Index of the station with the highest energy at each point, shape ``(m,)``.

    Ties resolve to the lowest station index, like the scalar
    :meth:`~repro.model.network.WirelessNetwork.strongest_station` loop.
    """
    energies = energy_matrix(station_coordinates, powers, points, alpha)
    return np.argmax(energies, axis=0)


def received_mask_matrix(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    noise: float,
    beta: float,
    alpha: float = 2.0,
) -> np.ndarray:
    """Reception indicators for every station at every point, shape ``(n, m)``.

    Entry ``(i, j)`` is True iff ``p_j`` lies in the reception zone of
    ``s_i`` under the scalar rule: the station's own location is always
    received, a point occupied by (only) other stations is not, and
    elsewhere ``SINR >= beta`` decides.
    """
    ratio = sinr_matrix(station_coordinates, powers, points, noise, alpha)
    return _mask_from_ratio(
        ratio, coincidence_matrix(station_coordinates, points), beta
    )


def received_mask_at(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    indices: np.ndarray,
    noise: float,
    beta: float,
    alpha: float = 2.0,
) -> np.ndarray:
    """Reception indicator of a *per-point* station, shape ``(m,)``.

    Entry ``j`` equals ``received_mask_matrix(...)[indices[j], j]``, but
    computed without materialising the other ``n - 1`` SINR rows: the energy
    matrix (needed for the interference total) is the only ``(n, m)`` pass.
    This is the verification kernel of the locator fast paths, where each
    point has exactly one candidate station to check.
    """
    energies = energy_matrix(station_coordinates, powers, points, alpha)
    at_station = coincidence_matrix(station_coordinates, points)
    coincident_columns = at_station.any(axis=0)
    columns = np.arange(len(points))

    inf_energy = np.isinf(energies)
    finite = np.where(inf_energy, 0.0, energies)
    total = finite.sum(axis=0)
    row_finite = finite[indices, columns]
    with np.errstate(divide="ignore", invalid="ignore"):
        denominator = total - row_finite + noise
        ratio = np.where(denominator > 0.0, row_finite / denominator, np.inf)
    row_inf = inf_energy[indices, columns]
    ratio = np.where(row_inf, np.inf, ratio)
    other_inf = (inf_energy.sum(axis=0) - row_inf.astype(int)) > 0
    ratio = np.where(other_inf & ~row_inf, 0.0, ratio)

    mask = ratio >= beta
    # A point occupied by stations is received exactly by the co-located
    # stations (the scalar is_received rule), co-located or not this one.
    return np.where(coincident_columns, at_station[indices, columns], mask)


def received_mask_row(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    index: int,
    noise: float,
    beta: float,
    alpha: float = 2.0,
) -> np.ndarray:
    """Reception indicators of one station at every point, shape ``(m,)``.

    Exactly row ``index`` of :func:`received_mask_matrix` — the constant-
    index special case of :func:`received_mask_at`, and the hot kernel of
    boundary probing, where thousands of points are tested against a single
    zone per bisection step.
    """
    indices = np.full(len(points), index, dtype=np.intp)
    return received_mask_at(
        station_coordinates, powers, points, indices, noise, beta, alpha
    )


def _mask_from_ratio(
    ratio: np.ndarray, at_station: np.ndarray, beta: float
) -> np.ndarray:
    """Reception mask from a precomputed SINR matrix and coincidence matrix."""
    mask = ratio >= beta
    coincident_columns = at_station.any(axis=0)
    if coincident_columns.any():
        # A point occupied by stations is received exactly by the co-located
        # stations: each hears its own location by definition, every other
        # station is drowned there (the scalar is_received rule).
        mask = np.where(coincident_columns[None, :], at_station, mask)
    return mask


def heard_station(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    points: np.ndarray,
    noise: float,
    beta: float,
    alpha: float = 2.0,
    no_reception: int = -1,
) -> np.ndarray:
    """Index of the station heard at each point, or ``no_reception``.

    For ``beta >= 1`` at most one station qualifies; for ``beta < 1`` several
    may, and the one with the highest SINR wins (first index on ties), exactly
    like :meth:`repro.model.diagram.SINRDiagram.station_heard_at`.
    """
    ratio = sinr_matrix(station_coordinates, powers, points, noise, alpha)
    mask = _mask_from_ratio(
        ratio, coincidence_matrix(station_coordinates, points), beta
    )
    any_received = mask.any(axis=0)
    best = np.argmax(np.where(mask, ratio, -np.inf), axis=0)
    return np.where(any_received, best, no_reception)
