"""The metrics hub: periodic snapshots of registered sources, fanned to sinks.

:class:`MetricsHub` is the observability spine of the serving stack.  Code
that owns interesting state registers a *source* — a zero-argument callable
returning a flat ``{metric_name: float}`` mapping (see
:mod:`repro.obs.sources` for adapters over the stock stats objects).  On
every tick the hub samples all sources into one immutable
:class:`MetricsRecord` and fans it out to every registered *sink* (anything
with an ``emit(record)`` method — :mod:`repro.obs.sinks` ships a ring
buffer, a JSONL writer and a log line; :mod:`repro.control` controllers are
sinks too, which is how observations become actuations).

The hub runs in either of two modes:

* **pull** — call :meth:`MetricsHub.collect` whenever a snapshot is wanted
  (tests, one-shot scripts, off-loop tooling);
* **periodic** — ``await hub.start()`` inside a running event loop spawns a
  ticker task that collects every ``interval`` seconds until
  ``await hub.stop()``, which drains one final record through the sinks (so
  the tail of a run is never lost) and flushes any sink exposing
  ``flush()``.

The hub is a :class:`~repro.runtime.Component`, so its lifecycle is the
unified one: started at most once, ``stop()`` is final (a stopped hub is
never restarted — build a fresh one), and collecting through a closed hub
raises :class:`~repro.exceptions.ObservabilityClosedError`.  Registration
methods (``add_source`` / ``remove_source`` / ``add_sink`` /
``remove_sink``) stay usable in every state: services withdraw their
sources from a shared hub during their own teardown, which may run after
the hub has stopped.

The periodic task splits each tick in two.  Source *sampling* runs inline
on the event loop: the stock sources read loop-owned state (the batcher's
stats are mutated only from the loop thread), so sampling off-thread would
race — and CPU-bound Python in an executor thread holds the GIL in
switch-interval slices, stalling the batcher's seal deadlines far longer
than the sample itself costs.  Sink *fan-out* runs on an executor thread:
sinks may write files, and one slow sink must not stall the loop
(reprolint RL003); the record they receive is immutable, so handing it
across threads is safe.  A source or sink that raises is skipped for that
tick and counted (``source_errors`` / ``sink_errors``); observability
failures never take down the service being observed.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..env import METRICS_INTERVAL, read_float_knob
from ..exceptions import ObservabilityClosedError, ObservabilityError
from ..runtime.component import Component

__all__ = ["MetricSource", "MetricsHub", "MetricsRecord"]

#: A source is any zero-argument callable returning ``{name: number}``.
MetricSource = Callable[[], Mapping[str, float]]


@dataclass(frozen=True)
class MetricsRecord:
    """One immutable snapshot of every registered source at a single tick.

    Attributes:
        sequence: 1-based tick counter, monotone per hub (survives
            restarts of the periodic task).
        timestamp: wall-clock seconds (``time.time()``) when sampling began.
        values: ``{source_name: {metric_name: float}}``.  Sources that
            raised during this tick are absent.
    """

    sequence: int
    timestamp: float
    values: Mapping[str, Mapping[str, float]]

    def source(self, name: str) -> Mapping[str, float]:
        """The metrics of one source, or raise if it did not report."""
        try:
            return self.values[name]
        except KeyError:
            raise ObservabilityError(
                f"no source {name!r} in this record (have: "
                f"{sorted(self.values)})"
            ) from None


class MetricsHub(Component):
    """Collects registered sources into records and fans them to sinks.

    Args:
        interval: seconds between periodic collections; defaults to the
            ``REPRO_METRICS_INTERVAL`` knob (0.25 s).  Only used by the
            periodic task — pull-mode ``collect()`` ignores it.
    """

    lifecycle_error = ObservabilityError
    closed_error = ObservabilityClosedError

    def __init__(self, interval: Optional[float] = None):
        if interval is None:
            interval = read_float_knob(METRICS_INTERVAL, 0.25)
        if not interval > 0.0:
            raise ObservabilityError(
                f"the metrics interval must be positive, got {interval}"
            )
        self.interval = float(interval)
        self._lock = threading.Lock()
        self._sources: Dict[str, MetricSource] = {}
        self._sinks: List[object] = []
        self._sequence = 0
        self._records = 0
        self._source_errors = 0
        self._sink_errors = 0
        self._task: Optional["asyncio.Task[None]"] = None
        self._wake: Optional[asyncio.Event] = None

    # -- registration ----------------------------------------------------
    def add_source(self, name: str, source: MetricSource) -> None:
        """Register ``source`` under ``name`` (unique per hub)."""
        if not callable(source):
            raise ObservabilityError(
                f"source {name!r} must be a zero-argument callable, got "
                f"{source!r}"
            )
        with self._lock:
            if name in self._sources:
                raise ObservabilityError(
                    f"a source named {name!r} is already registered (use "
                    f"unique_source_name to avoid collisions)"
                )
            self._sources[name] = source

    def unique_source_name(self, base: str) -> str:
        """``base`` if free, else the first free ``base-2``, ``base-3``, …"""
        with self._lock:
            if base not in self._sources:
                return base
            suffix = 2
            while f"{base}-{suffix}" in self._sources:
                suffix += 1
            return f"{base}-{suffix}"

    def remove_source(self, name: str) -> bool:
        """Deregister ``name``; ``False`` if it was not registered."""
        with self._lock:
            return self._sources.pop(name, None) is not None

    def add_sink(self, sink: object) -> None:
        """Register anything with an ``emit(record)`` method."""
        if not callable(getattr(sink, "emit", None)):
            raise ObservabilityError(
                f"a sink must expose an emit(record) method, got {sink!r}"
            )
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: object) -> bool:
        """Deregister ``sink``; ``False`` if it was not registered."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                return False
            return True

    def source_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._sources)

    # -- collection ------------------------------------------------------
    def collect(self) -> MetricsRecord:
        """Sample every source now and fan the record to every sink.

        Synchronous and thread-safe; pull-mode's entry point.  (The
        periodic task uses the same two halves, but samples on the loop
        and fans out on the executor — see the module docstring.)  Failing
        sources are omitted from the record, failing sinks skipped — each
        failure bumps the matching error counter instead of propagating.
        Raises :class:`~repro.exceptions.ObservabilityClosedError` once
        the hub has stopped (the final record is teardown's last word).
        """
        self._ensure_open()
        record = self._sample()
        self._fan_out(record)
        return record

    def _sample(self) -> MetricsRecord:
        """Read every source into one immutable record (no sink traffic)."""
        with self._lock:
            sources = list(self._sources.items())
            self._sequence += 1
            sequence = self._sequence
        started = time.time()
        values: Dict[str, Mapping[str, float]] = {}
        source_errors = 0
        for name, source in sources:
            try:
                sample = source()
                values[name] = {
                    str(key): float(value) for key, value in dict(sample).items()
                }
            except Exception:
                source_errors += 1
        with self._lock:
            self._records += 1
            self._source_errors += source_errors
        return MetricsRecord(sequence=sequence, timestamp=started, values=values)

    def _fan_out(self, record: MetricsRecord) -> None:
        """Emit ``record`` to every sink, isolating per-sink failures."""
        with self._lock:
            sinks = list(self._sinks)
        sink_errors = 0
        for sink in sinks:
            try:
                sink.emit(record)
            except Exception:
                sink_errors += 1
        if sink_errors:
            with self._lock:
                self._sink_errors += sink_errors

    # -- periodic mode (the Component lifecycle) -------------------------
    async def _do_start(self) -> None:
        """Spawn the periodic collector task on the running event loop."""
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def _do_stop(self, drain: bool) -> Optional[MetricsRecord]:
        """Stop the ticker, drain one final record, flush flushable sinks.

        :meth:`stop` returns the final record (``None`` when the hub never
        ran periodically — stopping a pull-mode hub just seals it).  The
        final record is collected even on an aborting stop: it is cheap,
        and losing the tail of a run is exactly what the drain exists to
        prevent.  Safe to call after the task died or was cancelled
        externally; a stopped hub stays stopped — build a fresh one.
        """
        task, wake = self._task, self._wake
        if task is None:
            return None
        # The Component state is already "stopping", which is what _run's
        # loop condition watches; the wake event just ends the tick sleep.
        if wake is not None:
            wake.set()
        try:
            await task
        except asyncio.CancelledError:
            if not task.cancelled():  # our own stop() was cancelled: re-raise
                raise
        finally:
            self._task = None
            self._wake = None
        record = self._sample()
        await asyncio.get_running_loop().run_in_executor(
            None, self._finish, record
        )
        return record

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        wake = self._wake
        while not self.closed:
            try:
                await asyncio.wait_for(wake.wait(), timeout=self.interval)
            except asyncio.TimeoutError:
                pass
            if self.closed:
                break
            wake.clear()
            record = self._sample()
            await loop.run_in_executor(None, self._fan_out, record)

    def _finish(self, record: MetricsRecord) -> None:
        """Fan out the final record, then flush every flushable sink."""
        self._fan_out(record)
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            flush = getattr(sink, "flush", None)
            if callable(flush):
                try:
                    flush()
                except Exception:
                    with self._lock:
                        self._sink_errors += 1

    # -- introspection ---------------------------------------------------
    @property
    def records(self) -> int:
        """Records collected so far (including failed-source ticks)."""
        with self._lock:
            return self._records

    @property
    def source_errors(self) -> int:
        """Source samplings that raised and were skipped."""
        with self._lock:
            return self._source_errors

    @property
    def sink_errors(self) -> int:
        """Sink emits (and final flushes) that raised and were skipped."""
        with self._lock:
            return self._sink_errors
