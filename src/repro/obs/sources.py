"""Source adapters over the stock stats objects of the serving stack.

Each factory wraps one stats-bearing object in a zero-argument callable
returning a flat ``{metric_name: float}`` mapping — the
:data:`~repro.obs.hub.MetricSource` shape :class:`~repro.obs.hub.MetricsHub`
collects.  The adapters duck-type their subjects (anything with the same
``snapshot()`` / ``stats()`` / counter surface works), so this module never
imports the service, raster or engine layers and cannot create an import
cycle with them.

Counter-valued metrics (submitted, hits, evictions, …) are cumulative; a
consumer wanting per-interval rates takes deltas between consecutive
records, which is exactly what the :mod:`repro.control` tuners do.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Mapping

__all__ = [
    "batcher_depth_source",
    "cache_stats_source",
    "query_service_source",
    "screen_stats_source",
    "service_stats_source",
]


def _flatten(snapshot: object) -> Dict[str, float]:
    """Numeric fields of a (possibly dataclass) snapshot as ``{name: float}``."""
    if dataclasses.is_dataclass(snapshot) and not isinstance(snapshot, type):
        fields = dataclasses.asdict(snapshot)
    elif isinstance(snapshot, Mapping):
        fields = dict(snapshot)
    else:
        fields = {
            name: getattr(snapshot, name)
            for name in dir(snapshot)
            if not name.startswith("_")
            and not callable(getattr(snapshot, name))
        }
    flat: Dict[str, float] = {}
    for name, value in fields.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        flat[str(name)] = float(value)
    return flat


def service_stats_source(stats: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a :class:`repro.service.ServiceStats` (or any object
    whose ``snapshot()`` returns a numeric dataclass)."""
    def sample() -> Dict[str, float]:
        return _flatten(stats.snapshot())

    return sample


def query_service_source(service: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a :class:`repro.service.QueryService`.

    The service snapshot's percentile/counter fields plus the live batcher
    gauges the controllers key off: ``queue_depth`` (unsealed entries),
    ``inflight_batches`` (sealed batches still executing — the congestion
    signal) and the current ``latency_budget``.
    """
    def sample() -> Dict[str, float]:
        flat = _flatten(service.stats_snapshot())
        batcher = getattr(service, "_batcher", None)
        if batcher is not None:
            flat["queue_depth"] = float(batcher.queue_depth)
            flat["inflight_batches"] = float(batcher.inflight_batches)
            flat["latency_budget"] = float(batcher.latency_budget)
        return flat

    return sample


def batcher_depth_source(batcher: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a bare :class:`repro.service.MicroBatcher`'s gauges."""
    def sample() -> Dict[str, float]:
        return {
            "queue_depth": float(batcher.queue_depth),
            "inflight_batches": float(batcher.inflight_batches),
            "latency_budget": float(batcher.latency_budget),
        }

    return sample


def cache_stats_source(cache: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a :class:`repro.raster.TileCache` (or anything whose
    ``stats()`` returns a :class:`~repro.raster.cache.CacheStats`-shaped
    snapshot), including the derived ``requests`` / ``hit_rate``."""
    def sample() -> Dict[str, float]:
        stats = cache.stats()
        flat = _flatten(stats)
        flat["requests"] = float(stats.requests)
        flat["hit_rate"] = float(stats.hit_rate)
        return flat

    return sample


def screen_stats_source(stats: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a mixed-precision :class:`repro.engine.ScreenStats`."""
    def sample() -> Dict[str, float]:
        return {
            "screened": float(stats.screened),
            "verified": float(stats.verified),
            "verify_fraction": float(stats.verify_fraction()),
        }

    return sample
