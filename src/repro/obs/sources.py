"""The one source adapter over every stats-bearing object in the stack.

:func:`stats_source` wraps any stats-bearing subject in a zero-argument
callable returning a flat ``{metric_name: float}`` mapping — the
:data:`~repro.obs.hub.MetricSource` shape :class:`~repro.obs.hub.MetricsHub`
collects.  One probe order covers every stock object:

1. a ``metrics_sample()`` method — the
   :class:`~repro.runtime.StatsSource` protocol; every first-party
   stats object (:class:`~repro.service.ServiceStats`, the batcher's
   gauges, :class:`~repro.raster.TileCache`, the mixed-precision screen
   counters) implements it, so this is the common path;
2. else the first of ``stats_snapshot()`` / ``snapshot()`` / ``stats()``
   is called and its result flattened — the duck-typed escape hatch that
   keeps third-party and test fakes working without implementing the
   protocol;
3. else the subject's own public numeric attributes are flattened.

After flattening, well-known derived quantities (``requests``,
``hit_rate``, ``verify_fraction``) found on the snapshot as properties or
zero-argument methods are added — dataclass flattening only sees fields,
and the control tuners key off exactly these rates.

The subject is duck-typed throughout, so this module never imports the
service, raster or engine layers and cannot create an import cycle with
them.  The historical per-type factories remain as thin wrappers over
:func:`stats_source` (plus, for :func:`query_service_source`, the live
batcher gauges for subjects predating the protocol).

Counter-valued metrics (submitted, hits, evictions, …) are cumulative; a
consumer wanting per-interval rates takes deltas between consecutive
records, which is exactly what the :mod:`repro.control` tuners do.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Mapping

__all__ = [
    "batcher_depth_source",
    "cache_stats_source",
    "query_service_source",
    "screen_stats_source",
    "service_stats_source",
    "stats_source",
]

#: Snapshot methods probed, most specific first, when the subject does not
#: implement ``metrics_sample`` itself.
_SNAPSHOT_METHODS = ("stats_snapshot", "snapshot", "stats")

#: Derived quantities added when the snapshot exposes them as properties
#: or zero-argument methods (dataclass flattening only sees fields).
_DERIVED = ("requests", "hit_rate", "verify_fraction")


def _flatten(snapshot: object) -> Dict[str, float]:
    """Numeric fields of a (possibly dataclass) snapshot as ``{name: float}``."""
    if dataclasses.is_dataclass(snapshot) and not isinstance(snapshot, type):
        fields = dataclasses.asdict(snapshot)
    elif isinstance(snapshot, Mapping):
        fields = dict(snapshot)
    else:
        fields = {
            name: getattr(snapshot, name)
            for name in dir(snapshot)
            if not name.startswith("_")
            and not callable(getattr(snapshot, name))
        }
    flat: Dict[str, float] = {}
    for name, value in fields.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        flat[str(name)] = float(value)
    return flat


def stats_source(subject: object) -> Callable[[], Dict[str, float]]:
    """Adapt any stats-bearing ``subject`` into a hub source.

    See the module docstring for the probe order.  The subject is probed
    afresh on every sample, so the callable always reflects the subject's
    live state.
    """

    def sample() -> Dict[str, float]:
        sampler = getattr(subject, "metrics_sample", None)
        if callable(sampler):
            return {
                str(name): float(value)
                for name, value in dict(sampler()).items()
            }
        snapshot = subject
        for method_name in _SNAPSHOT_METHODS:
            method = getattr(subject, method_name, None)
            if callable(method):
                snapshot = method()
                break
        flat = _flatten(snapshot)
        for name in _DERIVED:
            if name in flat:
                continue
            value = getattr(snapshot, name, None)
            if callable(value):
                try:
                    value = value()
                except TypeError:
                    continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            flat[name] = float(value)
        return flat

    return sample


def service_stats_source(stats: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a :class:`repro.service.ServiceStats` (or any object
    whose ``snapshot()`` returns a numeric dataclass)."""
    return stats_source(stats)


def query_service_source(service: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a :class:`repro.service.QueryService`.

    The service snapshot's percentile/counter fields plus the live batcher
    gauges the controllers key off: ``queue_depth`` (unsealed entries),
    ``inflight_batches`` (sealed batches still executing — the congestion
    signal) and the current ``latency_budget``.  The service's own
    ``metrics_sample`` already includes the gauges; the fallback below
    keeps subjects predating the protocol (a ``stats_snapshot()`` plus a
    ``_batcher``) reporting the same shape.
    """
    generic = stats_source(service)

    def sample() -> Dict[str, float]:
        flat = generic()
        batcher = getattr(service, "_batcher", None)
        if batcher is not None:
            flat.setdefault("queue_depth", float(batcher.queue_depth))
            flat.setdefault("inflight_batches", float(batcher.inflight_batches))
            flat.setdefault("latency_budget", float(batcher.latency_budget))
        return flat

    return sample


def batcher_depth_source(batcher: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a bare :class:`repro.service.MicroBatcher`'s gauges.

    Kept as an explicit three-gauge projection (not a generic probe): the
    contract is exactly these keys, whatever else the subject grows.
    """
    def sample() -> Dict[str, float]:
        return {
            "queue_depth": float(batcher.queue_depth),
            "inflight_batches": float(batcher.inflight_batches),
            "latency_budget": float(batcher.latency_budget),
        }

    return sample


def cache_stats_source(cache: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a :class:`repro.raster.TileCache` (or anything whose
    ``stats()`` returns a :class:`~repro.raster.cache.CacheStats`-shaped
    snapshot), including the derived ``requests`` / ``hit_rate``."""
    return stats_source(cache)


def screen_stats_source(stats: object) -> Callable[[], Dict[str, float]]:
    """Adapter over a mixed-precision :class:`repro.engine.ScreenStats`."""
    return stats_source(stats)
