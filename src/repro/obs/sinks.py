"""Stock metric sinks: ring buffer, JSONL file, log line.

A sink is anything with ``emit(record)``; these three cover the common
consumers.  :class:`MemorySink` keeps the last N records for tests and
in-process dashboards; :class:`JsonlSink` appends one JSON object per
record for offline analysis; :class:`LogSink` writes a one-line summary
through :mod:`logging`.  All are thread-safe — the hub emits from executor
threads, and pull-mode callers may collect from anywhere.

Closed-loop controllers (:mod:`repro.control`) implement the same ``emit``
protocol, so a controller registers with the hub exactly like a sink.
"""

from __future__ import annotations

import json
import logging
import math
import os
import threading
from collections import deque
from typing import Deque, Optional, Tuple

from ..exceptions import ObservabilityError
from .hub import MetricsRecord

__all__ = ["JsonlSink", "LogSink", "MemorySink"]


class MemorySink:
    """Keeps the most recent ``capacity`` records in a ring buffer."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ObservabilityError(
                f"the memory-sink capacity must be at least 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: Deque[MetricsRecord] = deque(maxlen=self.capacity)

    def emit(self, record: MetricsRecord) -> None:
        with self._lock:
            self._ring.append(record)

    def records(self) -> Tuple[MetricsRecord, ...]:
        """The retained records, oldest first."""
        with self._lock:
            return tuple(self._ring)

    def last(self) -> Optional[MetricsRecord]:
        """The most recent record, or ``None`` before the first emit."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class JsonlSink:
    """Appends one JSON object per record to a file (lazily opened).

    Non-finite metric values (``nan``, ``±inf`` — e.g. percentile fields
    before the first sample) are written as ``null`` so every line is
    strict JSON for any downstream parser.  Call :meth:`close` (or use the
    sink as a context manager) when done; the hub's ``stop()`` calls
    :meth:`flush` but never closes a sink it does not own.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._handle = None

    def emit(self, record: MetricsRecord) -> None:
        line = json.dumps(self._payload(record), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")

    @staticmethod
    def _payload(record: MetricsRecord) -> dict:
        return {
            "sequence": record.sequence,
            "timestamp": record.timestamp,
            "values": {
                source: {
                    name: (value if math.isfinite(value) else None)
                    for name, value in metrics.items()
                }
                for source, metrics in record.values.items()
            },
        }

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LogSink:
    """Writes one compact summary line per record through :mod:`logging`."""

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.INFO,
    ):
        self._logger = logger if logger is not None else logging.getLogger("repro.obs")
        self._level = level

    def emit(self, record: MetricsRecord) -> None:
        parts = []
        for source in sorted(record.values):
            metrics = record.values[source]
            rendered = ", ".join(
                f"{name}={metrics[name]:.6g}" for name in sorted(metrics)
            )
            parts.append(f"{source}[{rendered}]")
        self._logger.log(
            self._level,
            "metrics #%d @%.3f %s",
            record.sequence,
            record.timestamp,
            " ".join(parts) if parts else "(no sources)",
        )
