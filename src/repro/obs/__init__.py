"""Observability layer: a metrics hub, source adapters and stock sinks.

The hub (:class:`MetricsHub`) periodically samples registered *sources*
(zero-argument callables returning ``{metric: float}``) into immutable
:class:`MetricsRecord` snapshots and fans each one out to registered
*sinks* (anything with ``emit(record)``).  The generic
:func:`stats_source` adapter (and its historical per-type wrappers) lives
in :mod:`repro.obs.sources`; ring-buffer, JSONL and log sinks in
:mod:`repro.obs.sinks`.  The closed-loop controllers of
:mod:`repro.control` consume records through the same sink protocol.
"""

from .hub import MetricSource, MetricsHub, MetricsRecord
from .sinks import JsonlSink, LogSink, MemorySink
from .sources import (
    batcher_depth_source,
    cache_stats_source,
    query_service_source,
    screen_stats_source,
    service_stats_source,
    stats_source,
)

__all__ = [
    "JsonlSink",
    "LogSink",
    "MemorySink",
    "MetricSource",
    "MetricsHub",
    "MetricsRecord",
    "batcher_depth_source",
    "cache_stats_source",
    "query_service_source",
    "screen_stats_source",
    "service_stats_source",
    "stats_source",
]
