"""A 2-d tree for nearest-station queries.

The combined point-location structure of Theorem 3 first identifies the
station closest to the query point (Observation 2.2 guarantees this is the
only station that can possibly be heard there) and only then consults that
station's grid structure.  The paper uses a Voronoi diagram for this step;
any ``O(log n)`` nearest-neighbour structure works, and the library's default
front-end is this k-d tree (the Voronoi diagram of
:mod:`repro.geometry.voronoi` is also available and is used to verify
Observation 2.2 explicitly).

The implementation is a classic static 2-d tree built by median splitting,
giving ``O(n log n)`` construction and ``O(log n)`` expected query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import GeometryError
from .point import Point

__all__ = ["KDTree"]


@dataclass
class _Node:
    point: Point
    payload: int
    axis: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class KDTree:
    """Static k-d tree over a fixed set of points with integer payloads.

    Points are associated with their index in the input sequence, so a
    nearest-neighbour query returns ``(index, point, distance)``.
    """

    def __init__(self, points: Sequence[Point]):
        if not points:
            raise GeometryError("KDTree requires at least one point")
        self._size = len(points)
        items = [(point, index) for index, point in enumerate(points)]
        self._root = self._build(items, depth=0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(
        self, items: List[Tuple[Point, int]], depth: int
    ) -> Optional[_Node]:
        if not items:
            return None
        axis = depth % 2
        items.sort(key=lambda item: item[0][axis])
        median = len(items) // 2
        point, payload = items[median]
        node = _Node(point=point, payload=payload, axis=axis)
        node.left = self._build(items[:median], depth + 1)
        node.right = self._build(items[median + 1 :], depth + 1)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def nearest(self, query: Point) -> Tuple[int, Point, float]:
        """Return ``(index, point, distance)`` of the closest stored point."""
        best: List[Tuple[float, int, Point]] = [(float("inf"), -1, query)]

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            distance = node.point.distance_to(query)
            if distance < best[0][0]:
                best[0] = (distance, node.payload, node.point)
            axis_delta = query[node.axis] - node.point[node.axis]
            near, far = (node.left, node.right) if axis_delta < 0 else (node.right, node.left)
            visit(near)
            if abs(axis_delta) < best[0][0]:
                visit(far)

        visit(self._root)
        distance, payload, point = best[0]
        return payload, point, distance

    def nearest_index(self, query: Point) -> int:
        """Index of the closest stored point."""
        return self.nearest(query)[0]

    def within_radius(self, query: Point, radius: float) -> List[int]:
        """Indices of all stored points within ``radius`` of ``query``."""
        if radius < 0:
            raise GeometryError("radius must be non-negative")
        found: List[int] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            if node.point.distance_to(query) <= radius:
                found.append(node.payload)
            axis_delta = query[node.axis] - node.point[node.axis]
            near, far = (node.left, node.right) if axis_delta < 0 else (node.right, node.left)
            visit(near)
            if abs(axis_delta) <= radius:
                visit(far)

        visit(self._root)
        return sorted(found)
