"""Points and vectors in the Euclidean plane.

The paper works entirely in ``R^2`` (Section 2.1).  This module provides an
immutable :class:`Point` type used throughout the library for station
locations, query points and geometric constructions, together with the basic
vector operations needed by the rest of the geometry substrate.

The type is intentionally lightweight: a frozen dataclass of two floats with
value semantics, hashable so that points can be used as dictionary keys (e.g.
grid-cell corners memoised by the point-location preprocessing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from ..exceptions import GeometryError

__all__ = [
    "Point",
    "ORIGIN",
    "distance",
    "squared_distance",
    "midpoint",
    "centroid",
    "dot",
    "cross",
    "collinear",
    "orientation",
    "as_point",
]


@dataclass(frozen=True, slots=True)
class Point:
    """A point (equivalently, a vector) in the Euclidean plane ``R^2``."""

    x: float
    y: float

    # ------------------------------------------------------------------
    # Vector arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y)[index]

    def __len__(self) -> int:
        return 2

    # ------------------------------------------------------------------
    # Norms and distances
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """Euclidean length of the vector from the origin to this point."""
        return math.hypot(self.x, self.y)

    def squared_norm(self) -> float:
        """Squared Euclidean length (avoids the square root)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance ``dist(self, other)``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    # ------------------------------------------------------------------
    # Directions
    # ------------------------------------------------------------------
    def normalized(self) -> "Point":
        """Return the unit vector pointing in the same direction.

        Raises:
            ZeroDivisionError: if this is the zero vector.
        """
        length = self.norm()
        return Point(self.x / length, self.y / length)

    def perpendicular(self) -> "Point":
        """Return this vector rotated by +90 degrees (counter-clockwise)."""
        return Point(-self.y, self.x)

    def rotated(self, angle: float, about: "Point | None" = None) -> "Point":
        """Return this point rotated by ``angle`` radians about ``about``.

        ``about`` defaults to the origin.
        """
        pivot = about if about is not None else ORIGIN
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        dx = self.x - pivot.x
        dy = self.y - pivot.y
        return Point(
            pivot.x + cos_a * dx - sin_a * dy,
            pivot.y + sin_a * dx + cos_a * dy,
        )

    def angle(self) -> float:
        """Polar angle of the vector from the origin, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------
    def is_close(self, other: "Point", tolerance: float = 1e-9) -> bool:
        """Return True if both coordinates match within ``tolerance``."""
        return (
            abs(self.x - other.x) <= tolerance and abs(self.y - other.y) <= tolerance
        )

    def as_tuple(self) -> Tuple[float, float]:
        """Return the coordinates as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


ORIGIN = Point(0.0, 0.0)


def as_point(value: "Point | Sequence[float]") -> Point:
    """Coerce a :class:`Point` or any 2-sequence of floats into a :class:`Point`."""
    if isinstance(value, Point):
        return value
    x, y = value
    return Point(float(x), float(y))


def distance(p: "Point | Sequence[float]", q: "Point | Sequence[float]") -> float:
    """Euclidean distance between two points (accepts tuples)."""
    return as_point(p).distance_to(as_point(q))


def squared_distance(
    p: "Point | Sequence[float]", q: "Point | Sequence[float]"
) -> float:
    """Squared Euclidean distance between two points (accepts tuples)."""
    return as_point(p).squared_distance_to(as_point(q))


def midpoint(p: Point, q: Point) -> Point:
    """The midpoint of the segment ``p q``."""
    return Point((p.x + q.x) / 2.0, (p.y + q.y) / 2.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    total_x = 0.0
    total_y = 0.0
    count = 0
    for point in points:
        total_x += point.x
        total_y += point.y
        count += 1
    if count == 0:
        raise GeometryError("centroid() requires at least one point")
    return Point(total_x / count, total_y / count)


def dot(p: Point, q: Point) -> float:
    """Dot product of two vectors."""
    return p.x * q.x + p.y * q.y


def cross(p: Point, q: Point) -> float:
    """Z-component of the cross product of two vectors (signed area x2)."""
    return p.x * q.y - p.y * q.x


def orientation(a: Point, b: Point, c: Point) -> float:
    """Signed area of the parallelogram spanned by ``b - a`` and ``c - a``.

    Positive when ``a -> b -> c`` turns counter-clockwise, negative when it
    turns clockwise, and zero when the three points are collinear.
    """
    return cross(b - a, c - a)


def collinear(a: Point, b: Point, c: Point, tolerance: float = 1e-9) -> bool:
    """Return True if the three points lie on a common line (within tolerance)."""
    return abs(orientation(a, b, c)) <= tolerance
