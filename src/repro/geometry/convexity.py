"""Convexity and star-shape tests for zones.

The paper's structural results are about convexity (Theorem 1) and the weaker
star-shape property (Lemma 3.1).  Reception zones are given analytically (as
sub-level sets of the reception polynomial) rather than as polygons, so this
module supplies tests in three flavours:

* exact tests for point sets / polygons (used by the Voronoi substrate and by
  tests of the geometry layer itself);
* Lemma 2.1 style tests for *thick* zones given by a membership predicate: a
  thick set is convex iff every line meets its boundary at most twice — the
  empirical checker samples segments between random zone points;
* star-shape tests with respect to a designated centre (the station).

These checkers are deliberately *falsifiers*: they can prove non-convexity by
exhibiting a violating segment, and provide strong statistical evidence of
convexity, which is how we validate Theorem 1 numerically (the exact proof is
algebraic and lives in :mod:`repro.algebra`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..exceptions import GeometryError
from .point import Point
from .segment import Segment

__all__ = [
    "ConvexityReport",
    "is_convex_point_set",
    "check_zone_convexity",
    "check_zone_star_shape",
    "segment_membership_profile",
]

ZonePredicate = Callable[[Point], bool]


@dataclass(frozen=True, slots=True)
class ConvexityReport:
    """Outcome of an empirical convexity / star-shape check.

    ``is_consistent`` is True when no violation was found; a violation is a
    pair of points inside the zone with some intermediate point outside, and
    the first such witness is recorded in ``violation``.
    """

    is_consistent: bool
    segments_checked: int
    violation: Optional[Tuple[Point, Point, Point]] = None

    def __bool__(self) -> bool:
        return self.is_consistent


def is_convex_point_set(points: Sequence[Point], tolerance: float = 1e-9) -> bool:
    """Return True if the points are in convex position *as a polygon boundary*.

    The points are interpreted as an ordered polygon boundary (the usual
    output of a boundary trace); the test checks that all turns have a
    consistent orientation.
    """
    count = len(points)
    if count < 4:
        return True
    sign = 0
    for i in range(count):
        a, b, c = points[i], points[(i + 1) % count], points[(i + 2) % count]
        turn = (b.x - a.x) * (c.y - b.y) - (b.y - a.y) * (c.x - b.x)
        if abs(turn) <= tolerance:
            continue
        current = 1 if turn > 0 else -1
        if sign == 0:
            sign = current
        elif current != sign:
            return False
    return True


def segment_membership_profile(
    inside: ZonePredicate, segment: Segment, samples: int
) -> List[bool]:
    """Membership of ``samples`` evenly spaced points along ``segment``."""
    if samples < 2:
        raise GeometryError("segment_membership_profile() needs at least two samples")
    return [inside(point) for point in segment.sample(samples)]


def check_zone_convexity(
    inside: ZonePredicate,
    zone_points: Sequence[Point],
    samples_per_segment: int = 64,
    max_pairs: int = 2000,
    rng: Optional[random.Random] = None,
) -> ConvexityReport:
    """Check that segments between zone points stay inside the zone.

    Args:
        inside: membership predicate of the zone.
        zone_points: points known (or believed) to lie inside the zone; points
            for which ``inside`` is False are skipped.
        samples_per_segment: how many interior points of each segment to test.
        max_pairs: cap on the number of point pairs examined; pairs are chosen
            uniformly at random once the full quadratic number exceeds the cap.
        rng: source of randomness for pair subsampling (default: seeded).

    Returns:
        A :class:`ConvexityReport`; a recorded ``violation`` is a triple
        ``(p1, p2, q)`` with ``p1, p2`` in the zone and ``q`` on ``p1 p2``
        outside the zone.
    """
    member_points = [point for point in zone_points if inside(point)]
    if len(member_points) < 2:
        return ConvexityReport(is_consistent=True, segments_checked=0)

    rng = rng if rng is not None else random.Random(0x5157)
    pairs = _choose_pairs(len(member_points), max_pairs, rng)

    checked = 0
    for i, j in pairs:
        p1, p2 = member_points[i], member_points[j]
        segment = Segment(p1, p2)
        checked += 1
        for point in segment.sample(samples_per_segment):
            if not inside(point):
                return ConvexityReport(
                    is_consistent=False,
                    segments_checked=checked,
                    violation=(p1, p2, point),
                )
    return ConvexityReport(is_consistent=True, segments_checked=checked)


def check_zone_star_shape(
    inside: ZonePredicate,
    center: Point,
    zone_points: Sequence[Point],
    samples_per_segment: int = 64,
) -> ConvexityReport:
    """Check that the zone is star-shaped with respect to ``center``.

    Lemma 3.1 implies every reception zone is star-shaped with respect to its
    station.  The check draws the segment from ``center`` to every zone point
    and verifies all intermediate samples stay inside.
    """
    if not inside(center):
        raise GeometryError("center must belong to the zone for a star-shape check")
    checked = 0
    for target in zone_points:
        if not inside(target):
            continue
        segment = Segment(center, target)
        checked += 1
        for point in segment.sample(samples_per_segment):
            if not inside(point):
                return ConvexityReport(
                    is_consistent=False,
                    segments_checked=checked,
                    violation=(center, target, point),
                )
    return ConvexityReport(is_consistent=True, segments_checked=checked)


def _choose_pairs(
    count: int, max_pairs: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """All index pairs if few enough, otherwise a random sample of ``max_pairs``."""
    total = count * (count - 1) // 2
    if total <= max_pairs:
        return [(i, j) for i in range(count) for j in range(i + 1, count)]
    pairs = set()
    while len(pairs) < max_pairs:
        i = rng.randrange(count)
        j = rng.randrange(count)
        if i == j:
            continue
        pairs.add((min(i, j), max(i, j)))
    return sorted(pairs)
