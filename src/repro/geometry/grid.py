"""Gamma-spaced grids and 9-cells (Section 5.1 of the paper).

The point-location data structure ``QDS`` is built on a grid ``G_gamma`` of
spacing ``gamma`` aligned so that the station ``s`` is a grid vertex.  The
plane is partitioned into half-open cells; the *9-cell* of a cell ``C`` is the
3x3 block of cells centred at ``C``.  Boundary reconstruction walks along the
zone boundary cell by cell, so the grid exposes:

* point -> cell index conversion (with the paper's tie-breaking: a cell owns
  its south and west edges except the south-east and north-west corners, and
  owns its south-west corner);
* cell -> geometry conversion (corners, edges, centre);
* 9-cell enumeration and neighbour arithmetic.

Cells are identified by integer index pairs ``(col, row)``; the cell
``(0, 0)`` has the alignment point ``origin`` as its south-west corner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..exceptions import GeometryError
from .point import Point
from .segment import Segment

__all__ = ["Grid", "GridCell"]

CellIndex = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class GridCell:
    """One cell of a :class:`Grid`, identified by ``(col, row)``."""

    col: int
    row: int
    lower_left: Point
    spacing: float

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def upper_right(self) -> Point:
        return Point(self.lower_left.x + self.spacing, self.lower_left.y + self.spacing)

    @property
    def center(self) -> Point:
        half = self.spacing / 2.0
        return Point(self.lower_left.x + half, self.lower_left.y + half)

    def corners(self) -> List[Point]:
        """The four corners in counter-clockwise order starting from south-west."""
        x0, y0 = self.lower_left.x, self.lower_left.y
        s = self.spacing
        return [
            Point(x0, y0),
            Point(x0 + s, y0),
            Point(x0 + s, y0 + s),
            Point(x0, y0 + s),
        ]

    def edges(self) -> List[Segment]:
        """The four boundary edges (south, east, north, west)."""
        sw, se, ne, nw = self.corners()
        return [Segment(sw, se), Segment(se, ne), Segment(ne, nw), Segment(nw, sw)]

    def contains(self, point: Point) -> bool:
        """Membership with the paper's half-open tie-breaking.

        A cell contains all points of its south edge except the south-east
        corner, all points of its west edge except the north-west corner, and
        its south-west corner; it does not contain its north or east edges.
        """
        x0, y0 = self.lower_left.x, self.lower_left.y
        x1, y1 = x0 + self.spacing, y0 + self.spacing
        return x0 <= point.x < x1 and y0 <= point.y < y1

    @property
    def index(self) -> CellIndex:
        return (self.col, self.row)


@dataclass(frozen=True, slots=True)
class Grid:
    """A gamma-spaced grid aligned so that ``origin`` is a grid vertex."""

    origin: Point
    spacing: float

    def __post_init__(self) -> None:
        if self.spacing <= 0.0:
            raise GeometryError(f"grid spacing must be positive, got {self.spacing}")

    # ------------------------------------------------------------------
    # Point <-> cell conversions
    # ------------------------------------------------------------------
    def cell_index_of(self, point: Point) -> CellIndex:
        """Index of the cell containing ``point`` (half-open tie-breaking)."""
        col = math.floor((point.x - self.origin.x) / self.spacing)
        row = math.floor((point.y - self.origin.y) / self.spacing)
        # Guard against floating-point drift right at a cell boundary: ensure
        # the computed cell actually contains the point under the half-open rule.
        cell = self.cell(col, row)
        if point.x >= cell.upper_right.x:
            col += 1
        elif point.x < cell.lower_left.x:
            col -= 1
        if point.y >= cell.upper_right.y:
            row += 1
        elif point.y < cell.lower_left.y:
            row -= 1
        return (col, row)

    def cell_indices_of(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`cell_index_of`: ``(cols, rows)`` int arrays.

        Args:
            points: float array of shape ``(m, 2)``.

        Applies the same floating-point drift guard as the scalar method (the
        computed cell must actually contain the point under the half-open
        rule), so the answers agree exactly.
        """
        xs = points[:, 0]
        ys = points[:, 1]
        cols = np.floor((xs - self.origin.x) / self.spacing).astype(np.int64)
        rows = np.floor((ys - self.origin.y) / self.spacing).astype(np.int64)
        lower_x = self.origin.x + cols * self.spacing
        lower_y = self.origin.y + rows * self.spacing
        cols += xs >= lower_x + self.spacing
        cols -= xs < lower_x
        rows += ys >= lower_y + self.spacing
        rows -= ys < lower_y
        return cols, rows

    def cell(self, col: int, row: int) -> GridCell:
        """The cell with the given integer index."""
        lower_left = Point(
            self.origin.x + col * self.spacing,
            self.origin.y + row * self.spacing,
        )
        return GridCell(col=col, row=row, lower_left=lower_left, spacing=self.spacing)

    def cell_of(self, point: Point) -> GridCell:
        """The cell containing ``point``."""
        col, row = self.cell_index_of(point)
        return self.cell(col, row)

    def vertex(self, col: int, row: int) -> Point:
        """The grid vertex at integer coordinates ``(col, row)``."""
        return Point(
            self.origin.x + col * self.spacing,
            self.origin.y + row * self.spacing,
        )

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def nine_cell(self, index: CellIndex) -> List[CellIndex]:
        """The 3x3 block of cell indices centred at ``index`` (the 9-cell)."""
        col, row = index
        return [
            (col + dc, row + dr)
            for dr in (-1, 0, 1)
            for dc in (-1, 0, 1)
        ]

    def neighbours(self, index: CellIndex, diagonal: bool = True) -> List[CellIndex]:
        """Neighbouring cell indices (8-connected by default, 4-connected otherwise)."""
        col, row = index
        if diagonal:
            return [cell for cell in self.nine_cell(index) if cell != index]
        return [(col + 1, row), (col - 1, row), (col, row + 1), (col, row - 1)]

    def nine_cell_boundary_edges(self, index: CellIndex) -> List[Segment]:
        """The 12 grid edges forming the outer boundary of the 9-cell of ``index``.

        These are the edges a curve must cross when it leaves the 9-cell,
        which is exactly what the Boundary Reconstruction Process tests.
        """
        col, row = index
        lower_left = self.vertex(col - 1, row - 1)
        size = 3 * self.spacing
        edges: List[Segment] = []
        for i in range(3):
            # South boundary.
            edges.append(
                Segment(
                    Point(lower_left.x + i * self.spacing, lower_left.y),
                    Point(lower_left.x + (i + 1) * self.spacing, lower_left.y),
                )
            )
            # North boundary.
            edges.append(
                Segment(
                    Point(lower_left.x + i * self.spacing, lower_left.y + size),
                    Point(lower_left.x + (i + 1) * self.spacing, lower_left.y + size),
                )
            )
            # West boundary.
            edges.append(
                Segment(
                    Point(lower_left.x, lower_left.y + i * self.spacing),
                    Point(lower_left.x, lower_left.y + (i + 1) * self.spacing),
                )
            )
            # East boundary.
            edges.append(
                Segment(
                    Point(lower_left.x + size, lower_left.y + i * self.spacing),
                    Point(lower_left.x + size, lower_left.y + (i + 1) * self.spacing),
                )
            )
        return edges

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def cells_in_box(
        self, lower_left: Point, upper_right: Point
    ) -> Iterator[GridCell]:
        """All cells whose interior intersects the axis-aligned box."""
        if upper_right.x <= lower_left.x or upper_right.y <= lower_left.y:
            return
        min_col, min_row = self.cell_index_of(lower_left)
        max_col, max_row = self.cell_index_of(
            Point(upper_right.x - 1e-15, upper_right.y - 1e-15)
        )
        for row in range(min_row, max_row + 1):
            for col in range(min_col, max_col + 1):
                yield self.cell(col, row)

    def cell_area(self) -> float:
        """Area of a single grid cell, ``gamma^2``."""
        return self.spacing * self.spacing
