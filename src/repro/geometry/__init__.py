"""Planar-geometry substrate for the SINR-diagram library.

Everything the paper needs from computational geometry is implemented here
from scratch: points and vectors, balls, segments and lines (including the
separation line of two points), similarity transforms realising Lemma 2.3,
polygons with half-plane clipping, convexity / star-shape checkers, fatness
measurement, gamma-spaced grids with 9-cells, a k-d tree, and a Voronoi
diagram by half-plane intersection.
"""

from .ball import Ball, circle_intersection_points
from .convexity import (
    ConvexityReport,
    check_zone_convexity,
    check_zone_star_shape,
    is_convex_point_set,
    segment_membership_profile,
)
from .fatness import (
    FatnessMeasurement,
    fatness_of_polygon,
    fatness_of_predicate,
    theoretical_fatness_bound,
)
from .grid import Grid, GridCell
from .kdtree import KDTree
from .point import (
    ORIGIN,
    Point,
    as_point,
    centroid,
    collinear,
    cross,
    distance,
    dot,
    midpoint,
    orientation,
    squared_distance,
)
from .polygon import Polygon, convex_hull
from .segment import Line, Segment, separation_line
from .transform import SimilarityTransform
from .voronoi import VoronoiCell, VoronoiDiagram

__all__ = [
    "Ball",
    "ConvexityReport",
    "FatnessMeasurement",
    "Grid",
    "GridCell",
    "KDTree",
    "Line",
    "ORIGIN",
    "Point",
    "Polygon",
    "Segment",
    "SimilarityTransform",
    "VoronoiCell",
    "VoronoiDiagram",
    "as_point",
    "centroid",
    "check_zone_convexity",
    "check_zone_star_shape",
    "circle_intersection_points",
    "collinear",
    "convex_hull",
    "cross",
    "distance",
    "dot",
    "fatness_of_polygon",
    "fatness_of_predicate",
    "is_convex_point_set",
    "midpoint",
    "orientation",
    "segment_membership_profile",
    "separation_line",
    "squared_distance",
    "theoretical_fatness_bound",
]
