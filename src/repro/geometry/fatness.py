"""Fatness of planar zones (Section 2.1 and Figure 7 of the paper).

For a bounded zone ``Z`` and an internal point ``p`` the paper defines

* ``delta(p, Z)`` — the radius of the largest ball centred at ``p`` that is
  fully contained in ``Z``;
* ``Delta(p, Z)`` — the radius of the smallest ball centred at ``p`` that
  fully contains ``Z``;
* the fatness parameter ``phi(p, Z) = Delta(p, Z) / delta(p, Z)``.

``Z`` is *fat* with respect to ``p`` when ``phi(p, Z)`` is bounded by a
constant.  Theorem 2 shows reception zones of uniform-power networks are fat
with ``phi <= (sqrt(beta) + 1) / (sqrt(beta) - 1)``.

Zones in this library are usually given either as a membership predicate (the
SINR reception test) or as a polygon approximating the boundary, so this
module provides fatness measurement for both representations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..exceptions import GeometryError
from .point import Point
from .polygon import Polygon

__all__ = [
    "FatnessMeasurement",
    "fatness_of_polygon",
    "fatness_of_predicate",
    "theoretical_fatness_bound",
]

ZonePredicate = Callable[[Point], bool]


@dataclass(frozen=True, slots=True)
class FatnessMeasurement:
    """The inscribed radius, enclosing radius and their ratio for a zone."""

    center: Point
    delta: float
    Delta: float

    @property
    def fatness(self) -> float:
        """The fatness parameter ``phi = Delta / delta``."""
        if self.delta <= 0.0:
            return math.inf
        return self.Delta / self.delta

    def satisfies_bound(self, bound: float, slack: float = 1e-9) -> bool:
        """Return True if ``phi <= bound`` up to a relative ``slack``."""
        return self.fatness <= bound * (1.0 + slack)


def theoretical_fatness_bound(beta: float) -> float:
    """The paper's fatness bound ``(sqrt(beta) + 1) / (sqrt(beta) - 1)``.

    Only meaningful for ``beta > 1`` (Theorem 4.2); raises for smaller values.
    """
    if beta <= 1.0:
        raise GeometryError("the fatness bound of Theorem 4.2 requires beta > 1")
    root = math.sqrt(beta)
    return (root + 1.0) / (root - 1.0)


def fatness_of_polygon(polygon: Polygon, center: Point) -> FatnessMeasurement:
    """Measure fatness of a polygonal zone with respect to an internal point.

    ``delta`` is the distance from ``center`` to the nearest boundary edge and
    ``Delta`` the distance to the farthest vertex.  For convex polygons that
    contain ``center`` these are exactly the paper's quantities.
    """
    if not polygon.contains(center):
        raise GeometryError("fatness is only defined for an internal point of the zone")
    delta = min(edge.distance_to_point(center) for edge in polygon.edges())
    big_delta = max(center.distance_to(vertex) for vertex in polygon.vertices)
    return FatnessMeasurement(center=center, delta=delta, Delta=big_delta)


def fatness_of_predicate(
    inside: ZonePredicate,
    center: Point,
    max_radius: float,
    angles: int = 360,
    radial_tolerance: float = 1e-6,
) -> FatnessMeasurement:
    """Measure fatness of a zone given only by a membership predicate.

    The zone is assumed to be star-shaped with respect to ``center`` (true for
    SINR reception zones by Lemma 3.1), so along each ray from ``center`` the
    zone is an interval ``[0, r(theta)]``.  The boundary distance ``r(theta)``
    is located by bisection between 0 and ``max_radius`` on ``angles`` equally
    spaced rays; ``delta`` / ``Delta`` are the min / max over the rays.

    Args:
        inside: membership predicate of the zone.
        center: an internal point (typically the station location).
        max_radius: a radius known to be outside the zone in every direction.
        angles: number of rays used in the sweep.
        radial_tolerance: bisection stopping tolerance (absolute distance).
    """
    if angles < 4:
        raise GeometryError("fatness_of_predicate() needs at least four rays")
    if not inside(center):
        raise GeometryError("center must belong to the zone")

    radii = []
    for index in range(angles):
        theta = 2.0 * math.pi * index / angles
        direction = Point(math.cos(theta), math.sin(theta))
        radii.append(
            _boundary_distance_along_ray(
                inside, center, direction, max_radius, radial_tolerance
            )
        )
    return FatnessMeasurement(center=center, delta=min(radii), Delta=max(radii))


def _boundary_distance_along_ray(
    inside: ZonePredicate,
    center: Point,
    direction: Point,
    max_radius: float,
    tolerance: float,
) -> float:
    """Distance from ``center`` to the zone boundary along ``direction``.

    Assumes the zone restricted to the ray is an interval starting at the
    centre, i.e. the zone is star-shaped with respect to ``center``.
    """
    low = 0.0
    high = max_radius
    if inside(center + direction * max_radius):
        # The zone is not bounded by max_radius in this direction; report the cap.
        return max_radius
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if inside(center + direction * mid):
            low = mid
        else:
            high = mid
    return (low + high) / 2.0
