"""Voronoi diagrams by half-plane intersection.

Observation 2.2 of the paper: in a non-trivial uniform-power network, the
reception zone ``H_i`` of station ``s_i`` is strictly contained in the Voronoi
cell of ``s_i``.  The point-location structure of Theorem 3 exploits this by
first locating the query point's Voronoi cell (i.e. its nearest station) and
then consulting only that station's grid structure.

The diagram here is computed per cell by intersecting half-planes: the cell of
site ``s_i`` is the intersection, over all ``j != i``, of the half-plane on
``s_i``'s side of the separation line of ``s_i`` and ``s_j``, clipped to a
bounding box so that unbounded cells become finite polygons.  This is
``O(n^2)`` overall — more than enough for the network sizes the paper's
figures use, and independent of any external geometry package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import GeometryError
from .point import Point
from .polygon import Polygon
from .segment import separation_line

__all__ = ["VoronoiCell", "VoronoiDiagram"]


@dataclass(frozen=True, slots=True)
class VoronoiCell:
    """The Voronoi cell of one site, clipped to the diagram's bounding box."""

    site_index: int
    site: Point
    polygon: Optional[Polygon]

    def contains(self, point: Point, tolerance: float = 1e-9) -> bool:
        """Return True if ``point`` belongs to this (clipped) cell."""
        if self.polygon is None:
            return False
        return self.polygon.contains(point, tolerance=tolerance)


class VoronoiDiagram:
    """The Voronoi diagram of a finite set of distinct sites.

    Args:
        sites: the site locations; duplicates are rejected because the cell of
            a duplicated site is empty and nearest-site queries become
            ambiguous.
        bounding_margin: the clipping box extends this factor times the span
            of the sites beyond their bounding box (at least 1.0 length unit).
    """

    def __init__(self, sites: Sequence[Point], bounding_margin: float = 2.0):
        if len(sites) < 1:
            raise GeometryError("VoronoiDiagram requires at least one site")
        seen: Dict[Tuple[float, float], int] = {}
        for index, site in enumerate(sites):
            key = (site.x, site.y)
            if key in seen:
                raise GeometryError(
                    f"duplicate site at {site} (indices {seen[key]} and {index})"
                )
            seen[key] = index
        self._sites = list(sites)
        self._box = self._bounding_box(bounding_margin)
        self._cells = [self._build_cell(i) for i in range(len(self._sites))]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _bounding_box(self, margin: float) -> Polygon:
        xs = [site.x for site in self._sites]
        ys = [site.y for site in self._sites]
        span = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
        pad = margin * span
        return Polygon.axis_aligned_box(
            Point(min(xs) - pad, min(ys) - pad),
            Point(max(xs) + pad, max(ys) + pad),
        )

    def _build_cell(self, index: int) -> VoronoiCell:
        site = self._sites[index]
        cell: Optional[Polygon] = self._box
        for other_index, other in enumerate(self._sites):
            if other_index == index or cell is None:
                continue
            bisector = separation_line(site, other)
            keep_side = bisector.side(site)
            if keep_side == 0:
                # The site lies on its own bisector only if the two sites
                # coincide, which is excluded by construction.
                continue
            cell = cell.clip_to_half_plane(bisector, keep_side=keep_side)
        return VoronoiCell(site_index=index, site=site, polygon=cell)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def sites(self) -> List[Point]:
        return list(self._sites)

    @property
    def cells(self) -> List[VoronoiCell]:
        return list(self._cells)

    def cell(self, index: int) -> VoronoiCell:
        return self._cells[index]

    def __len__(self) -> int:
        return len(self._sites)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_site(self, point: Point) -> int:
        """Index of the site whose cell contains ``point`` (nearest site)."""
        best_index = 0
        best_distance = self._sites[0].squared_distance_to(point)
        for index in range(1, len(self._sites)):
            distance = self._sites[index].squared_distance_to(point)
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return best_index

    def locate(self, point: Point) -> VoronoiCell:
        """The cell containing ``point``."""
        return self._cells[self.nearest_site(point)]
