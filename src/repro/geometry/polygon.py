"""Simple polygons: area, perimeter, containment, convex hull and clipping.

Reception zones of the SINR model are not polygons, but the library
approximates them by polygons in several places:

* the empirical convexity / fatness checkers (``repro.analysis``) extract a
  polygonal boundary from a raster or ray sweep and measure it;
* the Voronoi diagram (Observation 2.2) represents each cell as a convex
  polygon obtained by half-plane intersection;
* diagram export traces the zone boundary into a polygon for plotting.

The polygon is stored as an ordered list of vertices; edges connect
consecutive vertices and the last vertex connects back to the first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import GeometryError
from .point import Point, cross, orientation
from .segment import Line, Segment

__all__ = ["Polygon", "convex_hull"]


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Andrew's monotone-chain convex hull.

    Returns the hull vertices in counter-clockwise order without repeating the
    first vertex.  Collinear points on the hull boundary are discarded.  For
    fewer than three distinct points the distinct points are returned as-is.
    """
    unique = sorted(set((p.x, p.y) for p in points))
    if len(unique) <= 2:
        return [Point(x, y) for x, y in unique]

    def half_hull(sequence: Iterable[Tuple[float, float]]) -> List[Point]:
        hull: List[Point] = []
        for x, y in sequence:
            candidate = Point(x, y)
            while (
                len(hull) >= 2
                and orientation(hull[-2], hull[-1], candidate) <= 0.0
            ):
                hull.pop()
            hull.append(candidate)
        return hull

    lower = half_hull(unique)
    upper = half_hull(reversed(unique))
    return lower[:-1] + upper[:-1]


@dataclass(frozen=True)
class Polygon:
    """A simple polygon given by its vertices in order (either orientation)."""

    vertices: Tuple[Point, ...]

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise GeometryError("a polygon needs at least three vertices")
        object.__setattr__(self, "vertices", tuple(vertices))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vertices)

    def edges(self) -> List[Segment]:
        """The boundary edges, in vertex order."""
        count = len(self.vertices)
        return [
            Segment(self.vertices[i], self.vertices[(i + 1) % count])
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def signed_area(self) -> float:
        """Signed area (positive for counter-clockwise vertex order)."""
        total = 0.0
        count = len(self.vertices)
        for i in range(count):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % count]
            total += p.x * q.y - q.x * p.y
        return total / 2.0

    def area(self) -> float:
        """Absolute area of the polygon."""
        return abs(self.signed_area())

    def perimeter(self) -> float:
        """Total length of the boundary."""
        return sum(edge.length() for edge in self.edges())

    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        signed = self.signed_area()
        if signed == 0.0:
            # Degenerate polygon: fall back to the vertex average.
            total_x = sum(v.x for v in self.vertices)
            total_y = sum(v.y for v in self.vertices)
            return Point(total_x / len(self.vertices), total_y / len(self.vertices))
        cx = 0.0
        cy = 0.0
        count = len(self.vertices)
        for i in range(count):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % count]
            factor = p.x * q.y - q.x * p.y
            cx += (p.x + q.x) * factor
            cy += (p.y + q.y) * factor
        return Point(cx / (6.0 * signed), cy / (6.0 * signed))

    def bounding_box(self) -> Tuple[Point, Point]:
        """Axis-aligned bounding box as ``(lower_left, upper_right)``."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Point(min(xs), min(ys)), Point(max(xs), max(ys))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: Point, tolerance: float = 1e-12) -> bool:
        """Point-in-polygon test (boundary counts as inside)."""
        for edge in self.edges():
            if edge.contains(point, tolerance=max(tolerance, 1e-9)):
                return True
        inside = False
        count = len(self.vertices)
        j = count - 1
        for i in range(count):
            vi = self.vertices[i]
            vj = self.vertices[j]
            intersects = (vi.y > point.y) != (vj.y > point.y)
            if intersects:
                x_cross = (vj.x - vi.x) * (point.y - vi.y) / (vj.y - vi.y) + vi.x
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def is_convex(self, tolerance: float = 1e-9) -> bool:
        """Return True if the polygon is convex (allowing collinear vertices)."""
        count = len(self.vertices)
        sign = 0
        for i in range(count):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % count]
            c = self.vertices[(i + 2) % count]
            turn = orientation(a, b, c)
            if abs(turn) <= tolerance:
                continue
            current = 1 if turn > 0 else -1
            if sign == 0:
                sign = current
            elif sign != current:
                return False
        return True

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def clip_to_half_plane(
        self, line: Line, keep_side: int = -1, tolerance: float = 1e-12
    ) -> Optional["Polygon"]:
        """Sutherland–Hodgman clipping against one half-plane.

        Keeps the part of the polygon on the side of ``line`` whose sign
        matches ``keep_side`` (the boundary is always kept).  Returns ``None``
        when the intersection is empty or degenerate.
        """
        if keep_side not in (-1, 1):
            raise GeometryError("keep_side must be +1 or -1")

        def is_kept(point: Point) -> bool:
            return keep_side * line.signed_distance(point) >= -tolerance

        result: List[Point] = []
        count = len(self.vertices)
        for i in range(count):
            current = self.vertices[i]
            following = self.vertices[(i + 1) % count]
            current_in = is_kept(current)
            following_in = is_kept(following)
            if current_in:
                result.append(current)
            if current_in != following_in:
                crossing = _line_segment_crossing(line, current, following)
                if crossing is not None:
                    result.append(crossing)
        # Remove consecutive duplicates introduced by tangential clips.
        cleaned: List[Point] = []
        for vertex in result:
            if not cleaned or not cleaned[-1].is_close(vertex, tolerance=1e-12):
                cleaned.append(vertex)
        if len(cleaned) >= 2 and cleaned[0].is_close(cleaned[-1], tolerance=1e-12):
            cleaned.pop()
        if len(cleaned) < 3:
            return None
        return Polygon(cleaned)

    @staticmethod
    def regular(center: Point, radius: float, sides: int) -> "Polygon":
        """A regular polygon approximating the ball ``B(center, radius)``."""
        if sides < 3:
            raise GeometryError("a regular polygon needs at least three sides")
        step = 2.0 * math.pi / sides
        return Polygon(
            [
                Point(
                    center.x + radius * math.cos(i * step),
                    center.y + radius * math.sin(i * step),
                )
                for i in range(sides)
            ]
        )

    @staticmethod
    def axis_aligned_box(lower_left: Point, upper_right: Point) -> "Polygon":
        """The axis-aligned rectangle with the given opposite corners."""
        if upper_right.x <= lower_left.x or upper_right.y <= lower_left.y:
            raise GeometryError("axis_aligned_box() requires a non-empty box")
        return Polygon(
            [
                lower_left,
                Point(upper_right.x, lower_left.y),
                upper_right,
                Point(lower_left.x, upper_right.y),
            ]
        )


def _line_segment_crossing(line: Line, start: Point, end: Point) -> Optional[Point]:
    """Intersection of an infinite line with the segment ``start end``."""
    d_start = line.signed_distance(start)
    d_end = line.signed_distance(end)
    denominator = d_start - d_end
    if denominator == 0.0:
        return None
    t = d_start / denominator
    if t < 0.0 or t > 1.0:
        return None
    return Point(
        start.x + t * (end.x - start.x),
        start.y + t * (end.y - start.y),
    )
