"""Closed balls (disks) in the plane.

A ball ``B(p, r)`` is the set of all points at distance at most ``r`` from
``p`` (Section 2.1 of the paper).  Balls appear throughout the analysis:

* the fatness parameter is defined through the largest inscribed and the
  smallest enclosing ball centred at a station (Section 2.1, Figure 7);
* the convexity proof with background noise replaces the noise by a station
  placed on the intersection of two balls of radius ``1/sqrt(N)``
  (Section 3.4, Figure 13);
* Lemma 3.10 places the merged station on the intersection of the circles
  ``∂B_1`` and ``∂B_2``.

This module therefore provides containment predicates and the circle-circle
intersection used by those constructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..exceptions import GeometryError
from .point import Point

__all__ = ["Ball", "circle_intersection_points"]


@dataclass(frozen=True, slots=True)
class Ball:
    """The closed ball ``B(center, radius)``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"ball radius must be non-negative, got {self.radius}")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: Point, tolerance: float = 0.0) -> bool:
        """Return True if ``point`` lies in the closed ball (within tolerance)."""
        return self.center.distance_to(point) <= self.radius + tolerance

    def strictly_contains(self, point: Point, tolerance: float = 0.0) -> bool:
        """Return True if ``point`` lies in the open ball."""
        return self.center.distance_to(point) < self.radius - tolerance

    def on_boundary(self, point: Point, tolerance: float = 1e-9) -> bool:
        """Return True if ``point`` lies on the bounding circle."""
        return abs(self.center.distance_to(point) - self.radius) <= tolerance

    def contains_ball(self, other: "Ball", tolerance: float = 0.0) -> bool:
        """Return True if ``other`` is contained in this ball."""
        return (
            self.center.distance_to(other.center) + other.radius
            <= self.radius + tolerance
        )

    def intersects_ball(self, other: "Ball", tolerance: float = 0.0) -> bool:
        """Return True if the two closed balls share at least one point."""
        return (
            self.center.distance_to(other.center)
            <= self.radius + other.radius + tolerance
        )

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Area of the ball, ``pi * r^2``."""
        return math.pi * self.radius * self.radius

    def perimeter(self) -> float:
        """Perimeter of the ball, ``2 * pi * r``."""
        return 2.0 * math.pi * self.radius

    def boundary_point(self, angle: float) -> Point:
        """The boundary point at polar angle ``angle`` (radians)."""
        return Point(
            self.center.x + self.radius * math.cos(angle),
            self.center.y + self.radius * math.sin(angle),
        )

    def sample_boundary(self, count: int) -> List[Point]:
        """Return ``count`` points equally spaced along the bounding circle."""
        if count <= 0:
            raise GeometryError("sample_boundary() requires a positive count")
        step = 2.0 * math.pi / count
        return [self.boundary_point(i * step) for i in range(count)]


def circle_intersection_points(first: Ball, second: Ball) -> List[Point]:
    """Intersection points of the boundary circles of two balls.

    Returns zero, one (tangency) or two points.  Used by the constructions of
    Lemma 3.10 and Section 3.4 where a replacement station is located on an
    intersection point of two circles.

    Raises:
        GeometryError: if the two circles are identical (infinitely many
            intersection points).
    """
    d = first.center.distance_to(second.center)
    r1 = first.radius
    r2 = second.radius

    if d == 0.0 and r1 == r2:
        raise GeometryError("identical circles intersect in infinitely many points")
    if d > r1 + r2 or d < abs(r1 - r2):
        return []

    # Distance from the first centre to the radical line along the centre line.
    a = (d * d + r1 * r1 - r2 * r2) / (2.0 * d)
    h_squared = r1 * r1 - a * a
    # Guard against tiny negative values produced by floating-point rounding.
    h = math.sqrt(max(h_squared, 0.0))

    direction = (second.center - first.center) / d
    base = first.center + direction * a
    offset = direction.perpendicular() * h

    if h <= 1e-15:
        return [base]
    return [base + offset, base - offset]
