"""Similarity transforms of the plane (rotation, translation, uniform scaling).

Lemma 2.3 of the paper states that applying such a mapping ``f`` (with scale
factor ``sigma``) to a network and dividing the background noise by
``sigma^2`` leaves every SINR value unchanged:

    SINR_A(s_i, p) = SINR_{f(A)}(f(s_i), f(p)).

The convexity and fatness proofs repeatedly invoke this invariance to move a
station to the origin or to align a line with ``y = 1``.  The library uses the
same trick: :class:`SimilarityTransform` composes rotation, scaling and
translation, exposes its scale factor (needed to adjust the noise), and
provides the canonical normalisations used by the proofs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from ..exceptions import GeometryError
from .point import Point

__all__ = ["SimilarityTransform"]


@dataclass(frozen=True, slots=True)
class SimilarityTransform:
    """An orientation-preserving similarity ``p -> scale * R(angle) * p + offset``.

    The transform first rotates by ``angle`` radians about the origin, then
    scales by ``scale`` (which must be positive), then translates by
    ``offset``.
    """

    angle: float = 0.0
    scale: float = 1.0
    offset: Point = Point(0.0, 0.0)

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise GeometryError(f"scale factor must be positive, got {self.scale}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity() -> "SimilarityTransform":
        """The identity transform."""
        return SimilarityTransform()

    @staticmethod
    def translation(offset: Point) -> "SimilarityTransform":
        """Pure translation by ``offset``."""
        return SimilarityTransform(offset=offset)

    @staticmethod
    def rotation(angle: float, about: Point | None = None) -> "SimilarityTransform":
        """Rotation by ``angle`` radians about ``about`` (default: origin)."""
        if about is None:
            return SimilarityTransform(angle=angle)
        rotate = SimilarityTransform(angle=angle)
        return (
            SimilarityTransform.translation(about)
            .compose(rotate)
            .compose(SimilarityTransform.translation(-about))
        )

    @staticmethod
    def scaling(scale: float, about: Point | None = None) -> "SimilarityTransform":
        """Uniform scaling by ``scale`` about ``about`` (default: origin)."""
        if about is None:
            return SimilarityTransform(scale=scale)
        rescale = SimilarityTransform(scale=scale)
        return (
            SimilarityTransform.translation(about)
            .compose(rescale)
            .compose(SimilarityTransform.translation(-about))
        )

    @staticmethod
    def canonicalize(source: Point, target: Point) -> "SimilarityTransform":
        """The similarity mapping ``source`` to the origin and ``target`` to ``(1, 0)``.

        This is the normalisation used repeatedly in Section 3 and Section 4
        (e.g. "assume s0 = (0,0) and p = (-1, 0)"), up to the choice of image
        points.  The two input points must be distinct.
        """
        separation = source.distance_to(target)
        if separation == 0.0:
            raise GeometryError("canonicalize() requires distinct points")
        angle = -(target - source).angle()
        scale = 1.0 / separation
        # First translate source to origin, then rotate, then scale.
        move = SimilarityTransform.translation(-source)
        rotate = SimilarityTransform(angle=angle)
        rescale = SimilarityTransform(scale=scale)
        return rescale.compose(rotate).compose(move)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, point: Point) -> Point:
        """Apply the transform to a single point."""
        cos_a = math.cos(self.angle)
        sin_a = math.sin(self.angle)
        x = self.scale * (cos_a * point.x - sin_a * point.y) + self.offset.x
        y = self.scale * (sin_a * point.x + cos_a * point.y) + self.offset.y
        return Point(x, y)

    def apply_many(self, points: Iterable[Point]) -> List[Point]:
        """Apply the transform to every point in ``points``."""
        return [self.apply(point) for point in points]

    def __call__(self, point: Point) -> Point:
        return self.apply(point)

    # ------------------------------------------------------------------
    # Algebra of transforms
    # ------------------------------------------------------------------
    def compose(self, inner: "SimilarityTransform") -> "SimilarityTransform":
        """Return the transform ``self o inner`` (apply ``inner`` first)."""
        # self(inner(p)) = s1 R1 (s2 R2 p + t2) + t1 = s1 s2 R1 R2 p + (s1 R1 t2 + t1)
        combined_angle = self.angle + inner.angle
        combined_scale = self.scale * inner.scale
        rotated_offset = inner.offset.rotated(self.angle) * self.scale
        combined_offset = rotated_offset + self.offset
        return SimilarityTransform(
            angle=combined_angle, scale=combined_scale, offset=combined_offset
        )

    def inverse(self) -> "SimilarityTransform":
        """Return the inverse transform."""
        inverse_scale = 1.0 / self.scale
        inverse_angle = -self.angle
        inverse_offset = (-self.offset).rotated(inverse_angle) * inverse_scale
        return SimilarityTransform(
            angle=inverse_angle, scale=inverse_scale, offset=inverse_offset
        )

    # ------------------------------------------------------------------
    # SINR bookkeeping (Lemma 2.3)
    # ------------------------------------------------------------------
    def noise_factor(self) -> float:
        """Factor by which the background noise must be divided (``scale^2``).

        Lemma 2.3: if the transform scales distances by ``sigma`` then the
        network ``f(A)`` with noise ``N / sigma^2`` has the same SINR values
        as ``A``.
        """
        return self.scale * self.scale
