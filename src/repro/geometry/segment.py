"""Line segments and infinite lines in the plane.

Segments are the work-horses of the convexity analysis (a set is convex iff
the segment between every two of its points stays inside) and of the
point-location preprocessing, whose *segment test* counts intersections of a
reception-zone boundary with grid edges (Section 5.1).

Lines are represented in the implicit form ``a*x + b*y + c = 0`` with
``(a, b)`` normalised to unit length so signed distances are immediate.  The
*separation line* of two points (Section 2.1) — their perpendicular bisector —
is provided here as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..exceptions import GeometryError
from .point import Point, cross, dot

__all__ = ["Segment", "Line", "separation_line"]


@dataclass(frozen=True, slots=True)
class Segment:
    """The closed segment between two (not necessarily distinct) endpoints."""

    start: Point
    end: Point

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def direction(self) -> Point:
        """The (non-normalised) direction vector ``end - start``."""
        return self.end - self.start

    def midpoint(self) -> Point:
        """The midpoint of the segment."""
        return (self.start + self.end) * 0.5

    def is_degenerate(self, tolerance: float = 0.0) -> bool:
        """Return True if the endpoints coincide (within ``tolerance``)."""
        return self.length() <= tolerance

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.end, self.start)

    # ------------------------------------------------------------------
    # Parametrisation
    # ------------------------------------------------------------------
    def point_at(self, t: float) -> Point:
        """The point ``start + t * (end - start)``.

        ``t = 0`` gives ``start``, ``t = 1`` gives ``end``; values outside
        ``[0, 1]`` extrapolate along the supporting line.
        """
        return Point(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )

    def sample(self, count: int, include_endpoints: bool = True) -> List[Point]:
        """Return ``count`` points spread evenly along the segment."""
        if count <= 0:
            raise GeometryError("sample() requires a positive count")
        if count == 1:
            return [self.midpoint()]
        if include_endpoints:
            step = 1.0 / (count - 1)
            return [self.point_at(i * step) for i in range(count)]
        step = 1.0 / (count + 1)
        return [self.point_at((i + 1) * step) for i in range(count)]

    def __iter__(self) -> Iterator[Point]:
        yield self.start
        yield self.end

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: Point, tolerance: float = 1e-9) -> bool:
        """Return True if ``point`` lies on the segment (within ``tolerance``)."""
        direction = self.direction()
        length = direction.norm()
        if length <= tolerance:
            return self.start.distance_to(point) <= tolerance
        # Distance from the supporting line.
        offset = point - self.start
        perpendicular_distance = abs(cross(direction, offset)) / length
        if perpendicular_distance > tolerance:
            return False
        projection = dot(direction, offset) / (length * length)
        return -tolerance / length <= projection <= 1.0 + tolerance / length

    def projection_parameter(self, point: Point) -> float:
        """Parameter ``t`` of the orthogonal projection of ``point`` onto the line."""
        direction = self.direction()
        denominator = direction.squared_norm()
        if denominator == 0.0:
            raise GeometryError("cannot project onto a degenerate segment")
        return dot(direction, point - self.start) / denominator

    def closest_point(self, point: Point) -> Point:
        """The point of the segment closest to ``point``."""
        if self.is_degenerate():
            return self.start
        t = self.projection_parameter(point)
        return self.point_at(min(1.0, max(0.0, t)))

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the segment."""
        return self.closest_point(point).distance_to(point)

    def intersection(self, other: "Segment", tolerance: float = 1e-12) -> Optional[Point]:
        """Intersection point of two segments, or None.

        Parallel overlapping segments return None (no unique intersection
        point); use :meth:`contains` to test overlap explicitly.
        """
        d1 = self.direction()
        d2 = other.direction()
        denominator = cross(d1, d2)
        if abs(denominator) <= tolerance:
            return None
        offset = other.start - self.start
        t = cross(offset, d2) / denominator
        u = cross(offset, d1) / denominator
        if -tolerance <= t <= 1.0 + tolerance and -tolerance <= u <= 1.0 + tolerance:
            return self.point_at(t)
        return None


@dataclass(frozen=True, slots=True)
class Line:
    """An infinite line ``a*x + b*y + c = 0`` with ``(a, b)`` of unit length."""

    a: float
    b: float
    c: float

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def through(p: Point, q: Point) -> "Line":
        """The line through two distinct points."""
        direction = q - p
        length = direction.norm()
        if length == 0.0:
            raise GeometryError("cannot construct a line through coincident points")
        normal = direction.perpendicular() / length
        return Line(normal.x, normal.y, -(normal.x * p.x + normal.y * p.y))

    @staticmethod
    def from_point_and_direction(point: Point, direction: Point) -> "Line":
        """The line through ``point`` with the given direction vector."""
        return Line.through(point, point + direction)

    @staticmethod
    def horizontal(y: float) -> "Line":
        """The horizontal line at height ``y``."""
        return Line(0.0, 1.0, -y)

    @staticmethod
    def vertical(x: float) -> "Line":
        """The vertical line at abscissa ``x``."""
        return Line(1.0, 0.0, -x)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def signed_distance(self, point: Point) -> float:
        """Signed distance from ``point`` to the line."""
        return self.a * point.x + self.b * point.y + self.c

    def distance(self, point: Point) -> float:
        """Unsigned distance from ``point`` to the line."""
        return abs(self.signed_distance(point))

    def contains(self, point: Point, tolerance: float = 1e-9) -> bool:
        """Return True if ``point`` lies on the line (within ``tolerance``)."""
        return self.distance(point) <= tolerance

    def direction(self) -> Point:
        """A unit vector parallel to the line."""
        return Point(-self.b, self.a)

    def normal(self) -> Point:
        """The unit normal ``(a, b)``."""
        return Point(self.a, self.b)

    def point_on(self) -> Point:
        """An arbitrary point on the line (the foot of the origin)."""
        return Point(-self.a * self.c, -self.b * self.c)

    def parameterize(self, anchor: Optional[Point] = None) -> Tuple[Point, Point]:
        """Return ``(origin, direction)`` describing the line parametrically.

        Any point of the line is ``origin + t * direction`` with the unit
        direction vector; ``anchor``, if given, is projected onto the line and
        used as the origin.
        """
        direction = self.direction()
        if anchor is None:
            return self.point_on(), direction
        origin = self.project(anchor)
        return origin, direction

    def project(self, point: Point) -> Point:
        """Orthogonal projection of ``point`` onto the line."""
        offset = self.signed_distance(point)
        return Point(point.x - offset * self.a, point.y - offset * self.b)

    def intersection(self, other: "Line", tolerance: float = 1e-12) -> Optional[Point]:
        """Intersection point of two lines, or None if (nearly) parallel."""
        determinant = self.a * other.b - other.a * self.b
        if abs(determinant) <= tolerance:
            return None
        x = (self.b * other.c - other.b * self.c) / determinant
        y = (other.a * self.c - self.a * other.c) / determinant
        return Point(x, y)

    def side(self, point: Point, tolerance: float = 1e-12) -> int:
        """Return +1 / -1 / 0 depending on which side of the line the point lies."""
        value = self.signed_distance(point)
        if value > tolerance:
            return 1
        if value < -tolerance:
            return -1
        return 0


def separation_line(p: Point, q: Point) -> Line:
    """The separation line (perpendicular bisector) of two distinct points.

    Section 2.1: the set of points equidistant from ``p`` and ``q``.  Each
    reception zone of a non-trivial uniform-power network lies strictly on its
    own station's side of every separation line (Observation 2.2).
    """
    if p == q:
        raise GeometryError("separation line of coincident points is undefined")
    mid = (p + q) * 0.5
    direction = (q - p).perpendicular()
    return Line.from_point_and_direction(mid, direction)
