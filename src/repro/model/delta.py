"""Network deltas: the first-class description of a dynamic-network mutation.

Every :class:`~repro.model.network.WirelessNetwork` is immutable — "mutation"
means building a new network.  For a *static* consumer that is the whole
story: a new network has a new :attr:`~repro.model.network.WirelessNetwork.fingerprint`
and every derived structure is rebuilt from scratch.  Dynamic-network
serving (stations joining, leaving and moving under live traffic) needs the
opposite view: *how little* changed.  A :class:`NetworkDelta` records
exactly that — which stations were added, removed or relocated between two
networks — so that downstream layers can do proportionate work:

* :meth:`repro.pointlocation.sharded.ShardedLocator.updated` rebuilds only
  the shards whose station sets the delta touches;
* :meth:`repro.service.QueryService.swap_network` installs the updated
  locator for new micro-batches while in-flight batches drain against the
  previous epoch;
* :func:`repro.raster.invalidate_for_delta` drops only the raster tiles a
  changed station's certified reach can touch and re-keys the rest.

Deltas come from two places.  The *mutator* helpers here
(:func:`move_station`, :func:`add_station`, :func:`remove_station`) apply
one mutation and return the ``(network, delta)`` pair, so the delta is
exact by construction.  :func:`diff_networks` recovers a delta from two
arbitrary networks by content-matching stations on ``(x, y, power)``; a
relocated station then surfaces as a removal plus an addition unless the
two networks have equal station counts, in which case the unmatched
stations are paired up in index order as moves (which reproduces the
mutator deltas for the common single/multi-move case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point
from .network import WirelessNetwork
from .station import Station

__all__ = [
    "NetworkDelta",
    "diff_networks",
    "move_station",
    "add_station",
    "remove_station",
]


@dataclass(frozen=True)
class NetworkDelta:
    """The station-level difference between an old and a new network.

    Attributes:
        added: new-network indices of stations absent from the old network.
        removed: old-network indices of stations absent from the new network.
        moved: ``(old_index, new_index)`` pairs of stations present in both
            networks but with a different location or power.
        old_count: station count of the old network.
        new_count: station count of the new network.
        params_changed: True when ``noise`` / ``beta`` / ``alpha`` differ —
            then *every* derived structure is stale regardless of how few
            stations moved, and incremental consumers fall back to a full
            rebuild.
    """

    added: Tuple[int, ...] = ()
    removed: Tuple[int, ...] = ()
    moved: Tuple[Tuple[int, int], ...] = ()
    old_count: int = 0
    new_count: int = 0
    params_changed: bool = False

    def __post_init__(self) -> None:
        survivors = self.old_count - len(self.removed) - len(self.moved)
        if survivors + len(self.moved) + len(self.added) != self.new_count:
            raise NetworkConfigurationError(
                f"inconsistent delta: {self.old_count} stations "
                f"- {len(self.removed)} removed - {len(self.moved)} moved "
                f"+ {len(self.added)} added does not give {self.new_count}"
            )

    # -- classification --------------------------------------------------
    @property
    def is_identity(self) -> bool:
        """True when nothing changed (same stations, same parameters)."""
        return (
            not self.added
            and not self.removed
            and not self.moved
            and not self.params_changed
        )

    @property
    def index_preserving(self) -> bool:
        """True when every surviving station keeps its index (pure moves).

        This is the precondition for *re-keying* cached per-pixel artefacts
        (raster tiles): the station labels stored in a tile are indices, so
        they stay meaningful only when no index shifted and the station
        count is unchanged.
        """
        if self.old_count != self.new_count or self.added or self.removed:
            return False
        return all(old == new for old, new in self.moved)

    @property
    def touched_old(self) -> Tuple[int, ...]:
        """Old-network indices whose station is gone or relocated (sorted)."""
        return tuple(sorted(set(self.removed) | {old for old, _ in self.moved}))

    @property
    def touched_new(self) -> Tuple[int, ...]:
        """New-network indices of arriving or relocated stations (sorted)."""
        return tuple(sorted(set(self.added) | {new for _, new in self.moved}))

    # -- index bookkeeping ----------------------------------------------
    def surviving_map(self) -> np.ndarray:
        """Old index -> new index for content-unchanged stations, else ``-1``.

        Removed *and* moved stations map to ``-1``: a moved station's old
        shard/tile placement is invalid, so incremental consumers treat it
        as "left here, arrived there" and re-place it from
        :attr:`touched_new`.
        """
        mapping = np.empty(self.old_count, dtype=np.int64)
        dropped = set(self.removed) | {old for old, _ in self.moved}
        incoming = set(self.added) | {new for _, new in self.moved}
        new_index = 0
        for old_index in range(self.old_count):
            if old_index in dropped:
                mapping[old_index] = -1
                continue
            while new_index in incoming:
                new_index += 1
            mapping[old_index] = new_index
            new_index += 1
        return mapping

    def describe(self) -> str:
        """One human-readable line (benchmark and example output)."""
        parts = [
            f"+{len(self.added)}" if self.added else "",
            f"-{len(self.removed)}" if self.removed else "",
            f"~{len(self.moved)}" if self.moved else "",
            "params" if self.params_changed else "",
        ]
        changes = " ".join(part for part in parts if part) or "identity"
        return f"delta[{self.old_count}->{self.new_count} stations: {changes}]"


def _station_key(station: Station) -> Tuple[float, float, float]:
    """The content identity of a station (names are cosmetic, excluded)."""
    return (station.x, station.y, station.power)


def diff_networks(old: WirelessNetwork, new: WirelessNetwork) -> NetworkDelta:
    """Recover a :class:`NetworkDelta` by content-matching two networks.

    Stations match when their ``(x, y, power)`` agree exactly; matching is
    stable (earliest indices pair first), so the surviving map of an
    append/remove mutation is the expected index shift.  With equal station
    counts the unmatched stations are paired in index order as *moves* —
    exactly the delta :func:`move_station` carries — while unequal counts
    report the unmatched stations as removals and additions.

    Prefer the mutator helpers when applying known mutations: they carry
    the same information without the ``O(n)`` rematching pass, and they
    keep a relocation a *move* even alongside joins and leaves.
    """
    params_changed = (
        old.noise != new.noise or old.beta != new.beta or old.alpha != new.alpha
    )
    available: Dict[Tuple[float, float, float], List[int]] = {}
    for index, station in enumerate(old.stations):
        available.setdefault(_station_key(station), []).append(index)

    matched_old = set()
    unmatched_new: List[int] = []
    for index, station in enumerate(new.stations):
        candidates = available.get(_station_key(station))
        if candidates:
            matched_old.add(candidates.pop(0))
        else:
            unmatched_new.append(index)
    unmatched_old = [i for i in range(len(old)) if i not in matched_old]

    if len(old) == len(new):
        moved = tuple(zip(unmatched_old, unmatched_new))
        return NetworkDelta(
            added=(),
            removed=(),
            moved=moved,
            old_count=len(old),
            new_count=len(new),
            params_changed=params_changed,
        )
    return NetworkDelta(
        added=tuple(unmatched_new),
        removed=tuple(unmatched_old),
        moved=(),
        old_count=len(old),
        new_count=len(new),
        params_changed=params_changed,
    )


def move_station(
    network: WirelessNetwork, index: int, location: Point
) -> Tuple[WirelessNetwork, NetworkDelta]:
    """Relocate one station; returns the new network *and* its exact delta.

    The delta-carrying twin of
    :meth:`~repro.model.network.WirelessNetwork.with_station_moved`.
    Moving a station onto its current location yields the identity delta
    (the returned network is still a fresh copy).
    """
    if not 0 <= index < len(network):
        raise NetworkConfigurationError(
            f"station index {index} out of range for {len(network)} stations"
        )
    mutated = network.with_station_moved(index, location)
    if network.stations[index].location == mutated.stations[index].location:
        moved: Tuple[Tuple[int, int], ...] = ()
    else:
        moved = ((index, index),)
    return mutated, NetworkDelta(
        moved=moved, old_count=len(network), new_count=len(mutated)
    )


def add_station(
    network: WirelessNetwork, station: Station
) -> Tuple[WirelessNetwork, NetworkDelta]:
    """Append one station; the delta records the new index as *added*."""
    mutated = network.with_station(station)
    return mutated, NetworkDelta(
        added=(len(mutated) - 1,), old_count=len(network), new_count=len(mutated)
    )


def remove_station(
    network: WirelessNetwork, index: int
) -> Tuple[WirelessNetwork, NetworkDelta]:
    """Silence (remove) one station; the delta records the old index."""
    if not 0 <= index < len(network):
        raise NetworkConfigurationError(
            f"station index {index} out of range for {len(network)} stations"
        )
    mutated = network.without_station(index)
    return mutated, NetworkDelta(
        removed=(index,), old_count=len(network), new_count=len(mutated)
    )
