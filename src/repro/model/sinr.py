"""The SINR arithmetic: energy, interference and the SINR ratio.

These are the formulas of Section 2.2 of the paper, for a general path-loss
exponent ``alpha`` (the paper's structural results assume ``alpha = 2``; the
arithmetic itself is defined for any ``alpha > 0``):

* energy of station ``s_i`` at point ``p``:
  ``E(s_i, p) = psi_i * dist(s_i, p)^(-alpha)``;
* interference to ``s_i`` at ``p``: the total energy of all other stations;
* SINR: ``E(s_i, p) / (I(s_i, p) + N)``.

Scalar versions operate on :class:`~repro.geometry.point.Point`; vectorised
versions operate on numpy coordinate arrays and are what the raster diagram
builder uses to label hundreds of thousands of pixels quickly.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point

__all__ = [
    "received_energy",
    "total_energy",
    "interference",
    "sinr_ratio",
    "sinr_map",
    "strongest_station_map",
]


def received_energy(
    station: Point, power: float, point: Point, alpha: float = 2.0
) -> float:
    """Energy ``psi * dist(station, point)^(-alpha)`` of one station at ``point``.

    Returns ``inf`` when ``point`` coincides with the station (the SINR ratio
    is undefined there; the model layer handles that case explicitly).
    """
    distance = station.distance_to(point)
    if distance == 0.0:
        return math.inf
    try:
        return power * distance ** (-alpha)
    except OverflowError:
        # Distances tiny enough to overflow the float range behave like the
        # station location itself: the energy is effectively infinite.
        return math.inf


def total_energy(
    stations: Sequence[Point],
    powers: Sequence[float],
    point: Point,
    alpha: float = 2.0,
) -> float:
    """Total energy of a set of stations at ``point``."""
    return sum(
        received_energy(station, power, point, alpha)
        for station, power in zip(stations, powers)
    )


def interference(
    stations: Sequence[Point],
    powers: Sequence[float],
    target_index: int,
    point: Point,
    alpha: float = 2.0,
) -> float:
    """Energy at ``point`` of every station except ``target_index``."""
    return sum(
        received_energy(station, power, point, alpha)
        for index, (station, power) in enumerate(zip(stations, powers))
        if index != target_index
    )


def sinr_ratio(
    stations: Sequence[Point],
    powers: Sequence[float],
    target_index: int,
    point: Point,
    noise: float,
    alpha: float = 2.0,
) -> float:
    """The SINR of the target station at ``point`` (eq. (1) of the paper).

    Raises:
        NetworkConfigurationError: if ``point`` coincides with any station
            (the ratio is undefined there).
    """
    for station in stations:
        if station.distance_to(point) == 0.0:
            raise NetworkConfigurationError(
                "SINR is undefined at a station location; "
                "use the reception predicate instead"
            )
    signal = received_energy(stations[target_index], powers[target_index], point, alpha)
    noise_plus_interference = (
        interference(stations, powers, target_index, point, alpha) + noise
    )
    # Points overflow-close to a station (energy saturated to inf without the
    # point being *at* the station) must not leak NaN through inf/inf: an
    # infinite signal dominates any interference, an infinite interference
    # drowns any finite signal.  The vectorised kernels implement the same
    # convention.
    if math.isinf(signal):
        return math.inf
    if math.isinf(noise_plus_interference):
        return 0.0
    if noise_plus_interference == 0.0:
        return math.inf
    return signal / noise_plus_interference


# ----------------------------------------------------------------------
# Vectorised versions (grid-shaped façades over the engine kernels)
# ----------------------------------------------------------------------
def _as_point_rows(xs: np.ndarray, ys: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Flatten broadcastable coordinate arrays into ``(m, 2)`` point rows."""
    grid_x, grid_y = np.broadcast_arrays(np.asarray(xs, dtype=float),
                                         np.asarray(ys, dtype=float))
    points = np.column_stack((grid_x.ravel(), grid_y.ravel()))
    return points, grid_x.shape


def sinr_map(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    target_index: int,
    xs: np.ndarray,
    ys: np.ndarray,
    noise: float,
    alpha: float = 2.0,
) -> np.ndarray:
    """SINR of one station over a grid of points.

    Args:
        station_coordinates: array of shape ``(n, 2)``.
        powers: array of shape ``(n,)``.
        target_index: which station's SINR to compute.
        xs, ys: broadcastable coordinate arrays (e.g. from ``numpy.meshgrid``).
        noise: background noise ``N``.
        alpha: path-loss exponent.

    Returns:
        Array with the broadcast shape of ``xs``/``ys``; entries are ``inf``
        at the target station's own location and ``0`` at other stations'
        locations (the engine-kernel convention).
    """
    from ..engine.batch import sinr_matrix_array

    points, shape = _as_point_rows(xs, ys)
    matrix = sinr_matrix_array(station_coordinates, powers, points, noise, alpha)
    return matrix[target_index].reshape(shape)


def strongest_station_map(
    station_coordinates: np.ndarray,
    powers: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    alpha: float = 2.0,
) -> np.ndarray:
    """Index of the station with the highest received energy at every grid point.

    In uniform power networks this is the nearest station, i.e. the Voronoi
    owner of the point (Observation 2.2 guarantees it is the only candidate
    whose transmission may be received there).
    """
    from ..engine.batch import strongest_station_array

    points, shape = _as_point_rows(xs, ys)
    return strongest_station_array(
        station_coordinates, powers, points, alpha
    ).reshape(shape)
