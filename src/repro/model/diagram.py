"""SINR diagrams: the reception map of a whole network.

An SINR diagram partitions the plane into one reception zone per station plus
the null zone ``H_empty`` where no station is heard (Section 1.1).  The
:class:`SINRDiagram` exposes:

* per-station :class:`~repro.model.reception.ReceptionZone` objects,
* point queries ("which station, if any, is heard here?"),
* a vectorised raster labelling over a bounding box (the numerical procedure
  behind the paper's Figures 1–5),
* summary statistics (areas, fatness, coverage fraction) used by the
  experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import batch as engine_batch
from ..engine import kernels
from ..exceptions import DiagramError
from ..geometry.point import Point
from .network import WirelessNetwork
from .reception import ReceptionZone

__all__ = ["SINRDiagram", "RasterDiagram"]

#: Label used in raster maps for points where no station is heard.
NO_RECEPTION = -1


@dataclass(frozen=True)
class RasterDiagram:
    """A rasterised SINR diagram over an axis-aligned bounding box.

    Attributes:
        xs, ys: 1-d coordinate arrays of the pixel centres.
        labels: 2-d integer array (``shape = (len(ys), len(xs))``); entry
            ``labels[r, c]`` is the index of the station heard at pixel
            ``(xs[c], ys[r])`` or ``NO_RECEPTION``.
        sinr_values: 3-d float array of per-station SINR values with shape
            ``(n_stations, len(ys), len(xs))``.
    """

    xs: np.ndarray
    ys: np.ndarray
    labels: np.ndarray
    sinr_values: np.ndarray

    @property
    def resolution(self) -> Tuple[int, int]:
        """``(rows, columns)`` of the raster."""
        return (len(self.ys), len(self.xs))

    def pixel_area(self) -> float:
        """Area represented by a single pixel."""
        dx = self.xs[1] - self.xs[0] if len(self.xs) > 1 else 0.0
        dy = self.ys[1] - self.ys[0] if len(self.ys) > 1 else 0.0
        return float(dx * dy)

    def zone_area(self, index: int) -> float:
        """Estimated area of the reception zone of station ``index``."""
        return float(np.count_nonzero(self.labels == index)) * self.pixel_area()

    def coverage_fraction(self) -> float:
        """Fraction of the raster where some station is heard."""
        return float(np.count_nonzero(self.labels != NO_RECEPTION)) / self.labels.size

    def label_at(self, point: Point) -> int:
        """Raster label at the pixel containing ``point``."""
        column = int(np.clip(np.searchsorted(self.xs, point.x), 0, len(self.xs) - 1))
        row = int(np.clip(np.searchsorted(self.ys, point.y), 0, len(self.ys) - 1))
        return int(self.labels[row, column])


@dataclass(frozen=True)
class SINRDiagram:
    """The SINR diagram (reception map) of a wireless network."""

    network: WirelessNetwork

    # ------------------------------------------------------------------
    # Zones
    # ------------------------------------------------------------------
    @cached_property
    def zones(self) -> Tuple[ReceptionZone, ...]:
        """One reception zone per station, in station order."""
        return tuple(
            ReceptionZone(network=self.network, index=index)
            for index in range(len(self.network))
        )

    def zone(self, index: int) -> ReceptionZone:
        """The reception zone of station ``index``."""
        return self.zones[index]

    def __len__(self) -> int:
        return len(self.network)

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def station_heard_at(self, point: Point) -> Optional[int]:
        """The station heard at ``point``, or None (the null zone ``H_empty``).

        When ``beta >= 1`` at most one station can be heard at any point; for
        ``beta < 1`` (allowed so that Figure 5 can be reproduced) several
        stations may qualify, in which case the one with the highest SINR is
        reported.
        """
        candidates = [
            index
            for index in range(len(self.network))
            if self.network.is_received(index, point)
        ]
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        # A point occupied by stations (only possible with shared locations):
        # every co-located station is received there but the SINR ratio is
        # undefined, so the first co-located candidate wins — the same
        # convention the batch kernels use.
        for index in candidates:
            if self.network.station(index).location == point:
                return index
        return max(candidates, key=lambda index: self.network.sinr(index, point))

    def station_heard_at_batch(self, points) -> np.ndarray:
        """Bulk :meth:`station_heard_at`: one label per point, ``-1`` for none.

        Accepts an ``(m, 2)`` array or a sequence of points and routes
        through the vectorised engine; answers agree pointwise with the
        scalar method (including the highest-SINR rule for ``beta < 1``).
        """
        return engine_batch.heard_station_batch(self.network, points)

    def reception_vector(self, point: Point) -> List[bool]:
        """Reception indicator of every station at ``point``."""
        return [
            self.network.is_received(index, point)
            for index in range(len(self.network))
        ]

    # ------------------------------------------------------------------
    # Rasterisation (numerically generated diagrams, as in the figures)
    # ------------------------------------------------------------------
    def rasterize(
        self,
        lower_left: Point,
        upper_right: Point,
        resolution: int = 200,
    ) -> RasterDiagram:
        """Label every pixel of a bounding box with the station heard there.

        Args:
            lower_left, upper_right: corners of the bounding box.
            resolution: number of pixels along the longer side; the shorter
                side is scaled to keep pixels square.

        Raises:
            DiagramError: if the box is empty or the resolution is too small.
        """
        width = upper_right.x - lower_left.x
        height = upper_right.y - lower_left.y
        if width <= 0.0 or height <= 0.0:
            raise DiagramError("rasterize() requires a non-empty bounding box")
        if resolution < 2:
            raise DiagramError("rasterize() requires resolution >= 2")

        if width >= height:
            columns = resolution
            rows = max(2, int(round(resolution * height / width)))
        else:
            rows = resolution
            columns = max(2, int(round(resolution * width / height)))

        xs = np.linspace(lower_left.x, upper_right.x, columns)
        ys = np.linspace(lower_left.y, upper_right.y, rows)
        grid_x, grid_y = np.meshgrid(xs, ys)

        # One engine-kernel call labels the whole raster: the pixel centres
        # become an (m, 2) batch and the SINR matrix is reshaped per station.
        pixel_points = np.column_stack((grid_x.ravel(), grid_y.ravel()))
        n = len(self.network)
        sinr_values = kernels.sinr_matrix(
            self.network.coords,
            self.network.powers_array(),
            pixel_points,
            self.network.noise,
            self.network.alpha,
        ).reshape(n, rows, columns)

        received = sinr_values >= self.network.beta
        best = np.argmax(sinr_values, axis=0)
        any_received = received.any(axis=0)
        labels = np.where(any_received, best, NO_RECEPTION)
        return RasterDiagram(xs=xs, ys=ys, labels=labels, sinr_values=sinr_values)

    def default_bounding_box(self, margin: float = 1.5) -> Tuple[Point, Point]:
        """A bounding box comfortably containing every bounded reception zone.

        The box covers all stations expanded by ``margin`` times the largest
        zone radius bound (or the station spread, whichever is larger).
        """
        locations = self.network.locations()
        xs = [p.x for p in locations]
        ys = [p.y for p in locations]
        spread = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
        pad = margin * spread
        return (
            Point(min(xs) - pad, min(ys) - pad),
            Point(max(xs) + pad, max(ys) + pad),
        )

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def summary(self, resolution: int = 300) -> Dict[str, object]:
        """Coarse summary of the diagram (zone areas, coverage, fatness).

        Used by the experiment harness and examples for quick reporting; all
        quantities are raster estimates.
        """
        lower_left, upper_right = self.default_bounding_box()
        raster = self.rasterize(lower_left, upper_right, resolution=resolution)
        zone_areas = {
            index: raster.zone_area(index) for index in range(len(self.network))
        }
        fatness: Dict[int, float] = {}
        for index, zone in enumerate(self.zones):
            if zone.is_degenerate or self.network.is_trivial():
                fatness[index] = math.nan
            else:
                fatness[index] = zone.fatness(angles=90).fatness
        return {
            "network": self.network.describe(),
            "zone_areas": zone_areas,
            "coverage_fraction": raster.coverage_fraction(),
            "fatness": fatness,
        }
