"""SINR diagrams: the reception map of a whole network.

An SINR diagram partitions the plane into one reception zone per station plus
the null zone ``H_empty`` where no station is heard (Section 1.1).  The
:class:`SINRDiagram` exposes:

* per-station :class:`~repro.model.reception.ReceptionZone` objects,
* point queries ("which station, if any, is heard here?"),
* a vectorised raster labelling over a bounding box (the numerical procedure
  behind the paper's Figures 1–5),
* summary statistics (areas, fatness, coverage fraction) used by the
  experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import batch as engine_batch
from ..engine.backend import active_backend
from ..exceptions import DiagramError
from ..geometry.point import Point
from .network import WirelessNetwork
from .reception import ReceptionZone

__all__ = ["SINRDiagram", "RasterDiagram", "RasterLattice", "raster_block"]

#: Label used in raster maps for points where no station is heard.
NO_RECEPTION = -1

#: Relative tolerance under which a box origin counts as sitting exactly on
#: the world-anchored pixel lattice (so the lattice phase snaps to zero and
#: tiles become shareable across every box aligned to the same pitch).
_LATTICE_SNAP_RTOL = 1e-9


@dataclass(frozen=True)
class RasterLattice:
    """One axis of a raster pixel lattice.

    Pixel centres along the axis live at ``phase + (g + 0.5) * pitch`` for
    *global* integer pixel indices ``g`` — the one coordinate formula shared
    by the monolithic rasteriser and the tile cache, so that a tile computed
    for global indices ``[a, b)`` is bit-identical to the same slice of any
    monolithic raster on the same lattice.

    ``phase`` is ``0.0`` whenever the box origin is an integer multiple of
    the pitch (within a tiny relative tolerance): such boxes share the
    world-anchored lattice, which is what lets overlapping figure boxes
    reuse each other's cached tiles.  Unaligned origins get their own lattice
    family, keyed by the remainder ``phase`` in ``[0, pitch)``.

    Attributes:
        pitch: world units per pixel (the box length over the pixel count).
        phase: lattice offset in ``[0, pitch)``; ``0.0`` when snapped.
        start: global index of the request's first pixel.
        count: number of pixels the request spans.
    """

    pitch: float
    phase: float
    start: int
    count: int

    @staticmethod
    def build(origin: float, length: float, count: int) -> "RasterLattice":
        """The lattice of a box edge starting at ``origin`` spanning ``length``."""
        pitch = length / count
        nearest = math.floor(origin / pitch + 0.5)
        if abs(origin - nearest * pitch) <= pitch * _LATTICE_SNAP_RTOL:
            return RasterLattice(pitch=pitch, phase=0.0, start=nearest, count=count)
        start = math.floor(origin / pitch)
        return RasterLattice(
            pitch=pitch, phase=origin - start * pitch, start=start, count=count
        )

    def centers_at(self, start: int, count: int) -> np.ndarray:
        """Pixel-centre coordinates of ``count`` pixels from global index ``start``."""
        indices = np.arange(start, start + count, dtype=float)
        return self.phase + (indices + 0.5) * self.pitch

    def centers(self) -> np.ndarray:
        """Pixel-centre coordinates of the request's own pixels."""
        return self.centers_at(self.start, self.count)

    @property
    def stop(self) -> int:
        """One past the request's last global pixel index."""
        return self.start + self.count


def raster_block(
    network: WirelessNetwork, xs: np.ndarray, ys: np.ndarray, backend=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Labels and SINR values over a pixel-centre grid, in one engine call.

    The shared compute core of the monolithic rasteriser and the tile cache:
    the centres become an ``(m, 2)`` batch through the engine backend
    (``backend``, defaulting to the active one) and every per-pixel quantity
    (SINR column, reception test, argmax) is computed independently per
    pixel, so computing any sub-grid under the *same* backend yields
    bit-identical values to computing the full grid.  Different backends
    agree only to floating-point tolerance, which is why the tile cache
    keys tiles by backend and pins one backend per assembled request.

    Returns:
        ``(labels, sinr_values)`` of shapes ``(len(ys), len(xs))`` and
        ``(n_stations, len(ys), len(xs))``.
    """
    if backend is None:
        backend = active_backend()
    grid_x, grid_y = np.meshgrid(xs, ys)
    pixel_points = np.column_stack((grid_x.ravel(), grid_y.ravel()))
    n = len(network)
    # Through the batch API rather than the raw backend method, so pixel
    # batches inherit its memory-bounded point chunking (bit-identical per
    # chunk size — chunking commutes with the per-pixel independence that
    # already makes tiles exact).
    sinr_values = engine_batch.sinr_batch(
        network, pixel_points, backend=backend
    ).reshape(n, len(ys), len(xs))

    received = sinr_values >= network.beta
    best = np.argmax(sinr_values, axis=0)
    any_received = received.any(axis=0)
    labels = np.where(any_received, best, NO_RECEPTION)
    return labels, sinr_values


def _nearest_pixel_index(centers: np.ndarray, coordinate: float) -> int:
    """Index of the pixel centre nearest to ``coordinate`` (clamped to the raster).

    Implemented as a ``searchsorted`` against the midpoints between adjacent
    centres; a coordinate exactly on a midpoint resolves to the lower pixel,
    and coordinates outside the box clamp to the edge pixels.
    """
    if len(centers) < 2:
        return 0
    midpoints = (centers[:-1] + centers[1:]) * 0.5
    return int(np.searchsorted(midpoints, coordinate, side="left"))


@dataclass(frozen=True)
class RasterDiagram:
    """A rasterised SINR diagram over an axis-aligned bounding box.

    Attributes:
        xs, ys: 1-d coordinate arrays of the pixel centres.  Centres are
            inset half a pixel from the box edges, so the pixels tile the
            box exactly: ``labels.size * pixel_area()`` equals the box area.
        labels: 2-d integer array (``shape = (len(ys), len(xs))``); entry
            ``labels[r, c]`` is the index of the station heard at pixel
            ``(xs[c], ys[r])`` or ``NO_RECEPTION``.
        sinr_values: 3-d float array of per-station SINR values with shape
            ``(n_stations, len(ys), len(xs))``.
        pitch: optional ``(dx, dy)`` pixel extent.  Always set by
            :meth:`SINRDiagram.rasterize`; rasters constructed by hand may
            omit it, in which case the extent is recovered from adjacent
            centres (and a degenerate single-row/column raster has no
            recoverable extent at all — see :meth:`pixel_area`).
    """

    xs: np.ndarray
    ys: np.ndarray
    labels: np.ndarray
    sinr_values: np.ndarray
    pitch: Optional[Tuple[float, float]] = None

    @property
    def resolution(self) -> Tuple[int, int]:
        """``(rows, columns)`` of the raster."""
        return (len(self.ys), len(self.xs))

    def pixel_area(self) -> float:
        """Area represented by a single pixel.

        Raises:
            DiagramError: for a single-row or single-column raster without
                an explicit ``pitch`` — the pixel extent cannot be recovered
                from one centre, and silently returning ``0.0`` (the old
                behaviour) zeroed every :meth:`zone_area` downstream.
        """
        if self.pitch is not None:
            return float(self.pitch[0] * self.pitch[1])
        if len(self.xs) > 1 and len(self.ys) > 1:
            return float((self.xs[1] - self.xs[0]) * (self.ys[1] - self.ys[0]))
        raise DiagramError(
            "pixel_area() is undefined for a degenerate raster "
            f"({len(self.ys)} rows x {len(self.xs)} columns) without an "
            "explicit pitch"
        )

    def zone_area(self, index: int) -> float:
        """Estimated area of the reception zone of station ``index``."""
        return float(np.count_nonzero(self.labels == index)) * self.pixel_area()

    def coverage_fraction(self) -> float:
        """Fraction of the raster where some station is heard."""
        return float(np.count_nonzero(self.labels != NO_RECEPTION)) / self.labels.size

    def label_at(self, point: Point) -> int:
        """Raster label at the pixel whose centre is nearest to ``point``.

        A ``searchsorted`` against the centres themselves would return the
        next centre *at or above* the coordinate — biased one pixel up for
        any point right of a centre — so the lookup goes through the
        midpoints between centres instead.  Points outside the box clamp to
        the nearest edge pixel.
        """
        column = _nearest_pixel_index(self.xs, point.x)
        row = _nearest_pixel_index(self.ys, point.y)
        return int(self.labels[row, column])


@dataclass(frozen=True)
class SINRDiagram:
    """The SINR diagram (reception map) of a wireless network."""

    network: WirelessNetwork

    # ------------------------------------------------------------------
    # Zones
    # ------------------------------------------------------------------
    @cached_property
    def zones(self) -> Tuple[ReceptionZone, ...]:
        """One reception zone per station, in station order."""
        return tuple(
            ReceptionZone(network=self.network, index=index)
            for index in range(len(self.network))
        )

    def zone(self, index: int) -> ReceptionZone:
        """The reception zone of station ``index``."""
        return self.zones[index]

    def __len__(self) -> int:
        return len(self.network)

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def station_heard_at(self, point: Point) -> Optional[int]:
        """The station heard at ``point``, or None (the null zone ``H_empty``).

        When ``beta >= 1`` at most one station can be heard at any point; for
        ``beta < 1`` (allowed so that Figure 5 can be reproduced) several
        stations may qualify, in which case the one with the highest SINR is
        reported.
        """
        candidates = [
            index
            for index in range(len(self.network))
            if self.network.is_received(index, point)
        ]
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        # A point occupied by stations (only possible with shared locations):
        # every co-located station is received there but the SINR ratio is
        # undefined, so the first co-located candidate wins — the same
        # convention the batch kernels use.
        for index in candidates:
            if self.network.station(index).location == point:
                return index
        return max(candidates, key=lambda index: self.network.sinr(index, point))

    def station_heard_at_batch(self, points) -> np.ndarray:
        """Bulk :meth:`station_heard_at`: one label per point, ``-1`` for none.

        Accepts an ``(m, 2)`` array or a sequence of points and routes
        through the vectorised engine; answers agree pointwise with the
        scalar method (including the highest-SINR rule for ``beta < 1``).
        """
        return engine_batch.heard_station_batch(self.network, points)

    def reception_vector(self, point: Point) -> List[bool]:
        """Reception indicator of every station at ``point``."""
        return [
            self.network.is_received(index, point)
            for index in range(len(self.network))
        ]

    # ------------------------------------------------------------------
    # Rasterisation (numerically generated diagrams, as in the figures)
    # ------------------------------------------------------------------
    def rasterize(
        self,
        lower_left: Point,
        upper_right: Point,
        resolution: int = 200,
        *,
        cache=None,
    ) -> RasterDiagram:
        """Label every pixel of a bounding box with the station heard there.

        Pixel centres sit at the true cell centres (half a pixel inset from
        the box edges), so the pixels tile the box exactly and
        ``labels.size * pixel_area()`` equals the box area — endpoint
        sampling (the old behaviour) over-counted every area estimate by
        ``~(1 + 1/(columns-1)) * (1 + 1/(rows-1))``.

        Args:
            lower_left, upper_right: corners of the bounding box.
            resolution: number of pixels along the longer side; the shorter
                side is scaled to keep pixels square.
            cache: ``None`` computes the raster monolithically; a
                :class:`repro.raster.TileCache` (or ``True`` for the
                process-wide default cache) assembles it from cached lattice
                tiles instead, computing only the missing ones.  Both paths
                return bit-identical rasters.

        Raises:
            DiagramError: if the box is empty or the resolution is too small.
        """
        width = upper_right.x - lower_left.x
        height = upper_right.y - lower_left.y
        if width <= 0.0 or height <= 0.0:
            raise DiagramError("rasterize() requires a non-empty bounding box")
        if resolution < 2:
            raise DiagramError("rasterize() requires resolution >= 2")

        if width >= height:
            columns = resolution
            rows = max(2, int(round(resolution * height / width)))
        else:
            rows = resolution
            columns = max(2, int(round(resolution * width / height)))

        lattice_x = RasterLattice.build(lower_left.x, width, columns)
        lattice_y = RasterLattice.build(lower_left.y, height, rows)

        if cache is not None and cache is not False:
            # Imported lazily: repro.raster sits above the model layer.
            from ..raster import rasterize_tiled, resolve_cache

            return rasterize_tiled(
                self.network, lattice_x, lattice_y, cache=resolve_cache(cache)
            )

        xs = lattice_x.centers()
        ys = lattice_y.centers()
        labels, sinr_values = raster_block(self.network, xs, ys)
        return RasterDiagram(
            xs=xs,
            ys=ys,
            labels=labels,
            sinr_values=sinr_values,
            pitch=(lattice_x.pitch, lattice_y.pitch),
        )

    def default_bounding_box(self, margin: float = 1.5) -> Tuple[Point, Point]:
        """A bounding box comfortably containing every bounded reception zone.

        The box covers all stations expanded by ``margin`` times the largest
        zone radius bound (or the station spread, whichever is larger).
        """
        locations = self.network.locations()
        xs = [p.x for p in locations]
        ys = [p.y for p in locations]
        spread = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
        pad = margin * spread
        return (
            Point(min(xs) - pad, min(ys) - pad),
            Point(max(xs) + pad, max(ys) + pad),
        )

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def summary(self, resolution: int = 300, *, cache=None) -> Dict[str, object]:
        """Coarse summary of the diagram (zone areas, coverage, fatness).

        Used by the experiment harness and examples for quick reporting; all
        quantities are raster estimates.  Passing ``cache`` (a
        :class:`repro.raster.TileCache` or ``True`` for the process default)
        serves the underlying raster from the tile cache, so repeated
        summaries of the same network recompute nothing.
        """
        lower_left, upper_right = self.default_bounding_box()
        raster = self.rasterize(
            lower_left, upper_right, resolution=resolution, cache=cache
        )
        zone_areas = {
            index: raster.zone_area(index) for index in range(len(self.network))
        }
        fatness: Dict[int, float] = {}
        for index, zone in enumerate(self.zones):
            if zone.is_degenerate or self.network.is_trivial():
                fatness[index] = math.nan
            else:
                fatness[index] = zone.fatness(angles=90).fatness
        return {
            "network": self.network.describe(),
            "zone_areas": zone_areas,
            "coverage_fraction": raster.coverage_fraction(),
            "fatness": fatness,
        }
