"""Reception zones ``H_i`` of an SINR diagram.

The reception zone of station ``s_i`` is the set of points where its SINR is
at least ``beta``, together with the station location itself (Section 2.2).
For non-trivial uniform power networks the zone is compact and strictly
contained in the Voronoi cell of its station (Observation 2.2), and for
``alpha = 2`` and ``beta >= 1`` it is convex (Theorem 1) and fat (Theorem 2).

:class:`ReceptionZone` wraps a network and a station index and provides the
membership predicate, boundary probing along rays (valid because the zone is
star-shaped with respect to its station, Lemma 3.1), polygonal boundary
approximation, and area / perimeter / fatness estimates built on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, List, Optional, Sequence, Tuple

from ..algebra.reception import ReceptionPolynomial
from ..exceptions import NetworkConfigurationError
from ..geometry.fatness import FatnessMeasurement
from ..geometry.point import Point
from ..geometry.polygon import Polygon
from .network import WirelessNetwork

__all__ = ["ReceptionZone"]


@dataclass(frozen=True)
class ReceptionZone:
    """The reception zone ``H_i`` of one station of a wireless network."""

    network: WirelessNetwork
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < len(self.network):
            raise NetworkConfigurationError(
                f"station index {self.index} out of range for network of size "
                f"{len(self.network)}"
            )

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def station_location(self) -> Point:
        """Location of the zone's station."""
        return self.network.station(self.index).location

    @property
    def is_degenerate(self) -> bool:
        """True when another station shares the location (zone = single point)."""
        return self.network.location_is_shared(self.index)

    @property
    def is_bounded(self) -> bool:
        """True unless the network is trivial (Observation 2.2)."""
        return not self.network.is_trivial()

    @cached_property
    def polynomial(self) -> ReceptionPolynomial:
        """The reception polynomial ``H`` of this zone (requires ``alpha = 2``)."""
        return self.network.reception_polynomial(self.index)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def contains(self, point: Point) -> bool:
        """Membership test: is the station heard at ``point``?"""
        return self.network.is_received(self.index, point)

    def __contains__(self, point: Point) -> bool:
        return self.contains(point)

    def sinr_at(self, point: Point) -> float:
        """SINR of the zone's station at ``point`` (undefined at stations)."""
        return self.network.sinr(self.index, point)

    def membership_predicate(self) -> Callable[[Point], bool]:
        """The zone as a bare predicate (used by generic geometry checkers)."""
        return self.contains

    # ------------------------------------------------------------------
    # Boundary probing (star-shape based)
    # ------------------------------------------------------------------
    def search_radius(self) -> float:
        """A radius guaranteed to contain the zone, centred at the station.

        For degenerate zones this is 0.  For bounded zones we use the explicit
        upper bound of Theorem 4.1 when ``beta > 1``; otherwise we fall back
        to a generous multiple of the distance to the nearest station, grown
        until the boundary is bracketed.
        """
        if self.is_degenerate:
            return 0.0
        kappa = self.network.minimum_distance_from(self.index)
        beta = self.network.beta
        noise = self.network.noise
        if beta > 1.0:
            return kappa / (math.sqrt(beta * (1.0 + noise * kappa * kappa)) - 1.0)
        # beta <= 1: the theorem's bound does not apply; grow a radius until
        # the point straight ahead is out of the zone (or give up and cap).
        radius = 4.0 * kappa
        center = self.station_location
        for _ in range(60):
            if not self.contains(Point(center.x - radius, center.y)):
                return radius
            radius *= 2.0
        return radius

    def boundary_distance_along_ray(
        self,
        angle: float,
        max_radius: Optional[float] = None,
        tolerance: float = 1e-10,
    ) -> float:
        """Distance from the station to the zone boundary along a ray.

        Lemma 3.1 (star shape): along any ray from the station the zone is an
        interval starting at the station, so the boundary distance is found by
        bisection.  ``max_radius`` defaults to :meth:`search_radius`.
        """
        if self.is_degenerate:
            return 0.0
        center = self.station_location
        direction = Point(math.cos(angle), math.sin(angle))
        high = max_radius if max_radius is not None else self.search_radius()
        if high <= 0.0:
            return 0.0
        if self.contains(center + direction * high):
            # Unbounded (trivial network) or max_radius underestimated; extend.
            for _ in range(60):
                high *= 2.0
                if not self.contains(center + direction * high):
                    break
            else:
                return math.inf
        low = 0.0
        while high - low > tolerance * max(1.0, high):
            middle = (low + high) / 2.0
            if self.contains(center + direction * middle):
                low = middle
            else:
                high = middle
        return (low + high) / 2.0

    def boundary_distances_along_rays(
        self,
        angles: "Sequence[float]",
        max_radius: Optional[float] = None,
        tolerance: float = 1e-10,
    ) -> "np.ndarray":
        """Vectorised :meth:`boundary_distance_along_ray` over many rays at once.

        The bisections of all rays advance in lockstep: every iteration
        evaluates one batch reception mask (:func:`repro.engine.batch.
        received_mask`) at the current midpoints, so a sweep of thousands of
        rays costs ``O(log(Delta / tol))`` engine calls instead of that many
        scalar SINR loops per ray.  The point-location preprocessing (measured
        radius bounds, ray-sweep boundary covers) runs through this path,
        which is what keeps builds on hundreds of stations tractable.

        Returns a float array of per-ray boundary distances (``inf`` where the
        zone turns out to be unbounded along a ray, as for trivial networks).
        """
        import numpy as np

        from ..engine import batch as engine_batch

        angle_array = np.asarray(angles, dtype=float).ravel()
        count = angle_array.size
        if self.is_degenerate or count == 0:
            return np.zeros(count, dtype=float)
        center = self.station_location
        directions = np.column_stack(
            (np.cos(angle_array), np.sin(angle_array))
        )
        origin = np.array([center.x, center.y], dtype=float)

        def inside_at(selector: np.ndarray, radii: np.ndarray) -> np.ndarray:
            points = origin + directions[selector] * radii[:, None]
            return engine_batch.received_mask(self.network, self.index, points)

        start = max_radius if max_radius is not None else self.search_radius()
        if start <= 0.0:
            return np.zeros(count, dtype=float)
        high = np.full(count, float(start))
        everything = np.ones(count, dtype=bool)
        # Rays still inside at max_radius: extend like the scalar probe does.
        unbounded = inside_at(everything, high)
        for _ in range(60):
            if not unbounded.any():
                break
            high[unbounded] *= 2.0
            unbounded[unbounded] = inside_at(unbounded, high[unbounded])
        low = np.zeros(count, dtype=float)
        active = ~unbounded
        while True:
            gaps = high[active] - low[active]
            scale = np.maximum(1.0, high[active])
            remaining = gaps > tolerance * scale
            if not remaining.any():
                break
            active[active] = remaining
            middle = (low[active] + high[active]) / 2.0
            hit = inside_at(active, middle)
            low[active] = np.where(hit, middle, low[active])
            high[active] = np.where(hit, high[active], middle)
        out = (low + high) / 2.0
        out[unbounded] = math.inf
        return out

    def boundary_point_along_ray(
        self, angle: float, max_radius: Optional[float] = None
    ) -> Point:
        """The boundary point in direction ``angle`` from the station."""
        distance = self.boundary_distance_along_ray(angle, max_radius)
        center = self.station_location
        return Point(
            center.x + distance * math.cos(angle),
            center.y + distance * math.sin(angle),
        )

    def boundary_polygon(self, vertices: int = 180) -> Polygon:
        """A polygonal approximation of the zone boundary.

        The polygon connects the boundary points along ``vertices`` equally
        spaced rays from the station.  For convex zones the polygon is an
        inscribed approximation whose area converges to the zone area.

        Raises:
            NetworkConfigurationError: for degenerate zones (single points).
        """
        if self.is_degenerate:
            raise NetworkConfigurationError(
                "a degenerate reception zone has no boundary polygon"
            )
        if vertices < 3:
            raise NetworkConfigurationError("boundary_polygon() needs >= 3 vertices")
        max_radius = self.search_radius()
        points = [
            self.boundary_point_along_ray(2.0 * math.pi * k / vertices, max_radius)
            for k in range(vertices)
        ]
        return Polygon(points)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def inscribed_radius(self, angles: int = 360) -> float:
        """``delta(s_i, H_i)``: radius of the largest centred inscribed ball."""
        if self.is_degenerate:
            return 0.0
        max_radius = self.search_radius()
        return min(
            self.boundary_distance_along_ray(2.0 * math.pi * k / angles, max_radius)
            for k in range(angles)
        )

    def enclosing_radius(self, angles: int = 360) -> float:
        """``Delta(s_i, H_i)``: radius of the smallest centred enclosing ball."""
        if self.is_degenerate:
            return 0.0
        max_radius = self.search_radius()
        return max(
            self.boundary_distance_along_ray(2.0 * math.pi * k / angles, max_radius)
            for k in range(angles)
        )

    def fatness(self, angles: int = 360) -> FatnessMeasurement:
        """The measured fatness parameters ``(delta, Delta, phi)`` of the zone."""
        if self.is_degenerate:
            return FatnessMeasurement(
                center=self.station_location, delta=0.0, Delta=0.0
            )
        max_radius = self.search_radius()
        radii = [
            self.boundary_distance_along_ray(2.0 * math.pi * k / angles, max_radius)
            for k in range(angles)
        ]
        return FatnessMeasurement(
            center=self.station_location, delta=min(radii), Delta=max(radii)
        )

    def area_estimate(self, vertices: int = 720) -> float:
        """Area of the zone, estimated from the boundary polygon."""
        if self.is_degenerate:
            return 0.0
        return self.boundary_polygon(vertices).area()

    def perimeter_estimate(self, vertices: int = 720) -> float:
        """Perimeter of the zone, estimated from the boundary polygon."""
        if self.is_degenerate:
            return 0.0
        return self.boundary_polygon(vertices).perimeter()
