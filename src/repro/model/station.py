"""Radio stations.

A station is a transmitter embedded at a point of the Euclidean plane with a
positive transmission power (Section 2.2).  In a *uniform power network* every
station transmits with power 1.  Stations are immutable; "moving" a station or
"silencing" it (as in Figure 1 of the paper) is modelled by constructing a new
network, which keeps the SINR diagram of a configuration a pure function of
that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point, as_point

__all__ = ["Station"]


@dataclass(frozen=True, slots=True)
class Station:
    """A transmitting radio station.

    Attributes:
        location: position of the station in the plane.
        power: transmission power ``psi > 0`` (1.0 in uniform power networks).
        name: optional human-readable label used by diagrams and reports.
    """

    location: Point
    power: float = 1.0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.power <= 0.0:
            raise NetworkConfigurationError(
                f"station power must be positive, got {self.power}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def at(x: float, y: float, power: float = 1.0, name: Optional[str] = None) -> "Station":
        """Create a station from raw coordinates."""
        return Station(location=Point(float(x), float(y)), power=power, name=name)

    @staticmethod
    def from_points(
        points: Sequence[Point | Tuple[float, float]],
        power: float = 1.0,
    ) -> Tuple["Station", ...]:
        """Create uniformly powered stations named ``s0, s1, ...`` from points."""
        return tuple(
            Station(location=as_point(point), power=power, name=f"s{i}")
            for i, point in enumerate(points)
        )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def x(self) -> float:
        return self.location.x

    @property
    def y(self) -> float:
        return self.location.y

    def distance_to(self, point: Point) -> float:
        """Euclidean distance from the station to ``point``."""
        return self.location.distance_to(point)

    def moved_to(self, location: Point) -> "Station":
        """A copy of this station at a new location."""
        return Station(location=location, power=self.power, name=self.name)

    def with_power(self, power: float) -> "Station":
        """A copy of this station with a different transmission power."""
        return Station(location=self.location, power=power, name=self.name)

    def label(self, index: int) -> str:
        """Display label: the explicit name if set, otherwise ``s<index>``."""
        return self.name if self.name is not None else f"s{index}"
