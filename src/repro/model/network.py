"""Wireless networks ``A = <S, psi, N, beta>`` (Section 2.2 of the paper).

The :class:`WirelessNetwork` bundles the station set with the background
noise, the reception threshold, and the path-loss exponent, and exposes the
SINR arithmetic, the reception predicate, the reception polynomial of eq. (2)
and the Lemma 2.3 transformation rule.  Networks are immutable; modifications
(silencing a station, moving one, adding one) return new networks, which is
how the library reproduces the step-by-step scenarios of Figures 1–4.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..algebra.reception import ReceptionPolynomial
from ..exceptions import NetworkConfigurationError
from ..geometry.kdtree import KDTree
from ..geometry.point import Point, as_point
from ..geometry.transform import SimilarityTransform
from ..geometry.voronoi import VoronoiDiagram
from .sinr import interference, received_energy, sinr_ratio
from .station import Station

__all__ = ["WirelessNetwork"]

#: The "textbook" path-loss exponent assumed by the paper's theorems.
DEFAULT_ALPHA = 2.0

#: The paper notes beta is typically around 6 and always assumed > 1.
DEFAULT_BETA = 6.0


@dataclass(frozen=True)
class WirelessNetwork:
    """An immutable wireless network ``<S, psi, N, beta>`` with path loss ``alpha``.

    Attributes:
        stations: the transmitting stations (at least two, per the paper).
        noise: background noise ``N >= 0``.
        beta: reception threshold (the paper assumes ``beta >= 1`` for its
            structural theorems; the class allows smaller values so that the
            non-convex regime of Figure 5 can be reproduced).
        alpha: path-loss exponent (structural theorems require ``alpha = 2``).
    """

    stations: Tuple[Station, ...]
    noise: float = 0.0
    beta: float = DEFAULT_BETA
    alpha: float = DEFAULT_ALPHA

    def __init__(
        self,
        stations: Sequence[Station],
        noise: float = 0.0,
        beta: float = DEFAULT_BETA,
        alpha: float = DEFAULT_ALPHA,
    ):
        if len(stations) < 2:
            raise NetworkConfigurationError(
                f"a wireless network needs at least two stations, got {len(stations)}"
            )
        if noise < 0.0:
            raise NetworkConfigurationError(f"noise must be non-negative, got {noise}")
        if beta <= 0.0:
            raise NetworkConfigurationError(f"beta must be positive, got {beta}")
        if alpha <= 0.0:
            raise NetworkConfigurationError(f"alpha must be positive, got {alpha}")
        object.__setattr__(self, "stations", tuple(stations))
        object.__setattr__(self, "noise", float(noise))
        object.__setattr__(self, "beta", float(beta))
        object.__setattr__(self, "alpha", float(alpha))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def uniform(
        points: Sequence[Point | Tuple[float, float]],
        noise: float = 0.0,
        beta: float = DEFAULT_BETA,
        alpha: float = DEFAULT_ALPHA,
    ) -> "WirelessNetwork":
        """A uniform power network (every station transmits with power 1)."""
        return WirelessNetwork(
            stations=Station.from_points(points),
            noise=noise,
            beta=beta,
            alpha=alpha,
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.stations)

    def station(self, index: int) -> Station:
        return self.stations[index]

    def locations(self) -> List[Point]:
        """Locations of every station, in index order."""
        return [station.location for station in self.stations]

    def powers(self) -> List[float]:
        """Transmission powers of every station, in index order."""
        return [station.power for station in self.stations]

    @property
    def coords(self) -> np.ndarray:
        """Station coordinates as a cached, read-only ``(n, 2)`` numpy array.

        Built once per network and reused by every batch query, so callers
        stop rebuilding arrays per query.  Networks are immutable — every
        "mutation" (:meth:`with_station`, :meth:`with_station_moved`, ...)
        returns a *new* network with a fresh cache, which is what keeps the
        cache trivially consistent.
        """
        cached = self.__dict__.get("_coords")
        if cached is None:
            cached = np.array([[s.x, s.y] for s in self.stations], dtype=float)
            cached.setflags(write=False)
            # Direct __dict__ assignment sidesteps the frozen-dataclass
            # __setattr__ guard; the array itself is read-only.
            self.__dict__["_coords"] = cached
        return cached

    def coordinates_array(self) -> np.ndarray:
        """Station coordinates as an ``(n, 2)`` numpy array (cached, read-only)."""
        return self.coords

    def powers_array(self) -> np.ndarray:
        """Transmission powers as a cached, read-only ``(n,)`` numpy array."""
        cached = self.__dict__.get("_powers")
        if cached is None:
            cached = np.array(self.powers(), dtype=float)
            cached.setflags(write=False)
            self.__dict__["_powers"] = cached
        return cached

    @property
    def coords32(self) -> np.ndarray:
        """:attr:`coords` rounded to a cached, read-only float32 ``(n, 2)`` array.

        The *screen* tier of the precision-tiered engine backends
        (:mod:`repro.engine.mixed_precision`) evaluates its fast float32 pass
        over these arrays; they are views of the same immutable network, so
        one cast per network serves every batch query.  The rounding loses
        up to half a float32 ulp per coordinate — screen results are never
        returned directly where that rounding could flip a decision (the
        margin test routes such points through the exact float64 path).
        """
        cached = self.__dict__.get("_coords32")
        if cached is None:
            cached = np.ascontiguousarray(self.coords, dtype=np.float32)
            cached.setflags(write=False)
            self.__dict__["_coords32"] = cached
        return cached

    @property
    def powers32(self) -> np.ndarray:
        """:meth:`powers_array` as a cached, read-only float32 ``(n,)`` array."""
        cached = self.__dict__.get("_powers32")
        if cached is None:
            cached = np.ascontiguousarray(self.powers_array(), dtype=np.float32)
            cached.setflags(write=False)
            self.__dict__["_powers32"] = cached
        return cached

    @property
    def fingerprint(self) -> str:
        """A cheap content fingerprint of everything reception depends on.

        Hashes the station coordinates and powers together with ``noise``,
        ``beta`` and ``alpha`` (station names are cosmetic and excluded), so
        two content-identical networks — e.g. the same layout rebuilt in a
        different process — share one fingerprint, while any "mutation"
        (:meth:`with_station`, :meth:`with_noise`, ...) yields a new network
        with a different one.  The raster tile cache keys tiles by this
        value, which is what makes a mutated network an automatic cache
        miss.  Computed once per network and cached like :attr:`coords`.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(
                np.array([self.noise, self.beta, self.alpha], dtype=float).tobytes()
            )
            digest.update(self.coords.tobytes())
            digest.update(self.powers_array().tobytes())
            cached = digest.hexdigest()
            self.__dict__["_fingerprint"] = cached
        return cached

    def is_uniform_power(self) -> bool:
        """True if every station transmits with power 1 (``psi = 1-bar``)."""
        return all(station.power == 1.0 for station in self.stations)

    def is_trivial(self) -> bool:
        """True for the paper's *trivial* network: 2 stations, N = 0, beta = 1.

        In a trivial uniform power network the reception zones are half-planes
        and in particular unbounded; every structural statement in the paper
        excludes this case explicitly.
        """
        return (
            len(self.stations) == 2
            and self.noise == 0.0
            and self.beta == 1.0
            and self.is_uniform_power()
        )

    def location_is_shared(self, index: int) -> bool:
        """True if another station occupies the same location as station ``index``.

        When this happens the reception zone degenerates to the single point
        ``{s_i}`` (Section 3.1).
        """
        target = self.stations[index].location
        return any(
            i != index and station.location == target
            for i, station in enumerate(self.stations)
        )

    def minimum_distance_from(self, index: int) -> float:
        """``kappa``: the minimum distance from station ``index`` to any other station."""
        target = self.stations[index].location
        return min(
            station.location.distance_to(target)
            for i, station in enumerate(self.stations)
            if i != index
        )

    # ------------------------------------------------------------------
    # SINR arithmetic
    # ------------------------------------------------------------------
    def energy(self, index: int, point: Point) -> float:
        """Energy of station ``index`` at ``point`` (``inf`` at the station itself)."""
        station = self.stations[index]
        return received_energy(station.location, station.power, point, self.alpha)

    def interference(self, index: int, point: Point) -> float:
        """Interference to station ``index`` at ``point``."""
        return interference(
            self.locations(), self.powers(), index, point, self.alpha
        )

    def sinr(self, index: int, point: Point) -> float:
        """The SINR of station ``index`` at ``point`` (undefined at stations)."""
        return sinr_ratio(
            self.locations(), self.powers(), index, point, self.noise, self.alpha
        )

    def is_received(self, index: int, point: Point) -> bool:
        """The fundamental reception rule: ``SINR(s_i, p) >= beta``.

        The reception zone includes the station location itself by definition
        even though the SINR ratio is undefined there.
        """
        station = self.stations[index]
        if point == station.location:
            return True
        for other_index, other in enumerate(self.stations):
            if other.location == point:
                # A point occupied by another station hears nothing but that
                # station's own transmission (SINR to others is zero there).
                return other_index == index
        return self.sinr(index, point) >= self.beta

    def strongest_station(self, point: Point) -> int:
        """Index of the station with the highest received energy at ``point``."""
        best_index = 0
        best_energy = -math.inf
        for index in range(len(self.stations)):
            energy = self.energy(index, point)
            if energy > best_energy:
                best_energy = energy
                best_index = index
        return best_index

    def heard_station(self, point: Point) -> Optional[int]:
        """Index of the station heard at ``point``, or None.

        At most one station can be heard at any point when ``beta >= 1``
        (its SINR being at least 1 forces every other station's SINR below 1).
        """
        for index in range(len(self.stations)):
            if self.is_received(index, point):
                return index
        return None

    # ------------------------------------------------------------------
    # Batch queries (delegated to the engine)
    # ------------------------------------------------------------------
    def sinr_batch(self, points, target_index: Optional[int] = None) -> np.ndarray:
        """Bulk SINR via :func:`repro.engine.batch.sinr_batch`."""
        from ..engine import batch

        return batch.sinr_batch(self, points, target_index=target_index)

    def received_mask(self, index: int, points) -> np.ndarray:
        """Bulk reception indicator of one station (:meth:`is_received` in bulk)."""
        from ..engine import batch

        return batch.received_mask(self, index, points)

    def heard_station_batch(self, points) -> np.ndarray:
        """Bulk :meth:`heard_station`; ``-1`` marks points where nothing is heard.

        For ``beta < 1`` (several stations may qualify) the highest-SINR
        station is reported, matching
        :meth:`repro.model.diagram.SINRDiagram.station_heard_at`; for the
        paper's ``beta >= 1`` regime the answer is the unique heard station,
        identical to the scalar :meth:`heard_station`.
        """
        from ..engine import batch

        return batch.heard_station_batch(self, points)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def reception_polynomial(self, index: int) -> ReceptionPolynomial:
        """The reception polynomial ``H(x, y)`` of station ``index`` (eq. (2)).

        Only defined for ``alpha = 2``, where reception is a polynomial
        inequality.
        """
        if self.alpha != 2.0:
            raise NetworkConfigurationError(
                "the reception polynomial is only defined for alpha = 2"
            )
        return ReceptionPolynomial(
            target_index=index,
            stations=self.locations(),
            powers=self.powers(),
            noise=self.noise,
            beta=self.beta,
        )

    def voronoi_diagram(self) -> VoronoiDiagram:
        """Voronoi diagram of the station locations (Observation 2.2).

        Built once per network and cached like :attr:`coords`; immutability
        keeps the cache consistent, and every mutator returns a fresh network
        whose diagram is rebuilt on first use.
        """
        cached = self.__dict__.get("_voronoi")
        if cached is None:
            cached = VoronoiDiagram(self.locations())
            self.__dict__["_voronoi"] = cached
        return cached

    def station_kdtree(self) -> KDTree:
        """A k-d tree over station locations for nearest-station queries.

        Cached per network, same contract as :meth:`voronoi_diagram`.
        """
        cached = self.__dict__.get("_kdtree")
        if cached is None:
            cached = KDTree(self.locations())
            self.__dict__["_kdtree"] = cached
        return cached

    # ------------------------------------------------------------------
    # Transformations (all return new networks)
    # ------------------------------------------------------------------
    def transformed(self, transform: SimilarityTransform) -> "WirelessNetwork":
        """Apply a similarity transform per Lemma 2.3.

        Station locations are mapped through ``transform`` and the noise is
        divided by the square of the scale factor, so that every SINR value is
        preserved: ``SINR_A(s_i, p) = SINR_f(A)(f(s_i), f(p))``.
        """
        new_stations = tuple(
            station.moved_to(transform.apply(station.location))
            for station in self.stations
        )
        return WirelessNetwork(
            stations=new_stations,
            noise=self.noise / transform.noise_factor(),
            beta=self.beta,
            alpha=self.alpha,
        )

    def without_station(self, index: int) -> "WirelessNetwork":
        """The network with station ``index`` silenced (removed)."""
        remaining = tuple(
            station for i, station in enumerate(self.stations) if i != index
        )
        return WirelessNetwork(
            stations=remaining, noise=self.noise, beta=self.beta, alpha=self.alpha
        )

    def with_station(self, station: Station) -> "WirelessNetwork":
        """The network with one extra transmitting station."""
        return WirelessNetwork(
            stations=self.stations + (station,),
            noise=self.noise,
            beta=self.beta,
            alpha=self.alpha,
        )

    def subnetwork(self, indices) -> "WirelessNetwork":
        """A station-subset view of this network (same noise, beta, alpha).

        Args:
            indices: the station indices to keep, in the order they should
                appear in the subnetwork (an array-like of at least two
                in-range indices; a repeated index yields co-located
                duplicate stations, i.e. degenerate zones).

        The sharded point-location subsystem partitions a network's stations
        spatially and builds one locator per shard over such views.  The
        cached :attr:`coords` / :meth:`powers_array` arrays of the parent are
        sliced (not rebuilt from the station objects), so creating many
        shard views of a large network stays cheap; both networks being
        immutable keeps the shared caches trivially consistent.

        Note the subnetwork's SINR arithmetic sees *only* the selected
        stations — interference from the dropped stations is gone, so for
        any station and point ``SINR_sub >= SINR_full``.  Exact sharded
        query answers re-verify candidates against the full network.
        """
        selector = np.asarray(indices, dtype=np.intp).ravel()
        if selector.size < 2:
            raise NetworkConfigurationError(
                f"a subnetwork needs at least two stations, got {selector.size}"
            )
        if selector.min() < 0 or selector.max() >= len(self.stations):
            raise NetworkConfigurationError(
                f"subnetwork indices out of range for {len(self.stations)} stations"
            )
        sub = WirelessNetwork(
            stations=tuple(self.stations[i] for i in selector.tolist()),
            noise=self.noise,
            beta=self.beta,
            alpha=self.alpha,
        )
        coords = self.coords[selector]
        coords.setflags(write=False)
        powers = self.powers_array()[selector]
        powers.setflags(write=False)
        sub.__dict__["_coords"] = coords
        sub.__dict__["_powers"] = powers
        return sub

    def with_station_moved(self, index: int, location: Point) -> "WirelessNetwork":
        """The network with station ``index`` relocated (Figure 1(B)).

        The coordinate cache of the copy is seeded by patching one row of
        this network's :attr:`coords` and the (unchanged) power array is
        shared outright — both are read-only, so sharing is safe, and a
        single-station move in a dynamic-network update loop stays ``O(n)``
        instead of re-deriving every array from the station objects.
        Everything location-dependent (``fingerprint``, ``coords32``, the
        kdtree/Voronoi caches) is left unseeded and rebuilds on first use.
        """
        stations = list(self.stations)
        stations[index] = stations[index].moved_to(location)
        moved = WirelessNetwork(
            stations=tuple(stations), noise=self.noise, beta=self.beta, alpha=self.alpha
        )
        coords = self.coords.copy()
        coords[index, 0] = moved.stations[index].x
        coords[index, 1] = moved.stations[index].y
        coords.setflags(write=False)
        moved.__dict__["_coords"] = coords
        moved.__dict__["_powers"] = self.powers_array()
        return moved

    def with_noise(self, noise: float) -> "WirelessNetwork":
        """The network with a different background noise.

        The station set is unchanged, so the copy shares this network's
        read-only coordinate and power arrays; the noise-dependent
        ``fingerprint`` is not seeded and recomputes on first use.
        """
        changed = WirelessNetwork(
            stations=self.stations, noise=noise, beta=self.beta, alpha=self.alpha
        )
        changed.__dict__["_coords"] = self.coords
        changed.__dict__["_powers"] = self.powers_array()
        return changed

    def with_beta(self, beta: float) -> "WirelessNetwork":
        """The network with a different reception threshold.

        Shares the read-only station arrays like :meth:`with_noise`.
        """
        changed = WirelessNetwork(
            stations=self.stations, noise=self.noise, beta=beta, alpha=self.alpha
        )
        changed.__dict__["_coords"] = self.coords
        changed.__dict__["_powers"] = self.powers_array()
        return changed

    def noise_folded_into_station(self, index: int) -> "WirelessNetwork":
        """Replace the background noise by an equivalent extra station.

        Section 3.4 / Section 4.1 trick: a station of power ``N * kappa^2``
        placed at the nearest other station's location produces energy exactly
        ``N`` at distance ``kappa`` from station ``index``; the analysis of
        the noisy network reduces to a noise-free network with one more
        station.  Returns an (n+1)-station noise-free network; if the noise is
        already zero the network is returned unchanged.
        """
        if self.noise == 0.0:
            return self
        kappa = self.minimum_distance_from(index)
        nearest = min(
            (
                (station.location.distance_to(self.stations[index].location), i)
                for i, station in enumerate(self.stations)
                if i != index
            ),
        )[1]
        extra = Station(
            location=self.stations[nearest].location,
            power=self.noise * kappa * kappa,
            name="noise",
        )
        return WirelessNetwork(
            stations=self.stations + (extra,),
            noise=0.0,
            beta=self.beta,
            alpha=self.alpha,
        )

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short human-readable summary of the network configuration."""
        kind = "uniform" if self.is_uniform_power() else "general"
        return (
            f"{kind} power network with {len(self.stations)} stations, "
            f"noise={self.noise:g}, beta={self.beta:g}, alpha={self.alpha:g}"
        )
