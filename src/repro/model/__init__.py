"""The SINR core: stations, networks, reception zones and SINR diagrams.

This package is the paper's primary contribution realised as a library: the
SINR model of Section 2.2 (:class:`WirelessNetwork`), the reception zones
``H_i`` whose convexity and fatness the paper proves
(:class:`ReceptionZone`), and the SINR diagram that partitions the plane into
reception zones (:class:`SINRDiagram`).
"""

from .delta import (
    NetworkDelta,
    add_station,
    diff_networks,
    move_station,
    remove_station,
)
from .diagram import NO_RECEPTION, RasterDiagram, SINRDiagram
from .network import DEFAULT_ALPHA, DEFAULT_BETA, WirelessNetwork
from .onedim import (
    OneDimensionalReception,
    colinear_reception_interval,
    is_positive_colinear,
    two_station_fatness_ratio,
    two_station_reception_interval,
)
from .reception import ReceptionZone
from .sinr import (
    interference,
    received_energy,
    sinr_map,
    sinr_ratio,
    strongest_station_map,
    total_energy,
)
from .station import Station

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "NO_RECEPTION",
    "NetworkDelta",
    "OneDimensionalReception",
    "RasterDiagram",
    "ReceptionZone",
    "SINRDiagram",
    "Station",
    "WirelessNetwork",
    "add_station",
    "colinear_reception_interval",
    "diff_networks",
    "move_station",
    "remove_station",
    "is_positive_colinear",
    "two_station_fatness_ratio",
    "two_station_reception_interval",
    "interference",
    "received_energy",
    "sinr_map",
    "sinr_ratio",
    "strongest_station_map",
    "total_energy",
]
