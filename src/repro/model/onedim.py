"""One-dimensional and colinear reception analysis (Section 4.2 of the paper).

The fatness proof reduces general uniform power networks to two successively
simpler settings, both implemented here because they are useful on their own
(and are exercised by the fatness benchmarks):

* **Two stations on a line** (Section 4.2.1, Figure 14).  With ``s_0`` at the
  origin with unit power and ``s_1`` at distance ``d`` with power
  ``psi_1 >= 1`` and no noise, the reception zone of ``s_0`` restricted to the
  line is the interval ``[mu_l, mu_r]`` with

      mu_r = d / (sqrt(beta * psi_1) + 1),
      mu_l = -d / (sqrt(beta * psi_1) - 1),

  and Lemma 4.3 gives ``Delta / delta = -mu_l / mu_r =
  (sqrt(beta psi_1) + 1) / (sqrt(beta psi_1) - 1)``, with equality attained at
  ``psi_1 = 1``.

* **Positive colinear networks** (Section 4.2.2, Figure 15).  All interferers
  sit on the positive x-axis; Lemma 4.4 shows that ``delta`` and ``Delta`` of
  station ``s_0`` are realised *on the axis*: ``delta = mu_r`` and
  ``Delta = -mu_l``, where ``mu_r`` / ``mu_l`` are the extreme points of the
  reception zone on the positive / negative x-axis.  This module computes
  those extreme points exactly from the reception polynomial restricted to the
  axis (Sturm isolation + bisection refinement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..algebra.sturm import isolate_real_roots, refine_root
from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point
from .network import WirelessNetwork

__all__ = [
    "OneDimensionalReception",
    "two_station_reception_interval",
    "two_station_fatness_ratio",
    "is_positive_colinear",
    "colinear_reception_interval",
]


@dataclass(frozen=True, slots=True)
class OneDimensionalReception:
    """The reception interval ``[mu_l, mu_r]`` of a station restricted to a line.

    ``delta = mu_r`` and ``Delta = -mu_l`` for positive colinear networks
    (Corollaries 4.6 and 4.7 of the paper).
    """

    mu_left: float
    mu_right: float

    @property
    def delta(self) -> float:
        """The inscribed radius realised on the positive axis."""
        return self.mu_right

    @property
    def Delta(self) -> float:
        """The enclosing radius realised on the negative axis."""
        return -self.mu_left

    @property
    def ratio(self) -> float:
        """The fatness ratio ``Delta / delta``."""
        if self.mu_right <= 0.0:
            return math.inf
        return -self.mu_left / self.mu_right

    @property
    def length(self) -> float:
        """Length of the reception interval on the line."""
        return self.mu_right - self.mu_left


def two_station_reception_interval(
    beta: float, interferer_power: float = 1.0, separation: float = 1.0
) -> OneDimensionalReception:
    """The closed-form reception interval of Section 4.2.1.

    Args:
        beta: reception threshold (> 1 for a bounded interval).
        interferer_power: power ``psi_1 >= 1`` of the interfering station.
        separation: distance ``d`` between the two stations.

    Raises:
        NetworkConfigurationError: if ``beta * psi_1 <= 1`` (the interval is
            unbounded on the left) or the separation is not positive.
    """
    if separation <= 0.0:
        raise NetworkConfigurationError("the two stations must be distinct")
    if interferer_power <= 0.0:
        raise NetworkConfigurationError("the interferer power must be positive")
    product = beta * interferer_power
    if product <= 1.0:
        raise NetworkConfigurationError(
            "beta * psi_1 must exceed 1 for a bounded reception interval"
        )
    root = math.sqrt(product)
    return OneDimensionalReception(
        mu_left=-separation / (root - 1.0),
        mu_right=separation / (root + 1.0),
    )


def two_station_fatness_ratio(beta: float, interferer_power: float = 1.0) -> float:
    """Lemma 4.3: ``Delta/delta = (sqrt(beta psi_1) + 1) / (sqrt(beta psi_1) - 1)``.

    The ratio is maximised (over ``psi_1 >= 1``) at ``psi_1 = 1``, where it
    equals the Theorem 4.2 bound.
    """
    product = beta * interferer_power
    if product <= 1.0:
        raise NetworkConfigurationError(
            "beta * psi_1 must exceed 1 for a finite fatness ratio"
        )
    root = math.sqrt(product)
    return (root + 1.0) / (root - 1.0)


def is_positive_colinear(network: WirelessNetwork, tolerance: float = 1e-12) -> bool:
    """True if the network is positive colinear in the sense of Section 4.2.2.

    Station 0 must sit at the origin and every other station on the strictly
    positive x-axis.
    """
    locations = network.locations()
    origin = locations[0]
    if abs(origin.x) > tolerance or abs(origin.y) > tolerance:
        return False
    return all(
        abs(location.y) <= tolerance and location.x > tolerance
        for location in locations[1:]
    )


def colinear_reception_interval(
    network: WirelessNetwork, tolerance: float = 1e-10
) -> OneDimensionalReception:
    """The exact interval ``[mu_l, mu_r]`` of station 0 of a positive colinear network.

    The reception polynomial of station 0 is restricted to the x-axis; its
    real roots are isolated with Sturm's condition and refined by bisection.
    ``mu_r`` is the smallest positive root (the zone cannot extend past the
    nearest interferer) and ``mu_l`` the negative root of largest magnitude
    inside the zone.

    Requires a uniform power, positive colinear network with ``alpha = 2`` and
    a bounded zone (``beta > 1`` or positive noise).
    """
    if not network.is_uniform_power():
        raise NetworkConfigurationError(
            "the colinear analysis assumes a uniform power network"
        )
    if not is_positive_colinear(network):
        raise NetworkConfigurationError("the network is not positive colinear")
    if network.beta <= 1.0 and network.noise == 0.0:
        raise NetworkConfigurationError(
            "the reception interval is unbounded for beta <= 1 without noise"
        )

    polynomial = network.reception_polynomial(0)
    axis_restriction = polynomial.restrict_to_parametric_line(
        Point(0.0, 0.0), Point(1.0, 0.0)
    )

    nearest = min(location.x for location in network.locations()[1:])
    # Bound the root search: the zone is contained in [-Delta_max, nearest),
    # where Delta_max follows from the Theorem 4.1 bound (or a generous
    # multiple of the nearest-station distance when noise bounds the zone).
    if network.beta > 1.0:
        left_reach = nearest / (math.sqrt(network.beta) - 1.0) * 1.5 + nearest
    else:
        left_reach = 4.0 / math.sqrt(network.noise) + nearest

    mu_right = _first_root_in(
        axis_restriction, 0.0, nearest * (1.0 - 1e-12), tolerance=tolerance
    )
    mu_left = _first_root_in(axis_restriction, -left_reach, 0.0, tolerance=tolerance)
    return OneDimensionalReception(mu_left=mu_left, mu_right=mu_right)


def _first_root_in(restriction, low: float, high: float, tolerance: float) -> float:
    """The smallest root of the axis restriction inside ``(low, high]``.

    On the positive side this is ``mu_r`` (the zone cannot reach the nearest
    interferer), and on the negative side it is ``mu_l`` (the restriction has
    a single negative root because the zone restricted to the axis is an
    interval).
    """
    intervals = isolate_real_roots(restriction, low, high)
    if not intervals:
        raise NetworkConfigurationError(
            "could not locate the reception interval boundary on the axis"
        )
    first_low, first_high = intervals[0]
    return refine_root(restriction, first_low, first_high, tolerance=tolerance)
