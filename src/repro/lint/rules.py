"""The project rules: ten machine-checked invariants of this codebase.

Each rule encodes a contract some subsystem's correctness depends on; the
table below (mirrored in the README and :mod:`repro.lint`) names the
subsystem that would break.  Rules are pure-AST — no imports of the code
under inspection — except RL001, which reads the *names* of the exception
taxonomy from :mod:`repro.exceptions` so the allowed set can never drift
from the real hierarchy.

=======  ==============================================================
RL001    Every ``raise`` constructs a ``ReproError`` subclass,
         ``TypeError`` or ``NotImplementedError``.
RL002    Instance attributes ever written under ``with self._lock``
         in a class are never written outside one.
RL003    No blocking calls (``time.sleep``, ``Future.result()``,
         ``subprocess.*``, ``open``) inside ``async def`` bodies.
RL004    Backend/locator selection state lives in a ``ContextVar``,
         never a rebindable module global.
RL005    ``engine.kernels`` batch-entry kernels are called only from
         inside ``engine/`` (everyone else goes through the chunked
         ``engine.batch`` API).
RL006    No global-state ``numpy.random`` calls; pass a ``Generator``.
RL007    No mutable default arguments.
RL008    float32 state stays inside the precision tier.
RL009    ``os.environ`` is read only by :mod:`repro.env`.
RL010    Registries and lifecycles build on :mod:`repro.runtime` — no
         raw ``ContextVar`` construction and no hand-rolled
         ``start``/``stop`` pair outside ``runtime/``.
=======  ==============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import FileContext, Finding, Rule

__all__ = ["default_rules", "rule_by_id", "ALL_RULE_CLASSES"]


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_table(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, for every import in the file.

    Relative imports keep their leading dots (``from ..engine import
    kernels`` maps ``kernels`` to ``..engine.kernels``); resolution by the
    rules is suffix-based, so the dots never get in the way.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return table


def _resolve(table: Dict[str, str], dotted: str) -> str:
    """Swap the head of ``dotted`` for its imported origin, if any."""
    head, separator, rest = dotted.partition(".")
    origin = table.get(head, head)
    return f"{origin}.{rest}" if separator else origin


# ---------------------------------------------------------------------------
# RL001 — exception taxonomy
# ---------------------------------------------------------------------------


def _allowed_exception_names() -> Set[str]:
    """The raisable names: the live ReproError hierarchy + the documented split."""
    from .. import exceptions as taxonomy

    allowed = {"TypeError", "NotImplementedError"}
    for name, obj in vars(taxonomy).items():
        if isinstance(obj, type) and issubclass(obj, taxonomy.ReproError):
            allowed.add(name)
    return allowed


class ExceptionTaxonomyRule(Rule):
    """RL001: raises construct a ReproError subclass, TypeError or NotImplementedError.

    The package-wide contract from :mod:`repro.exceptions`: callers separate
    library failures from programming errors with a single ``except
    ReproError``.  A stray ``ValueError``/``RuntimeError`` silently escapes
    that net.  Re-raising a caught exception object (``raise``, ``raise
    err``) is always allowed; lower-case names are assumed to be bound
    exception objects, capitalised non-taxonomy names are flagged.
    """

    rule_id = "RL001"
    title = "exception taxonomy"
    contract = (
        "every raise in src/repro constructs a ReproError subclass, TypeError "
        "or NotImplementedError, so `except ReproError` catches every library "
        "failure (exceptions.py documents the split)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed = _allowed_exception_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                name = _dotted_name(target.func)
                name = name.split(".")[-1] if name else None
            elif isinstance(target, ast.Name):
                name = target.id
            else:
                continue  # bare re-raise / attribute-held exception object
            # Lower-case names are bound exception objects or factories the
            # AST cannot see through; the taxonomy names are CapWords.
            if name is not None and name[:1].isupper() and name not in allowed:
                yield self.finding(
                    node,
                    f"raises {name}; raise a ReproError subclass (see "
                    f"repro/exceptions.py), TypeError or NotImplementedError",
                )


# ---------------------------------------------------------------------------
# RL002 — lock discipline
# ---------------------------------------------------------------------------


def _is_self_lock(expr: ast.AST) -> bool:
    """``self.<something containing 'lock'>``."""
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    )


class LockDisciplineRule(Rule):
    """RL002: attributes ever written under ``with self._lock`` stay under it.

    Guards :class:`repro.raster.cache.TileCache` and the engine/locator
    registries: one unguarded write to a counter or the store is a silent
    race under the service's executor threads.  ``__init__``/``__new__``
    may initialise freely, and helpers named ``*_locked`` are treated as
    running with the lock held (their callers own the acquisition —
    ``TileCache._insert_locked`` is the pattern).
    """

    rule_id = "RL002"
    title = "lock discipline"
    contract = (
        "an instance attribute written under `with self._lock` anywhere in a "
        "class is never written outside one (except __init__/__new__ and "
        "*_locked helpers, which run with the lock already held)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(ctx, cls)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        locked: Set[str] = set()
        unlocked: List[Tuple[str, str, ast.AST]] = []
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan(method.body, inside_lock=False, method=method.name,
                           locked=locked, unlocked=unlocked)
        for method_name, attr, node in unlocked:
            if attr not in locked:
                continue
            if method_name in ("__init__", "__new__"):
                continue
            if method_name.endswith("_locked"):
                continue
            yield self.finding(
                node,
                f"self.{attr} is written under self._lock elsewhere in class "
                f"{cls.name!r} but written here without it (move it under the "
                f"lock, or into __init__ / a *_locked helper)",
            )

    def _scan(
        self,
        body: Sequence[ast.stmt],
        inside_lock: bool,
        method: str,
        locked: Set[str],
        unlocked: List[Tuple[str, str, ast.AST]],
    ) -> None:
        for node in body:
            entered = inside_lock
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(_is_self_lock(item.context_expr) for item in node.items):
                    entered = True
            for attr, site in self._writes(node):
                if inside_lock:
                    locked.add(attr)
                else:
                    unlocked.append((method, attr, site))
            for child_body in self._child_bodies(node):
                self._scan(child_body, entered, method, locked, unlocked)

    @staticmethod
    def _child_bodies(node: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for name in ("body", "orelse", "finalbody"):
            block = getattr(node, name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(node, "handlers", ()):
            yield handler.body

    @staticmethod
    def _writes(node: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
        """Direct ``self.X = ...`` / ``del self.X`` writes of one statement."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, target


# ---------------------------------------------------------------------------
# RL003 — async purity
# ---------------------------------------------------------------------------


class AsyncPurityRule(Rule):
    """RL003: no blocking calls directly inside ``async def`` bodies.

    Scoped to ``service/``, ``workloads/`` and ``obs/`` (the asyncio tier):
    one ``time.sleep`` or ``future.result()`` on the event loop stalls every
    batcher deadline and metrics tick at once.  Nested *sync* ``def``
    helpers are skipped — they are what the dispatch executor threads run.
    """

    rule_id = "RL003"
    title = "async purity"
    contract = (
        "async def bodies in service/, workloads/ and obs/ never call "
        "time.sleep, subprocess.*, open() or Future.result() — blocking work "
        "belongs on the dispatch executor, awaits on the loop"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("service/", "workloads/", "obs/"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._scan_async_body(ctx, node.body, table)

    def _scan_async_body(
        self, ctx: FileContext, body: Sequence[ast.stmt], table: Dict[str, str]
    ) -> Iterator[Finding]:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # sync helpers run off-loop; nested async walked by check()
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, table)
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(
        self, ctx: FileContext, node: ast.Call, table: Dict[str, str]
    ) -> Iterator[Finding]:
        func = node.func
        dotted = _dotted_name(func)
        resolved = _resolve(table, dotted) if dotted else None
        if resolved == "time.sleep":
            yield self.finding(
                node, "time.sleep() blocks the event loop; await asyncio.sleep()"
            )
        elif resolved is not None and (
            resolved == "subprocess" or resolved.startswith("subprocess.")
        ):
            yield self.finding(
                node,
                "subprocess calls block the event loop; use "
                "asyncio.create_subprocess_* or an executor",
            )
        elif isinstance(func, ast.Name) and func.id == "open":
            yield self.finding(
                node,
                "open() performs blocking I/O on the event loop; use an "
                "executor (loop.run_in_executor)",
            )
        elif isinstance(func, ast.Attribute) and func.attr == "result":
            yield self.finding(
                node,
                "Future.result() blocks the event loop; await the future (or "
                "resolve it on the dispatch thread)",
            )


# ---------------------------------------------------------------------------
# RL004 — selection discipline
# ---------------------------------------------------------------------------

_SELECTION_NAME = re.compile(r"(^|_)(selection|selected|active|current)(_|$)")


class SelectionDisciplineRule(Rule):
    """RL004: selection state is a ContextVar, never a rebindable global.

    The exact bug class PR 2 fixed: a module-global active-backend variable
    leaks one thread's ``use_backend`` choice into every other thread and
    async task.  Flags module-level selection-named assignments whose value
    is not ``ContextVar(...)``, and any ``global`` rebinding of a
    selection-named variable.
    """

    rule_id = "RL004"
    title = "selection discipline"
    contract = (
        "module-global backend/locator selection state (names containing "
        "'selection'/'selected'/'active'/'current') must be a "
        "contextvars.ContextVar; `global` rebinding of such names is a "
        "cross-thread/task leak"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if not _SELECTION_NAME.search(target.id):
                    continue
                if not self._is_contextvar(node.value):
                    yield self.finding(
                        node,
                        f"module-global selection state {target.id!r} must be "
                        f"a contextvars.ContextVar (per-thread/task isolation), "
                        f"not a plain global",
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if _SELECTION_NAME.search(name):
                        yield self.finding(
                            node,
                            f"`global {name}` rebinds selection state shared "
                            f"by every thread and async task; store it in a "
                            f"ContextVar instead",
                        )

    @staticmethod
    def _is_contextvar(value: Optional[ast.expr]) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = _dotted_name(value.func)
        return name is not None and name.split(".")[-1] == "ContextVar"


# ---------------------------------------------------------------------------
# RL005 — chunking discipline
# ---------------------------------------------------------------------------

#: The kernels wrapped by the chunked entry points of repro.engine.batch;
#: calling one directly materialises unbounded (n_stations, m) temporaries.
_ENTRY_KERNELS = frozenset(
    {
        "energy_matrix",
        "sinr_matrix",
        "strongest_station",
        "received_mask_matrix",
        "heard_station",
        "received_mask_row",
        "received_mask_at",
    }
)


def _is_kernels_module(origin: str) -> bool:
    normalized = origin.lstrip(".")
    return normalized == "engine.kernels" or normalized.endswith(".engine.kernels")


class ChunkingDisciplineRule(Rule):
    """RL005: batch-entry kernels are called only from inside ``engine/``.

    ``repro.engine.batch`` tiles every query so kernel temporaries fit
    ``REPRO_ENGINE_CHUNK_BYTES``; a direct ``kernels.sinr_matrix`` call from
    another layer silently reopens the unbounded-peak-memory path PR 6
    closed.  Helper kernels (e.g. ``pairwise_squared_distances``) are not
    batch entries and stay callable.
    """

    rule_id = "RL005"
    title = "chunking discipline"
    contract = (
        "no engine.kernels batch-entry calls (sinr_matrix, heard_station, ...) "
        "from outside engine/ — use repro.engine.batch, which enforces the "
        "REPRO_ENGINE_CHUNK_BYTES memory bound"
    )

    def applies_to(self, relpath: str) -> bool:
        return not relpath.startswith("engine/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                origin = "." * node.level + (node.module or "")
                if _is_kernels_module(origin):
                    for alias in node.names:
                        if alias.name in _ENTRY_KERNELS:
                            yield self.finding(
                                node,
                                f"importing batch-entry kernel "
                                f"{alias.name!r} outside engine/; call "
                                f"repro.engine.batch instead (chunk budget)",
                            )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None or "." not in dotted:
                    continue
                resolved = _resolve(table, dotted)
                head, _, entry = resolved.rpartition(".")
                if entry in _ENTRY_KERNELS and _is_kernels_module(head):
                    yield self.finding(
                        node,
                        f"direct kernels.{entry}() call bypasses the chunk "
                        f"byte budget; route through repro.engine.batch",
                    )


# ---------------------------------------------------------------------------
# RL006 — seeded RNG
# ---------------------------------------------------------------------------

#: numpy.random names that do NOT touch the global BitGenerator.
_SEEDED_RANDOM_OK = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class SeededRngRule(Rule):
    """RL006: no global-state ``numpy.random`` use; pass a ``Generator``.

    Workload generators and partitioners must be reproducible from an
    explicit seed; ``np.random.shuffle`` et al. mutate hidden process-wide
    state that any import can perturb.  Constructors (``default_rng``,
    ``Generator``, bit generators) are fine.
    """

    rule_id = "RL006"
    title = "seeded RNG"
    contract = (
        "no global-state numpy.random calls in src/ (np.random.seed/rand/"
        "shuffle/...); take a numpy.random.Generator parameter, constructed "
        "via default_rng(seed)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                origin = ("." * node.level + (node.module or "")).lstrip(".")
                if origin == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _SEEDED_RANDOM_OK and alias.name != "*":
                            yield self.finding(
                                node,
                                f"numpy.random.{alias.name} uses the global "
                                f"RNG; pass a seeded numpy.random.Generator",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted is None:
                    continue
                resolved = _resolve(table, dotted)
                parts = resolved.split(".")
                if (
                    len(parts) == 3
                    and parts[0] == "numpy"
                    and parts[1] == "random"
                    and parts[2] not in _SEEDED_RANDOM_OK
                ):
                    yield self.finding(
                        node,
                        f"numpy.random.{parts[2]} uses the global RNG; pass a "
                        f"seeded numpy.random.Generator instead",
                    )


# ---------------------------------------------------------------------------
# RL007 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "OrderedDict", "defaultdict", "deque",
     "Counter"}
)


class MutableDefaultRule(Rule):
    """RL007: no mutable default arguments."""

    rule_id = "RL007"
    title = "mutable defaults"
    contract = (
        "no list/dict/set (literal or constructor) default arguments — one "
        "default object is shared by every call; default to None and "
        "construct inside the function"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and build it inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS
        return False


# ---------------------------------------------------------------------------
# RL008 — float32 containment
# ---------------------------------------------------------------------------

#: Files allowed to hold float32 state: the screen tier computes with it,
#: the network owns the cached views every screen consumes.
_FLOAT32_FILES = frozenset(
    {"engine/mixed_precision.py", "engine/gpu_backend.py", "model/network.py"}
)

# The token set below necessarily spells the tokens it polices.
_FLOAT32_TOKENS = frozenset({"float32", "coords32", "powers32"})  # reprolint: disable=RL008


class Float32ContainmentRule(Rule):
    """RL008: float32 state stays inside the precision tier.

    The mixed-precision guarantee is *exact by construction*: float32 is a
    screen whose uncertain points are re-verified in float64.  That holds
    only while no other layer computes in float32 — one stray cast turns
    bit-identical answers into approximately-right ones.  Matching is on
    exact identifiers/attributes/keywords/string literals, so names that
    merely mention the tier (``Float32ScreenBackend``) pass.
    """

    rule_id = "RL008"
    title = "float32 containment"
    contract = (
        "float32/coords32/powers32 are referenced only by "
        "engine/mixed_precision.py, engine/gpu_backend.py and the cached "
        "views in model/network.py — everything else computes in float64"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath not in _FLOAT32_FILES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            token: Optional[str] = None
            if isinstance(node, ast.Name) and node.id in _FLOAT32_TOKENS:
                token = node.id
            elif isinstance(node, ast.Attribute) and node.attr in _FLOAT32_TOKENS:
                token = node.attr
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in _FLOAT32_TOKENS
            ):
                token = node.value
            elif isinstance(node, ast.keyword) and node.arg in _FLOAT32_TOKENS:
                token = node.arg
            elif isinstance(node, ast.arg) and node.arg in _FLOAT32_TOKENS:
                token = node.arg
            if token is not None:
                yield self.finding(
                    node,
                    f"{token!r} outside the precision tier "
                    f"({', '.join(sorted(_FLOAT32_FILES))}); the exact-by-"
                    f"construction guarantee depends on float32 containment",
                )


# ---------------------------------------------------------------------------
# RL009 — environment-variable registry
# ---------------------------------------------------------------------------


class EnvRegistryRule(Rule):
    """RL009: every environment read goes through :mod:`repro.env`.

    Knobs must be enumerable (the coming adaptive-control layer tunes them
    programmatically); a stray ``os.environ.get`` is a knob no inventory,
    doc table or sweep will ever see.
    """

    rule_id = "RL009"
    title = "env-var registry"
    contract = (
        "os.environ / os.getenv are read only inside repro/env.py, which "
        "declares every knob (name, default, description) so configuration "
        "is enumerable"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath != "env.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                origin = ("." * node.level + (node.module or "")).lstrip(".")
                if origin == "os":
                    for alias in node.names:
                        if alias.name in ("environ", "getenv", "putenv"):
                            yield self.finding(
                                node,
                                f"importing os.{alias.name} outside repro/"
                                f"env.py; read knobs via repro.env.read_knob",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted is None:
                    continue
                resolved = _resolve(table, dotted)
                if resolved in ("os.environ", "os.getenv", "os.putenv") or (
                    resolved.startswith("os.environ.")
                ):
                    yield self.finding(
                        node,
                        f"{resolved} outside repro/env.py; declare the knob in "
                        f"repro.env.KNOBS and read it via read_knob()",
                    )


# ---------------------------------------------------------------------------
# RL010 — one runtime
# ---------------------------------------------------------------------------


class UnifiedRuntimeRule(Rule):
    """RL010: registries and lifecycles build on ``repro.runtime``, not ad hoc.

    The runtime unification collapsed two hand-rolled ContextVar
    registries and half a dozen start/stop state machines into
    :mod:`repro.runtime`.  This rule keeps them collapsed: outside
    ``runtime/``, constructing a raw ``ContextVar`` (the seed of an ad-hoc
    selection registry) or defining a class with its own ``start``/``stop``
    pair (the seed of an ad-hoc lifecycle) re-grows exactly the machinery
    that was unified.  ``contextvars.copy_context()`` — how the service
    tier ships selections to executor threads — is not a construction and
    stays allowed.
    """

    rule_id = "RL010"
    title = "one runtime"
    contract = (
        "outside runtime/, no raw contextvars.ContextVar construction "
        "(instantiate a repro.runtime.Registry) and no class defining both "
        "start() and stop() (subclass repro.runtime.Component and implement "
        "_do_start/_do_stop)"
    )

    def applies_to(self, relpath: str) -> bool:
        return not relpath.startswith("runtime/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                resolved = _resolve(table, dotted)
                if resolved == "contextvars.ContextVar" or resolved.endswith(
                    ".contextvars.ContextVar"
                ):
                    yield self.finding(
                        node,
                        "raw ContextVar construction outside runtime/ is an "
                        "ad-hoc selection registry; instantiate "
                        "repro.runtime.Registry instead",
                    )
            elif isinstance(node, ast.ClassDef):
                methods = {
                    member.name
                    for member in node.body
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if "start" in methods and "stop" in methods:
                    yield self.finding(
                        node,
                        f"class {node.name!r} defines its own start/stop pair "
                        f"outside runtime/; subclass repro.runtime.Component "
                        f"and implement _do_start/_do_stop so the lifecycle "
                        f"guards stay uniform",
                    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ALL_RULE_CLASSES: Tuple[type, ...] = (
    ExceptionTaxonomyRule,
    LockDisciplineRule,
    AsyncPurityRule,
    SelectionDisciplineRule,
    ChunkingDisciplineRule,
    SeededRngRule,
    MutableDefaultRule,
    Float32ContainmentRule,
    EnvRegistryRule,
    UnifiedRuntimeRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every project rule, in rule-id order."""
    return [cls() for cls in ALL_RULE_CLASSES]


def rule_by_id(rule_id: str) -> Rule:
    """Instantiate one rule by its ``RLxxx`` id."""
    for cls in ALL_RULE_CLASSES:
        if cls.rule_id == rule_id:
            return cls()
    from ..exceptions import LintError

    known = ", ".join(cls.rule_id for cls in ALL_RULE_CLASSES)
    raise LintError(f"unknown rule id {rule_id!r}; known rules: {known}")
