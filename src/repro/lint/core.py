"""The reprolint framework: rules, findings, suppression, baseline, runner.

Everything here is rule-agnostic machinery.  A :class:`Rule` is a small
object that inspects one parsed file (:class:`FileContext`) and yields
:class:`Finding` records; the concrete project rules live in
:mod:`repro.lint.rules`.  The runner (:func:`run_lint`) walks the requested
paths, parses every ``*.py`` file once, applies each rule that is in scope
for the file, and then filters the findings through the two escape hatches:

* **inline suppression** — ``# reprolint: disable=RL001`` on the flagged
  line (or ``# reprolint: disable-file=RL001`` anywhere in the file)
  silences the named rules, for findings whose justification is obvious in
  context;
* **the committed baseline** — entries in ``baseline.json`` match findings
  by rule id, path suffix and the *text* of the flagged line (so baselines
  survive unrelated line drift), and every entry must carry a written
  justification.

A file that does not parse produces a single ``RL000`` finding instead of
crashing the run: a syntax error in the tree is itself a finding.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import LintError

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "BaselineEntry",
    "package_relative",
    "parse_source",
    "check_source",
    "iter_python_files",
    "load_baseline",
    "run_lint",
    "LintReport",
]

#: Rule id reserved for files the parser rejects.
PARSE_ERROR_RULE = "RL000"

_DISABLE_LINE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source line."""

    rule: str
    path: str
    line: int
    message: str
    #: Stripped text of the flagged source line; the baseline matches on it
    #: so entries survive unrelated line-number drift.
    line_text: str = ""

    def render(self) -> str:
        """The one-line human form ``path:line: RLxxx message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "line_text": self.line_text,
        }


def package_relative(path: "str | Path") -> str:
    """A path's position inside the ``repro`` package, as a posix string.

    ``src/repro/engine/batch.py`` becomes ``engine/batch.py`` — the form
    every scoped rule reasons about.  Paths that do not pass through a
    ``repro`` directory (in-memory fixtures, scratch files) are returned
    as given, so tests can hand synthetic paths like ``"service/x.py"``
    straight to scoped rules.
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        cut = len(parts) - 1 - parts[::-1].index("repro")
        tail = parts[cut + 1 :]
        if tail:
            return "/".join(tail)
    return "/".join(p for p in parts if p not in (".", ""))


@dataclass
class FileContext:
    """One parsed file, shared by every rule that inspects it."""

    path: str
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line_text(self, lineno: int) -> str:
        """Stripped source text of 1-based ``lineno`` (empty when absent)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``rule_id`` / ``title`` / ``contract`` and implement
    :meth:`check`.  ``contract`` is the one-paragraph statement of the
    project invariant the rule enforces — it is what ``--list-rules``
    prints, so keep it self-contained.
    """

    rule_id: str = "RL000"
    title: str = ""
    contract: str = ""

    #: The file being checked; bound by :meth:`run` so :meth:`finding` can
    #: anchor records without every helper threading the context through.
    _ctx: Optional[FileContext] = None

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule inspects the file at package-relative ``relpath``."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        """Check ``ctx`` with the context bound (the framework entry point)."""
        self._ctx = ctx
        try:
            yield from self.check(ctx)
        finally:
            self._ctx = None

    def finding(self, node: "ast.AST | int", message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line number)."""
        ctx = self._ctx
        if ctx is None:
            raise LintError(
                f"{self.rule_id}.finding() used outside run(); go through "
                f"check_source/run_lint"
            )
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=line,
            message=message,
            line_text=ctx.line_text(line),
        )


def parse_source(source: str, path: "str | Path") -> "FileContext | Finding":
    """Parse ``source`` into a :class:`FileContext`, or an RL000 finding."""
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        line = error.lineno or 1
        lines = source.splitlines()
        text = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        return Finding(
            rule=PARSE_ERROR_RULE,
            path=posix,
            line=line,
            message=f"file does not parse: {error.msg}",
            line_text=text,
        )
    return FileContext(
        path=posix,
        relpath=package_relative(posix),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def _suppressions(ctx: FileContext) -> Tuple[Dict[int, set], set]:
    """Inline suppressions: per-line rule ids and file-wide rule ids."""
    per_line: Dict[int, set] = {}
    per_file: set = set()
    for index, text in enumerate(ctx.lines, start=1):
        if "reprolint" not in text:
            continue
        match = _DISABLE_LINE.search(text)
        if match:
            per_line[index] = {
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            }
        match = _DISABLE_FILE.search(text)
        if match:
            per_file.update(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
    return per_line, per_file


def _dedupe(findings: Iterable[Finding]) -> List[Finding]:
    """Keep one finding per (rule, path, line): rules may hit a line twice."""
    seen: set = set()
    out: List[Finding] = []
    for item in findings:
        key = (item.rule, item.path, item.line)
        if key not in seen:
            seen.add(key)
            out.append(item)
    return out


def check_source(
    source: str,
    path: "str | Path",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` over in-memory ``source`` (the fixture-test entry point).

    Applies inline suppressions but no baseline; returns findings sorted by
    line.  ``rules`` defaults to every registered project rule.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    parsed = parse_source(source, path)
    if isinstance(parsed, Finding):
        return [parsed]
    per_line, per_file = _suppressions(parsed)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(parsed.relpath):
            continue
        for item in rule.run(parsed):
            if item.rule in per_file:
                continue
            if item.rule in per_line.get(item.line, ()):
                continue
            findings.append(item)
    return sorted(_dedupe(findings), key=lambda f: (f.path, f.line, f.rule))


def iter_python_files(paths: Sequence["str | Path"]) -> List[Path]:
    """Every ``*.py`` file under ``paths`` (files taken as-is), sorted."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return out


@dataclass(frozen=True)
class BaselineEntry:
    """One justified legacy finding the linter tolerates.

    Matches a finding when the rule id is equal, the finding's path *ends
    with* ``path`` (so absolute and relative invocations agree), and the
    stripped text of the flagged line equals ``line_text``.
    """

    rule: str
    path: str
    line_text: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and Path(finding.path).as_posix().endswith(self.path)
            and finding.line_text == self.line_text
        )


def load_baseline(path: "str | Path") -> List[BaselineEntry]:
    """Read and validate a baseline file (a JSON list of entry objects)."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise LintError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(raw, list):
        raise LintError(f"baseline {path} must be a JSON list of entries")
    entries: List[BaselineEntry] = []
    for item in raw:
        missing = {"rule", "path", "line_text", "justification"} - set(item)
        if missing:
            raise LintError(
                f"baseline entry {item!r} is missing keys: {sorted(missing)}"
            )
        if not str(item["justification"]).strip():
            raise LintError(
                f"baseline entry for {item['rule']} at {item['path']} needs a "
                f"non-empty written justification"
            )
        entries.append(
            BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                line_text=str(item["line_text"]),
                justification=str(item["justification"]),
            )
        )
    return entries


@dataclass
class LintReport:
    """Everything one :func:`run_lint` invocation produced."""

    findings: List[Finding]
    baselined: List[Finding]
    checked_files: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, object]:
        return {
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
            "checked_files": self.checked_files,
            "clean": self.clean,
        }


def run_lint(
    paths: Sequence["str | Path"],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Sequence[BaselineEntry]] = None,
) -> LintReport:
    """Lint every python file under ``paths`` and fold in the baseline."""
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    files = iter_python_files(paths)
    live: List[Finding] = []
    matched: List[Finding] = []
    for path in files:
        findings = check_source(path.read_text(), path, rules)
        for finding in findings:
            if baseline and any(entry.matches(finding) for entry in baseline):
                matched.append(finding)
            else:
                live.append(finding)
    return LintReport(findings=live, baselined=matched, checked_files=len(files))
