"""reprolint — AST-checked invariants of the repro codebase.

Six PRs of growth left the system's load-bearing contracts — lock
discipline, contextvar-only selection, chunk-budgeted kernel entry, float32
containment, the exception taxonomy — implicit in docstrings.  This package
turns them into machine-checked rules, in the spirit of encoding protocol
invariants in a decidable fragment so a tool (not a reviewer) certifies
them.  The rule matrix:

======  ====================  =============================================
Rule    Contract              Guards
======  ====================  =============================================
RL001   exception taxonomy    ``except ReproError`` catches every library
                              failure (``repro/exceptions.py`` split)
RL002   lock discipline       ``TileCache`` counters/store, both registries:
                              attrs written under ``self._lock`` stay there
RL003   async purity          the service tier: no ``time.sleep`` /
                              ``Future.result()`` / ``subprocess`` /
                              ``open()`` on the event loop
RL004   selection discipline  backend/locator selection is a ``ContextVar``
                              (the module-global leak PR 2 fixed)
RL005   chunking discipline   batch-entry kernels only via
                              ``repro.engine.batch`` (chunk byte budget)
RL006   seeded RNG            reproducibility: pass a ``Generator``, never
                              the global ``numpy.random`` state
RL007   mutable defaults      no shared-across-calls default objects
RL008   float32 containment   the precision tier's exact-by-construction
                              guarantee
RL009   env-var registry      every knob declared in :mod:`repro.env`,
                              hence enumerable
RL010   one runtime           registries and lifecycles build on
                              :mod:`repro.runtime` — no raw ``ContextVar``
                              construction, no ad-hoc ``start``/``stop``
                              pair outside ``runtime/``
======  ====================  =============================================

Run it as ``python -m repro.lint [paths]`` (exit 0 = clean; ``--json`` for
machine output, ``--list-rules`` for the contracts).  Suppress one finding
with ``# reprolint: disable=RLxxx`` on its line, a whole file with
``# reprolint: disable-file=RLxxx``, or add a justified entry to the
committed ``baseline.json``.  The tier-1 suite pins ``src/repro`` at zero
live findings (``tests/test_lint_clean.py``), so a contract violation fails
CI the same way a broken unit test does.
"""

from __future__ import annotations

from .core import (
    BaselineEntry,
    FileContext,
    Finding,
    LintReport,
    Rule,
    check_source,
    load_baseline,
    package_relative,
    run_lint,
)
from .rules import ALL_RULE_CLASSES, default_rules, rule_by_id

__all__ = [
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "check_source",
    "load_baseline",
    "package_relative",
    "run_lint",
    "ALL_RULE_CLASSES",
    "default_rules",
    "rule_by_id",
]
