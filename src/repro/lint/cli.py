"""The ``python -m repro.lint`` command line.

Usage::

    python -m repro.lint [paths ...] [--json] [--select RL001,RL005]
                         [--baseline FILE | --no-baseline] [--list-rules]

* paths default to ``src`` (falling back to ``.`` when no ``src`` exists),
  so the CI invocation is simply ``python -m repro.lint src``;
* the committed baseline (``src/repro/lint/baseline.json``) is applied by
  default; ``--no-baseline`` shows every finding, ``--baseline`` points at
  an alternative file;
* exit code 0 means clean (baselined findings do not count), 1 means live
  findings, 2 means the invocation itself was unusable (unknown rule id,
  missing path, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..exceptions import LintError
from .core import BaselineEntry, LintReport, load_baseline, run_lint
from .rules import ALL_RULE_CLASSES, default_rules, rule_by_id

__all__ = ["main", "build_parser"]

#: The baseline shipped with the package (committed, justified entries).
DEFAULT_BASELINE = Path(__file__).with_name("baseline.json")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprolint: AST-checked project invariants for repro/",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src, else .)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report on stdout instead of one line per finding",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file to apply (default: {DEFAULT_BASELINE.name} "
        f"shipped with the package)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title and contract, then exit",
    )
    return parser


def _resolve_rules(select: Optional[str]):
    if select is None:
        return default_rules()
    return [rule_by_id(rule_id.strip()) for rule_id in select.split(",") if rule_id.strip()]


def _resolve_baseline(args: argparse.Namespace) -> List[BaselineEntry]:
    if args.no_baseline:
        return []
    if args.baseline is not None:
        return load_baseline(args.baseline)
    if DEFAULT_BASELINE.exists():
        return load_baseline(DEFAULT_BASELINE)
    return []


def _render_human(report: LintReport, out) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.checked_files} file(s) checked"
    )
    print(("FAIL: " if report.findings else "OK: ") + summary, file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Run the linter; returns the process exit code (never raises SystemExit
    itself — argparse may, on malformed flags)."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULE_CLASSES:
            print(f"{cls.rule_id}  {cls.title}", file=out)
            print(f"       {cls.contract}", file=out)
        return EXIT_CLEAN

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    try:
        rules = _resolve_rules(args.select)
        baseline = _resolve_baseline(args)
        report = run_lint(paths, rules=rules, baseline=baseline)
    except LintError as error:
        print(f"reprolint: error: {error}", file=sys.stderr)
        return EXIT_USAGE

    if args.json:
        print(json.dumps(report.to_json(), indent=2), file=out)
    else:
        _render_human(report, out)
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS
